//! Stand-ins for 164.gzip, 175.vpr, 176.gcc, and 181.mcf.

use crate::Workload;

/// 164.gzip stand-in: LZ77-style compression with a hash-chain match
/// finder over byte buffers. Regular inner loops with short match
/// extension (unrolling + peeling fodder), good ILP.
pub fn gzip() -> Workload {
    Workload {
        name: "gzip_mc",
        spec_name: "164.gzip",
        description: "LZ77 compressor: hash-chain match finder over semi-repetitive byte data",
        train_args: vec![2200, 3],
        ref_args: vec![6000, 5],
        source: r#"
global seed: int = 12345;
global buf: [byte; 8192];
global head: [int; 1024];
global lits: int;
global matches: int;
global hsum: int;

fn rnd() -> int {
    seed = seed * 6364136223846793005 + 1442695040888963407;
    return (seed >> 33) & 0x7FFFFFFF;
}

fn fill(n: int, phase: int) {
    let i = 0;
    while i < n {
        let r = rnd();
        if (r & 7) < 5 {
            // repetitive region: copy from earlier
            let back = (r >> 3) % 256 + 1;
            if i >= back { buf[i] = buf[i - back]; }
            else { buf[i] = (r + phase) & 255; }
        } else {
            buf[i] = (r >> 11) & 255;
        }
        i = i + 1;
    }
}

fn hash3(i: int) -> int {
    return (buf[i] * 33 + buf[i + 1] * 7 + buf[i + 2]) & 1023;
}

fn compress(n: int) {
    let i = 0;
    while i < 1024 { head[i] = 0 - 1; i = i + 1; }
    i = 0;
    while i < n - 3 {
        let h = hash3(i);
        let cand = head[h];
        head[h] = i;
        let len = 0;
        if cand >= 0 && i - cand < 4096 {
            // extend the match (typically short)
            while len < 64 && i + len < n && buf[cand + len] == buf[i + len] {
                len = len + 1;
            }
        }
        if len >= 3 {
            matches = matches + 1;
            hsum = hsum * 131 + len + (i - cand);
            i = i + len;
        } else {
            lits = lits + 1;
            hsum = hsum * 131 + buf[i];
            i = i + 1;
        }
    }
}

fn main(n: int, rounds: int) {
    let r = 0;
    while r < rounds {
        fill(n, r);
        compress(n);
        r = r + 1;
    }
    out(lits);
    out(matches);
    out(hsum);
}
"#,
    }
}

/// 175.vpr stand-in: simulated-annealing placement on a grid with
/// wirelength cost; accept/reject branches with temperature-driven bias.
pub fn vpr() -> Workload {
    Workload {
        name: "vpr_mc",
        spec_name: "175.vpr",
        description: "annealing placement: swap cells on a grid, accept by cost delta",
        train_args: vec![90, 2500],
        ref_args: vec![140, 9000],
        source: r#"
global seed: int = 777;
global cell_x: [int; 512];
global cell_y: [int; 512];
global net_a: [int; 1024];
global net_b: [int; 1024];
global accepted: int;
global rejected: int;
global cost_now: int;

fn rnd() -> int {
    seed = seed * 6364136223846793005 + 1442695040888963407;
    return (seed >> 33) & 0x7FFFFFFF;
}

fn absv(x: int) -> int {
    if x < 0 { return 0 - x; }
    return x;
}

fn net_cost(k: int) -> int {
    let a = net_a[k];
    let b = net_b[k];
    return absv(cell_x[a] - cell_x[b]) + absv(cell_y[a] - cell_y[b]);
}

fn total_cost(nets: int) -> int {
    let s = 0;
    let k = 0;
    while k < nets {
        s = s + net_cost(k);
        k = k + 1;
    }
    return s;
}

fn main(ncells: int, moves: int) {
    let nets = ncells * 2;
    if nets > 1024 { nets = 1024; }
    let i = 0;
    while i < ncells {
        cell_x[i] = rnd() % 64;
        cell_y[i] = rnd() % 64;
        i = i + 1;
    }
    i = 0;
    while i < nets {
        net_a[i] = rnd() % ncells;
        net_b[i] = rnd() % ncells;
        i = i + 1;
    }
    cost_now = total_cost(nets);
    let m = 0;
    let temp = 1000;
    while m < moves {
        let c = rnd() % ncells;
        let ox = cell_x[c];
        let oy = cell_y[c];
        // cost of nets touching c, before
        let before = 0;
        let k = 0;
        while k < nets {
            if net_a[k] == c { before = before + net_cost(k); }
            else { if net_b[k] == c { before = before + net_cost(k); } }
            k = k + 1;
        }
        cell_x[c] = rnd() % 64;
        cell_y[c] = rnd() % 64;
        let after = 0;
        k = 0;
        while k < nets {
            if net_a[k] == c { after = after + net_cost(k); }
            else { if net_b[k] == c { after = after + net_cost(k); } }
            k = k + 1;
        }
        let delta = after - before;
        if delta < 0 || rnd() % 1000 < temp {
            accepted = accepted + 1;
            cost_now = cost_now + delta;
        } else {
            cell_x[c] = ox;
            cell_y[c] = oy;
            rejected = rejected + 1;
        }
        if m % 100 == 99 { temp = temp * 9 / 10 + 1; }
        m = m + 1;
    }
    out(accepted);
    out(rejected);
    out(cost_now);
    out(total_cost(nets));
}
"#,
    }
}

/// 176.gcc stand-in: expression-tree manipulation over arena nodes whose
/// operand field is a pointer/int *union* — the paper's wild-load pattern
/// (Sec. 4.3): control speculation of the union dereference produces
/// kernel-visible wild loads under the general model.
pub fn gcc() -> Workload {
    Workload {
        name: "gcc_mc",
        spec_name: "176.gcc",
        description: "expression trees with pointer/int unions: folding + walking (wild loads)",
        train_args: vec![500, 3],
        ref_args: vec![1400, 5],
        source: r#"
// A node: { kind, lhs, rhs, val } where lhs/rhs hold either a *Node or a
// garbage integer (pointer/int union), discriminated by kind bits.
struct Node { kind: int, lhs: int, rhs: int, val: int }
global seed: int = 424242;
global arena: [int; 16384];
global arena_n: int;
global folded: int;
global walked: int;
global hsum: int;

fn rnd() -> int {
    seed = seed * 6364136223846793005 + 1442695040888963407;
    return (seed >> 33) & 0x7FFFFFFF;
}

// An integer (non-pointer) union payload. Most values are small (a
// speculative dereference lands in the architected NaT page: the cheap
// 2-cycle case); roughly one in eight is a large garbage value whose
// off-path dereference walks the kernel page tables (the expensive wild
// load of paper Sec. 4.3).
fn garbage() -> int {
    let r = rnd();
    if (r & 15) == 0 { return r * 2654435761; }
    return r & 2047;
}

// kind bit 1: lhs is pointer; bit 2: rhs is pointer
fn build(depth: int) -> int {
    let n = alloc(32) as *Node;
    if arena_n < 16384 { arena[arena_n] = n as int; arena_n = arena_n + 1; }
    n.val = rnd() & 1023;
    if depth <= 0 {
        n.kind = 0;
        n.lhs = garbage();
        n.rhs = garbage();
        return n as int;
    }
    let k = 0;
    if (rnd() & 3) != 0 { k = k | 1; n.lhs = build(depth - 1); }
    else { n.lhs = garbage(); }
    if (rnd() & 3) != 0 { k = k | 2; n.rhs = build(depth - 1); }
    else { n.rhs = garbage(); }
    n.kind = k;
    return n as int;
}

fn eval(p: int) -> int {
    let n = p as *Node;
    let l = 0;
    let r = 0;
    // union dereference: only valid when the kind bit says pointer.
    if (n.kind & 1) != 0 { l = eval(n.lhs); } else { l = n.lhs & 255; }
    if (n.kind & 2) != 0 { r = eval(n.rhs); } else { r = n.rhs & 255; }
    walked = walked + 1;
    return (l + r * 3 + n.val) & 0xFFFFFF;
}

// constant folding: rewrite nodes whose children are both leaves
fn fold(p: int) -> int {
    let n = p as *Node;
    let did = 0;
    if (n.kind & 1) != 0 { did = did + fold(n.lhs); }
    if (n.kind & 2) != 0 { did = did + fold(n.rhs); }
    if n.kind == 0 {
        n.val = (n.lhs & 255) + (n.rhs & 255);
        did = did + 1;
    }
    return did;
}

// Flat dataflow pass over the whole arena: the union dereference sits in
// a small branch-free-convertible diamond, so ILP-CS promotes the load
// above the tag test — off-path executions hit garbage addresses (the
// paper's wild loads, Sec. 4.3).
fn scan() -> int {
    let s = 0;
    let i = 0;
    while i < arena_n {
        let n = arena[i] as *Node;
        let t = 0;
        if (n.kind & 1) != 0 { t = (n.lhs as *Node).val; } else { t = n.lhs & 15; }
        let u = 0;
        if (n.kind & 2) != 0 { u = (n.rhs as *Node).val; } else { u = n.rhs & 15; }
        s = (s + t * 3 + u) & 0xFFFFFF;
        i = i + 1;
    }
    return s;
}

fn main(trees: int, depth: int) {
    let t = 0;
    while t < trees {
        let root = build(depth);
        folded = folded + fold(root);
        hsum = hsum * 31 + eval(root);
        if t % 64 == 0 { hsum = hsum ^ scan(); }
        t = t + 1;
    }
    out(folded);
    out(walked);
    out(hsum);
}
"#,
    }
}

/// 181.mcf stand-in: network-simplex-like pointer chasing over a large
/// arc array — memory-bound, nearly flat across compiler configurations
/// (paper Table 1: mcf barely moves).
pub fn mcf() -> Workload {
    Workload {
        name: "mcf_mc",
        spec_name: "181.mcf",
        description: "min-cost-flow-ish: pointer chasing over a working set larger than L2",
        train_args: vec![9000, 6],
        ref_args: vec![26000, 10],
        source: r#"
struct NodeM { pot: int, depth: int, pred: *NodeM }
struct Arc { src: *NodeM, dst: *NodeM, cost: int, flow: int }
global seed: int = 31337;
global nodes_base: int;
global arcs_base: int;
global pushes: int;
global hsum: int;

fn rnd() -> int {
    seed = seed * 6364136223846793005 + 1442695040888963407;
    return (seed >> 33) & 0x7FFFFFFF;
}

fn node_at(i: int) -> *NodeM {
    return (nodes_base + i * 24) as *NodeM;
}

fn arc_at(i: int) -> *Arc {
    return (arcs_base + i * 32) as *Arc;
}

fn main(nnodes: int, sweeps: int) {
    let narcs = nnodes * 3;
    nodes_base = alloc(nnodes * 24);
    arcs_base = alloc(narcs * 32);
    let i = 0;
    while i < nnodes {
        let n = node_at(i);
        n.pot = rnd() & 4095;
        n.depth = 0;
        if i > 0 { n.pred = node_at(rnd() % i); } else { n.pred = 0 as *NodeM; }
        i = i + 1;
    }
    i = 0;
    while i < narcs {
        let a = arc_at(i);
        a.src = node_at(rnd() % nnodes);
        a.dst = node_at(rnd() % nnodes);
        a.cost = (rnd() & 255) - 128;
        a.flow = 0;
        i = i + 1;
    }
    let s = 0;
    while s < sweeps {
        // price sweep: reduced costs, scattered (strided) reads
        let c = 0;
        let k = 0;
        while c < narcs {
            let a = arc_at(k);
            let red = a.cost + a.src.pot - a.dst.pot;
            if red < 0 {
                a.flow = a.flow + 1;
                a.dst.pot = a.dst.pot + (0 - red) / 2;
                pushes = pushes + 1;
            }
            k = k + 7;              // stride to defeat spatial locality
            if k >= narcs { k = k - narcs; }
            c = c + 1;
        }
        // chase predecessor chains (serial, cache-hostile)
        let j = 0;
        while j < nnodes {
            let n = node_at(j);
            let d = 0;
            let p = n.pred;
            while p as int != 0 && d < 16 {
                d = d + 1;
                p = p.pred;
            }
            n.depth = d;
            hsum = hsum + d;
            j = j + 97;
        }
        s = s + 1;
    }
    out(pushes);
    out(hsum);
}
"#,
    }
}
