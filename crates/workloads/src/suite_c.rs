//! Stand-ins for 254.gap, 255.vortex, 256.bzip2, and 300.twolf.

use crate::Workload;

/// 254.gap stand-in: a stack-machine arithmetic interpreter with biased
/// indirect operator dispatch (the paper notes gap's indirect calls and
/// spurious loop dependences).
pub fn gap() -> Workload {
    Workload {
        name: "gap_mc",
        spec_name: "254.gap",
        description: "stack-machine arithmetic interpreter, biased operator dispatch",
        train_args: vec![700],
        ref_args: vec![2500],
        source: r#"
global seed: int = 1618033;
global stack: [int; 256];
global sp: int;
global code: [int; 128];
global hsum: int;
global ops_run: int;

fn rnd() -> int {
    seed = seed * 6364136223846793005 + 1442695040888963407;
    return (seed >> 33) & 0x7FFFFFFF;
}

fn op_add(a: int, b: int) -> int { return a + b; }
fn op_sub(a: int, b: int) -> int { return a - b; }
fn op_mul(a: int, b: int) -> int { return (a * b) & 0xFFFFFF; }
fn op_xor(a: int, b: int) -> int { return a ^ b; }

fn gen_code() {
    let i = 0;
    while i < 127 {
        let r = rnd() % 100;
        // 0..49: push, 50..84: add (dominant op), 85..94 sub, 95..97 mul, 98..99 xor
        if r < 50 { code[i] = 1000 + (rnd() & 1023); }
        else { if r < 85 { code[i] = 1; }
        else { if r < 95 { code[i] = 2; }
        else { if r < 98 { code[i] = 3; }
        else { code[i] = 4; } } } }
        i = i + 1;
    }
    code[127] = 0;
}

fn run_code() {
    sp = 0;
    stack[0] = 7;
    stack[1] = 11;
    sp = 2;
    let pc = 0;
    while 1 {
        let insn = code[pc & 127];
        if insn == 0 { break; }
        if insn >= 1000 {
            stack[sp & 255] = insn - 1000;
            sp = sp + 1;
        } else {
            if sp < 2 { stack[sp & 255] = 5; sp = sp + 1; }
            let b = stack[(sp - 1) & 255];
            let a = stack[(sp - 2) & 255];
            let f = op_add;
            if insn == 2 { f = op_sub; }
            if insn == 3 { f = op_mul; }
            if insn == 4 { f = op_xor; }
            stack[(sp - 2) & 255] = icall(f, a, b);
            sp = sp - 1;
            ops_run = ops_run + 1;
        }
        pc = pc + 1;
    }
    let i = 0;
    while i < sp {
        hsum = hsum * 33 + stack[i & 255];
        i = i + 1;
    }
}

fn main(rounds: int) {
    let r = 0;
    while r < rounds {
        gen_code();
        run_code();
        r = r + 1;
    }
    out(ops_run);
    out(hsum);
}
"#,
    }
}

/// 255.vortex stand-in: an object database with many small manipulation
/// functions (hash directory, chained buckets, field updates, validation
/// sweeps) — the paper's biggest ILP win and its per-function drill-down
/// subject (Fig. 10).
pub fn vortex() -> Workload {
    Workload {
        name: "vortex_mc",
        spec_name: "255.vortex",
        description: "object database: create/lookup/update/delete over hashed chains",
        train_args: vec![5000],
        ref_args: vec![18000],
        source: r#"
struct Obj { next: *Obj, key: int, kind: int, f0: int, f1: int, f2: int }
global seed: int = 600613;
global dir: [int; 512];
global live_objs: int;
global lookups: int;
global updates: int;
global deletes: int;
global checksum_g: int;

fn rnd() -> int {
    seed = seed * 6364136223846793005 + 1442695040888963407;
    return (seed >> 33) & 0x7FFFFFFF;
}

fn hash_key(k: int) -> int {
    return (k * 2654435761) & 511;
}

fn obj_find(k: int) -> int {
    let p = dir[hash_key(k)] as *Obj;
    while p as int != 0 {
        if p.key == k { return p as int; }
        p = p.next;
    }
    return 0;
}

fn obj_create(k: int, kind: int) -> int {
    let o = alloc(48) as *Obj;
    let h = hash_key(k);
    o.key = k;
    o.kind = kind;
    o.f0 = k * 3;
    o.f1 = 0;
    o.f2 = kind * 7;
    o.next = dir[h] as *Obj;
    dir[h] = o as int;
    live_objs = live_objs + 1;
    return o as int;
}

fn obj_update(p: int, v: int) {
    let o = p as *Obj;
    o.f1 = o.f1 + v;
    if o.f1 > 4096 { o.f1 = o.f1 >> 1; o.f2 = o.f2 + 1; }
    updates = updates + 1;
}

fn obj_delete(k: int) {
    let h = hash_key(k);
    let p = dir[h] as *Obj;
    if p as int == 0 { return; }
    if p.key == k { dir[h] = p.next as int; live_objs = live_objs - 1; deletes = deletes + 1; return; }
    while p.next as int != 0 {
        if p.next.key == k {
            p.next = p.next.next;
            live_objs = live_objs - 1;
            deletes = deletes + 1;
            return;
        }
        p = p.next;
    }
}

fn obj_validate(p: int) -> int {
    let o = p as *Obj;
    let ok = 1;
    if o.f0 != o.key * 3 { ok = 0; }
    if o.f1 < 0 { ok = 0; }
    return ok;
}

fn sweep() {
    let h = 0;
    while h < 512 {
        let p = dir[h] as *Obj;
        while p as int != 0 {
            checksum_g = checksum_g * 31 + p.f1 + p.f2 + obj_validate(p as int);
            p = p.next;
        }
        h = h + 1;
    }
}

fn main(txns: int) {
    let t = 0;
    while t < txns {
        let k = rnd() & 2047;
        let action = rnd() % 100;
        let p = obj_find(k);
        lookups = lookups + 1;
        if action < 55 {
            if p == 0 { p = obj_create(k, action & 7); }
            obj_update(p, action);
        } else { if action < 85 {
            if p != 0 { obj_update(p, 1); }
        } else {
            if p != 0 { obj_delete(k); }
        } }
        if t % 2000 == 1999 { sweep(); }
        t = t + 1;
    }
    sweep();
    out(live_objs);
    out(lookups);
    out(updates);
    out(deletes);
    out(checksum_g);
}
"#,
    }
}

/// 256.bzip2 stand-in: counting sort + move-to-front + run-length coding
/// over byte blocks; tight store-then-load sequences exercise the
/// store-forwarding (micropipe) hazard the paper observes in bzip.
pub fn bzip2() -> Workload {
    Workload {
        name: "bzip2_mc",
        spec_name: "256.bzip2",
        description: "block transform: counting sort, move-to-front, run-length, bit packing",
        train_args: vec![1800, 2],
        ref_args: vec![5200, 4],
        source: r#"
global seed: int = 9001;
global block: [byte; 8192];
global sorted: [byte; 8192];
global counts: [int; 256];
global mtf: [byte; 256];
global out_bits: int;
global hsum: int;

fn rnd() -> int {
    seed = seed * 6364136223846793005 + 1442695040888963407;
    return (seed >> 33) & 0x7FFFFFFF;
}

fn gen(n: int) {
    let i = 0;
    let run = 0;
    let ch = 65;
    while i < n {
        if run == 0 {
            ch = 65 + (rnd() & 31);
            run = 1 + (rnd() & 7);
        }
        block[i] = ch;
        run = run - 1;
        i = i + 1;
    }
}

fn counting_sort(n: int) {
    let i = 0;
    while i < 256 { counts[i] = 0; i = i + 1; }
    i = 0;
    while i < n { counts[block[i]] = counts[block[i]] + 1; i = i + 1; }
    let acc = 0;
    i = 0;
    while i < 256 {
        let c = counts[i];
        counts[i] = acc;
        acc = acc + c;
        i = i + 1;
    }
    i = 0;
    while i < n {
        let b = block[i];
        sorted[counts[b]] = b;
        counts[b] = counts[b] + 1;
        i = i + 1;
    }
}

fn mtf_encode(n: int) {
    let i = 0;
    while i < 256 { mtf[i] = i; i = i + 1; }
    i = 0;
    while i < n {
        let b = block[i];
        // find b's rank (usually near the front)
        let j = 0;
        while mtf[j] != b { j = j + 1; }
        hsum = hsum * 31 + j;
        // move to front
        while j > 0 { mtf[j] = mtf[j - 1]; j = j - 1; }
        mtf[0] = b;
        i = i + 1;
    }
}

fn rle_bits(n: int) {
    let i = 0;
    while i < n {
        let b = sorted[i];
        let run = 1;
        while i + run < n && sorted[i + run] == b && run < 255 { run = run + 1; }
        if run >= 4 { out_bits = out_bits + 24; } else { out_bits = out_bits + run * 8; }
        hsum = hsum * 131 + run;
        i = i + run;
    }
}

fn main(n: int, rounds: int) {
    let r = 0;
    while r < rounds {
        gen(n);
        counting_sort(n);
        mtf_encode(n / 4);
        rle_bits(n);
        r = r + 1;
    }
    out(out_bits);
    out(hsum);
}
"#,
    }
}

/// 300.twolf stand-in: standard-cell placement annealing with lookup
/// tables and short cleanup loops whose remainders stay lukewarm —
/// the paper's I-cache replication case (Sec. 4.1).
pub fn twolf() -> Workload {
    Workload {
        name: "twolf_mc",
        spec_name: "300.twolf",
        description: "cell placement annealing: overlap penalties, lukewarm cleanup loops",
        train_args: vec![2000],
        ref_args: vec![7000],
        source: r#"
global seed: int = 20001;
global cx: [int; 256];
global cy: [int; 256];
global cw: [int; 256];
global rowcap: [int; 32];
global penalty_tab: [int; 64];
global accepted: int;
global cost_g: int;

fn rnd() -> int {
    seed = seed * 6364136223846793005 + 1442695040888963407;
    return (seed >> 33) & 0x7FFFFFFF;
}

fn absv(x: int) -> int { if x < 0 { return 0 - x; } return x; }

fn overlap(a: int, b: int) -> int {
    if cy[a] != cy[b] { return 0; }
    let d = absv(cx[a] - cx[b]);
    let w = (cw[a] + cw[b]) >> 1;
    if d >= w { return 0; }
    let idx = w - d;
    if idx > 63 { idx = 63; }
    return penalty_tab[idx];
}

fn cell_cost(c: int, ncells: int) -> int {
    let s = 0;
    let j = 0;
    while j < ncells {
        if j != c { s = s + overlap(c, j); }
        j = j + 1;
    }
    // row crowding: short cleanup loop, typically 0-1 iterations
    let row = cy[c] & 31;
    let over = rowcap[row] - 8;
    while over > 0 {
        s = s + 50;
        over = over - 4;
    }
    return s + absv(cx[c] - 128) / 4;
}

fn main(moves: int) {
    let ncells = 180;
    let i = 0;
    while i < 64 { penalty_tab[i] = i * i / 4 + 1; i = i + 1; }
    i = 0;
    while i < ncells {
        cx[i] = rnd() & 255;
        cy[i] = rnd() & 31;
        cw[i] = 4 + (rnd() & 7);
        rowcap[cy[i] & 31] = rowcap[cy[i] & 31] + 1;
        i = i + 1;
    }
    let m = 0;
    while m < moves {
        let c = rnd() % ncells;
        let before = cell_cost(c, ncells);
        let ox = cx[c];
        let oy = cy[c];
        rowcap[oy & 31] = rowcap[oy & 31] - 1;
        cx[c] = rnd() & 255;
        cy[c] = rnd() & 31;
        rowcap[cy[c] & 31] = rowcap[cy[c] & 31] + 1;
        let after = cell_cost(c, ncells);
        if after <= before + (rnd() & 15) {
            accepted = accepted + 1;
            cost_g = cost_g + after - before;
        } else {
            rowcap[cy[c] & 31] = rowcap[cy[c] & 31] - 1;
            cx[c] = ox;
            cy[c] = oy;
            rowcap[oy & 31] = rowcap[oy & 31] + 1;
        }
        m = m + 1;
    }
    out(accepted);
    out(cost_g);
}
"#,
    }
}
