//! Stand-ins for 186.crafty, 197.parser, 252.eon, and 253.perlbmk.

use crate::Workload;

/// 186.crafty stand-in: bitboard chess-like evaluation with many short
/// serial `while` loops that typically run once (the paper's Fig. 3
/// motivating example), big lookup tables, and a large instruction
/// footprint.
pub fn crafty() -> Workload {
    Workload {
        name: "crafty_mc",
        spec_name: "186.crafty",
        description: "bitboard evaluation: serial low-trip while loops, big tables, branchy",
        train_args: vec![2500],
        ref_args: vec![9000],
        source: r#"
global seed: int = 987654321;
global board: [int; 64];
global piece_val: [int; 16] = [0, 100, 320, 330, 500, 900, 20000, 0, 0, -100, -320, -330, -500, -900, -20000, 0];
global center: [int; 64];
global score_hist: [int; 128];
global total: int;

fn rnd() -> int {
    seed = seed * 6364136223846793005 + 1442695040888963407;
    return (seed >> 33) & 0x7FFFFFFF;
}

fn setup() {
    let i = 0;
    while i < 64 {
        let r = rnd() & 15;
        if r > 14 { r = 0; }
        board[i] = r;
        let rank = i >> 3;
        let file = i & 7;
        let dr = rank - 3; if dr < 0 { dr = 0 - dr; }
        let df = file - 3; if df < 0 { df = 0 - df; }
        center[i] = 6 - dr - df;
        i = i + 1;
    }
}

// Evaluate "queen mobility": walk a ray until blocked — each ray loop
// typically takes exactly one iteration (paper Sec. 2.4).
fn ray(sq: int, step: int) -> int {
    let mob = 0;
    let s = sq + step;
    while s >= 0 && s < 64 && board[s] == 0 {
        mob = mob + 1;
        s = s + step;
        if mob >= 3 { break; }
    }
    return mob;
}

fn eval_material() -> int {
    let s = 0;
    let i = 0;
    while i < 64 { s = s + piece_val[board[i]]; i = i + 1; }
    return s;
}

fn eval_position() -> int {
    let s = 0;
    let i = 0;
    while i < 64 {
        let p = board[i];
        if p != 0 {
            if p < 8 { s = s + center[i] * 2; }
            else { s = s - center[i] * 2; }
            // pawn-ish structure: scan file upward, usually stops at once
            let j = i - 8;
            while j >= 0 && board[j] == p {
                s = s - 3;
                j = j - 8;
            }
        }
        i = i + 1;
    }
    return s;
}

fn eval_mobility() -> int {
    let s = 0;
    let i = 0;
    while i < 64 {
        let p = board[i];
        if p == 5 {
            s = s + ray(i, 1) + ray(i, 0 - 1) + ray(i, 8) + ray(i, 0 - 8);
        }
        if p == 13 {
            s = s - ray(i, 1) - ray(i, 0 - 1) - ray(i, 8) - ray(i, 0 - 8);
        }
        i = i + 1;
    }
    return s;
}

fn main(positions: int) {
    let t = 0;
    while t < positions {
        setup();
        let sc = eval_material() + eval_position() + eval_mobility();
        let b = sc & 127;
        if b < 0 { b = 0 - b; }
        score_hist[b] = score_hist[b] + 1;
        total = total + sc;
        // mutate a few squares between evaluations
        let k = 0;
        while k < 4 {
            board[rnd() & 63] = rnd() & 7;
            k = k + 1;
        }
        t = t + 1;
    }
    out(total);
    let s = 0;
    let i = 0;
    while i < 128 { s = s * 31 + score_hist[i]; i = i + 1; }
    out(s);
}
"#,
    }
}

/// 197.parser stand-in: tokenizer + trie dictionary with linked-list
/// buckets; deep expression parsing keeps many values live (register
/// pressure → RSE, paper Sec. 4.4).
pub fn parser() -> Workload {
    Workload {
        name: "parser_mc",
        spec_name: "197.parser",
        description: "tokenizer + dictionary tries; recursive descent keeps registers hot",
        train_args: vec![900],
        ref_args: vec![3200],
        source: r#"
struct Entry { next: *Entry, word: int, count: int }
global seed: int = 5551212;
global text: [byte; 4096];
global buckets: [int; 256];
global tokens: int;
global dict_hits: int;
global parse_sum: int;

fn rnd() -> int {
    seed = seed * 6364136223846793005 + 1442695040888963407;
    return (seed >> 33) & 0x7FFFFFFF;
}

// Text drawn from a bounded vocabulary (as real English is): word
// lengths 3-7, letters derived deterministically from the word id, so
// dictionary lookups mostly hit and chains stay short.
fn gen_text(n: int) {
    let i = 0;
    while i < n - 8 {
        let wid = rnd() % 500;
        let len = 3 + wid % 5;
        let k = 0;
        while k < len {
            text[i] = 97 + (wid * 7 + k * 13) % 26;
            i = i + 1;
            k = k + 1;
        }
        text[i] = 32;
        i = i + 1;
    }
    while i < n { text[i] = 32; i = i + 1; }
}

fn lookup_or_add(word: int) -> int {
    let h = word & 255;
    let p = buckets[h] as *Entry;
    while p as int != 0 {
        if p.word == word {
            p.count = p.count + 1;
            dict_hits = dict_hits + 1;
            return p.count;
        }
        p = p.next;
    }
    let e = alloc(24) as *Entry;
    e.word = word;
    e.count = 1;
    e.next = buckets[h] as *Entry;
    buckets[h] = e as int;
    return 1;
}

// expression "linkage" evaluation: combine token codes with precedence,
// keeping a wide set of live temporaries
fn combine(a: int, b: int, c: int, d: int, e2: int, f: int) -> int {
    let t1 = a * 31 + b;
    let t2 = b * 17 + c;
    let t3 = c * 13 + d;
    let t4 = d * 11 + e2;
    let t5 = e2 * 7 + f;
    let t6 = a ^ c ^ e2;
    let t7 = b ^ d ^ f;
    let u1 = t1 + t3 + t5;
    let u2 = t2 + t4 + t6;
    let u3 = t7 * 3 + t1;
    return (u1 * u2 + u3) & 0xFFFFFF;
}

fn tokenize(n: int) {
    let i = 0;
    let w = 0;
    let last6_0 = 0; let last6_1 = 0; let last6_2 = 0;
    let last6_3 = 0; let last6_4 = 0; let last6_5 = 0;
    while i < n {
        let c = text[i];
        if c == 32 {
            if w != 0 {
                tokens = tokens + 1;
                let cnt = lookup_or_add(w);
                last6_5 = last6_4; last6_4 = last6_3; last6_3 = last6_2;
                last6_2 = last6_1; last6_1 = last6_0; last6_0 = w + cnt;
                parse_sum = parse_sum ^ combine(last6_0, last6_1, last6_2, last6_3, last6_4, last6_5);
                w = 0;
            }
        } else {
            w = (w * 131 + c) & 0x3FFFFFF;
        }
        i = i + 1;
    }
}

fn main(paragraphs: int) {
    let p = 0;
    while p < paragraphs {
        gen_text(600);
        tokenize(600);
        p = p + 1;
    }
    out(tokens);
    out(dict_hits);
    out(parse_sum);
}
"#,
    }
}

/// 252.eon stand-in: fixed-point "ray tracing" with monomorphic shader
/// dispatch through function pointers (the paper notes eon's biased
/// virtual calls; indirect-call promotion + inlining recover them).
pub fn eon() -> Workload {
    Workload {
        name: "eon_mc",
        spec_name: "252.eon",
        description: "fixed-point raytracer with biased indirect shader dispatch",
        train_args: vec![40],
        ref_args: vec![110],
        source: r#"
global seed: int = 31415926;
global image: [int; 1024];
global shaded: int;

fn rnd() -> int {
    seed = seed * 6364136223846793005 + 1442695040888963407;
    return (seed >> 33) & 0x7FFFFFFF;
}

// fixed point 16.16
fn fxmul(a: int, b: int) -> int { return (a * b) >> 16; }

fn shade_diffuse(nl: int) -> int {
    let v = fxmul(nl, 60000);
    if v < 0 { v = 0; }
    return v;
}

fn shade_specular(nl: int) -> int {
    let v = fxmul(nl, nl);
    v = fxmul(v, v);
    return fxmul(v, 80000);
}

fn shade_flat(nl: int) -> int {
    let _ = nl;
    return 30000;
}

fn trace_row(y: int, w: int) {
    let x = 0;
    while x < w {
        // sphere intersection, fixed point
        let dx = (x * 65536) / w - 32768;
        let dy = (y * 65536) / w - 32768;
        let b = fxmul(dx, dx) + fxmul(dy, dy);
        let disc = 65536 - b;
        let col = 0;
        if disc > 0 {
            // fake sqrt via two Newton steps
            let s = disc;
            let g = 32768 + (disc >> 1);
            g = (g + (disc * 65536) / (g + 1)) >> 1;
            g = (g + (disc * 65536) / (g + 1)) >> 1;
            let nl = 65536 - fxmul(g, 49152);
            // dispatch: 90% diffuse (monomorphic in practice)
            let shader = shade_diffuse;
            let r = rnd() % 100;
            if r >= 90 { if r < 95 { shader = shade_specular; } else { shader = shade_flat; } }
            col = icall(shader, nl) + (s >> 12);
            shaded = shaded + 1;
        }
        image[(y * w + x) & 1023] = image[(y * w + x) & 1023] + col;
        x = x + 1;
    }
}

fn main(size: int) {
    let y = 0;
    while y < size {
        trace_row(y, size);
        y = y + 1;
    }
    let h = 0;
    let i = 0;
    while i < 1024 { h = h * 33 + image[i] & 0xFFFFFFF; i = i + 1; }
    out(shaded);
    out(h);
}
"#,
    }
}

/// 253.perlbmk stand-in: a bytecode string-machine interpreter (regex-ish
/// matching, substitution, hashing) with a big dispatch footprint.
pub fn perlbmk() -> Workload {
    Workload {
        name: "perlbmk_mc",
        spec_name: "253.perlbmk",
        description: "string bytecode interpreter: dispatch loop, match/substitute ops",
        train_args: vec![350],
        ref_args: vec![1200],
        source: r#"
global seed: int = 271828;
global text: [byte; 2048];
global prog: [int; 64];
global matches: int;
global subs: int;
global hsum: int;

fn rnd() -> int {
    seed = seed * 6364136223846793005 + 1442695040888963407;
    return (seed >> 33) & 0x7FFFFFFF;
}

fn gen(n: int) {
    let i = 0;
    while i < n {
        let r = rnd() & 15;
        text[i] = 97 + r;
        i = i + 1;
    }
}

// opcodes: 0 literal-match, 1 class-match, 2 star, 3 substitute, 4 count,
// 5 hash, 6 reverse-span, 7 halt
fn gen_prog() {
    let i = 0;
    while i < 63 {
        prog[i] = (rnd() % 7) * 256 + (97 + (rnd() & 15));
        i = i + 1;
    }
    prog[63] = 7 * 256;
}

fn interp(n: int) {
    let pc = 0;
    let pos = 0;
    let steps = 0;
    while steps < 400 {
        let insn = prog[pc & 63];
        let opc = insn >> 8;
        let arg = insn & 255;
        if opc == 0 {
            if text[pos % n] == arg { matches = matches + 1; pc = pc + 1; }
            else { pc = pc + 2; }
            pos = pos + 1;
        } else { if opc == 1 {
            let c = text[pos % n];
            if c >= arg && c < arg + 4 { matches = matches + 1; }
            pos = pos + 1; pc = pc + 1;
        } else { if opc == 2 {
            // star: consume a run (typically short)
            while text[pos % n] == arg && pos < n * 2 {
                pos = pos + 1;
                matches = matches + 1;
            }
            pc = pc + 1;
        } else { if opc == 3 {
            text[pos % n] = arg;
            subs = subs + 1;
            pos = pos + 3; pc = pc + 1;
        } else { if opc == 4 {
            let k = 0; let c = 0;
            while k < 16 { if text[(pos + k) % n] == arg { c = c + 1; } k = k + 1; }
            hsum = hsum + c;
            pc = pc + 1;
        } else { if opc == 5 {
            hsum = hsum * 131 + text[pos % n];
            pos = pos + 1; pc = pc + 1;
        } else { if opc == 6 {
            let a = pos % n; let b = (pos + 7) % n;
            if a < b {
                while a < b {
                    let t = text[a]; text[a] = text[b]; text[b] = t;
                    a = a + 1; b = b - 1;
                }
            }
            pc = pc + 1;
        } else {
            pc = 0;
        } } } } } } }
        steps = steps + 1;
    }
}

fn main(rounds: int) {
    gen(2048);
    let r = 0;
    while r < rounds {
        gen_prog();
        interp(1500);
        r = r + 1;
    }
    out(matches);
    out(subs);
    out(hsum);
}
"#,
    }
}
