//! The measurement API: one typed request/response surface over
//! everything the driver can measure.
//!
//! [`MeasureRequest`] is a builder for a (workload × level) sweep:
//! which levels, how the per-level [`CompileOptions`] are derived, the
//! simulator configuration, the worker-pool width, an explicit
//! [`CachePolicy`] (the library never sniffs `EPIC_CACHE_DIR` /
//! `EPIC_NO_CACHE` — environment parsing belongs to the `epicc` and
//! bench binaries), and a [`TracePolicy`] deciding whether each cell
//! carries a span tree + metrics snapshot. [`MeasureRequest::run`]
//! returns a typed [`MeasureReport`] — this is the one measurement
//! entry point (the PR-5 free-function shims are gone).
//!
//! With tracing enabled, every cell gets its own
//! [`Trace`](epic_trace::Trace) whose tree is
//! `compile → pass:<name>…` and `sim → dispatch/attrib` (or a single
//! `cache-lookup` root for a cache hit), and whose per-cell metrics
//! hold only *deterministic* simulation data (`sim.charge.<category>`
//! histograms, `sim.charges`) — wall-clock latencies go to the
//! process-wide [`epic_trace::global`] registry instead, so two
//! identical traced runs produce identical per-cell metrics.

use crate::parallel::{par_map, MatrixCell, MatrixError, MeasurementCache};
use crate::{measure_traced, CompileOptions, Measurement, OptLevel};
use epic_sim::{PredictorSpec, SamplePolicy, SimOptions};
use epic_trace::{Trace, TraceSnapshot};
use epic_workloads::Workload;
use std::time::{Duration, Instant};

/// Where measurement results may be looked up and stored. Explicit —
/// never derived from the environment inside the library.
#[derive(Clone, Copy, Default)]
pub enum CachePolicy<'a> {
    /// Always compile and simulate; never consult or fill a cache.
    #[default]
    Disabled,
    /// Consult this cache first and offer fresh results back.
    Store(&'a dyn MeasurementCache),
}

/// Whether each measured cell carries a span tree + metrics snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TracePolicy {
    /// No per-cell traces; span guards degrade to bare timers.
    #[default]
    Disabled,
    /// Every cell records spans and deterministic sim metrics.
    Enabled,
}

impl TracePolicy {
    /// Parse a `0`/`1` (or `off`/`on`) flag value, as the binaries read
    /// from `EPIC_TRACE`.
    pub fn from_flag(v: &str) -> TracePolicy {
        match v.trim() {
            "1" | "on" | "true" => TracePolicy::Enabled,
            _ => TracePolicy::Disabled,
        }
    }

    fn new_trace(self) -> Trace {
        match self {
            TracePolicy::Enabled => Trace::enabled(),
            TracePolicy::Disabled => Trace::disabled(),
        }
    }
}

/// One measured cell of a [`MeasureReport`].
#[derive(Clone, Debug)]
pub struct MeasuredCell {
    /// The measurement (cached or fresh — bit-identical either way).
    pub measurement: Measurement,
    /// True when the cell came out of the cache without compiling.
    pub cache_hit: bool,
    /// Wall time this cell took end to end (lookup or compile + sim).
    pub wall: Duration,
    /// Span tree + metrics when the request traced.
    pub trace: Option<TraceSnapshot>,
}

/// The typed result of a [`MeasureRequest`]: `cells[w][l]` pairs with
/// `workloads[w]` and `levels[l]`.
#[derive(Clone, Debug)]
pub struct MeasureReport {
    /// The levels measured, in column order.
    pub levels: Vec<OptLevel>,
    /// One row per workload, one cell per level.
    pub cells: Vec<Vec<MeasuredCell>>,
}

impl MeasureReport {
    /// Cell by (workload row, level).
    pub fn cell(&self, w: usize, level: OptLevel) -> Option<&MeasuredCell> {
        let l = self.levels.iter().position(|&x| x == level)?;
        self.cells.get(w)?.get(l)
    }

    /// Total cache hits across all cells.
    pub fn cache_hits(&self) -> usize {
        self.cells.iter().flatten().filter(|c| c.cache_hit).count()
    }

    /// Strip to the legacy `Vec<Vec<MatrixCell>>` shape.
    pub fn into_matrix_cells(self) -> Vec<Vec<MatrixCell>> {
        self.cells
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|c| MatrixCell {
                        measurement: c.measurement,
                        cache_hit: c.cache_hit,
                    })
                    .collect()
            })
            .collect()
    }
}

/// Builder for one measurement sweep. See the module docs.
pub struct MeasureRequest<'a> {
    workloads: &'a [Workload],
    levels: Vec<OptLevel>,
    copts: &'a (dyn Fn(OptLevel) -> CompileOptions + Sync),
    sopts: SimOptions,
    threads: usize,
    cache: CachePolicy<'a>,
    trace: TracePolicy,
}

impl<'a> MeasureRequest<'a> {
    /// A request over `workloads` with the defaults: all Table 1
    /// levels, [`CompileOptions::for_level`], default [`SimOptions`],
    /// auto worker count, no cache, no tracing.
    pub fn new(workloads: &'a [Workload]) -> MeasureRequest<'a> {
        MeasureRequest {
            workloads,
            levels: OptLevel::ALL.to_vec(),
            copts: &CompileOptions::for_level,
            sopts: SimOptions::default(),
            threads: 0,
            cache: CachePolicy::Disabled,
            trace: TracePolicy::Disabled,
        }
    }

    /// Measure only these levels (column order of the report).
    pub fn levels(mut self, levels: &[OptLevel]) -> Self {
        self.levels = levels.to_vec();
        self
    }

    /// Derive per-level compile options with `f` instead of the
    /// defaults.
    pub fn compile_options(mut self, f: &'a (dyn Fn(OptLevel) -> CompileOptions + Sync)) -> Self {
        self.copts = f;
        self
    }

    /// Simulator configuration for every cell.
    pub fn sim_options(mut self, sopts: SimOptions) -> Self {
        self.sopts = sopts;
        self
    }

    /// Sampling policy for the simulator half of every cell — a
    /// shorthand for rewriting [`SimOptions::sample`] through
    /// [`Self::sim_options`]. The default ([`SamplePolicy::Exact`])
    /// simulates every retired operation.
    pub fn sample(mut self, policy: SamplePolicy) -> Self {
        self.sopts.sample = policy;
        self
    }

    /// Branch predictor for the simulator half of every cell — a
    /// shorthand for rewriting [`SimOptions::predictor`] through
    /// [`Self::sim_options`]. The default gshare reproduces the pre-zoo
    /// simulator bit for bit.
    pub fn predictor(mut self, spec: PredictorSpec) -> Self {
        self.sopts.predictor = spec;
        self
    }

    /// Worker-pool width (`0` = available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Cache policy (default: [`CachePolicy::Disabled`]).
    pub fn cache(mut self, cache: CachePolicy<'a>) -> Self {
        self.cache = cache;
        self
    }

    /// Trace policy (default: [`TracePolicy::Disabled`]).
    pub fn trace(mut self, trace: TracePolicy) -> Self {
        self.trace = trace;
        self
    }

    /// Measure every (workload × level) cell on a bounded worker pool.
    ///
    /// # Errors
    /// The first failing cell (by task order), with its coordinates.
    pub fn run(self) -> Result<MeasureReport, MatrixError> {
        // Flatten to one task per cell so slow cells can't serialize a
        // row.
        let tasks: Vec<(usize, usize)> = (0..self.workloads.len())
            .flat_map(|w| (0..self.levels.len()).map(move |l| (w, l)))
            .collect();
        let cells = par_map(&tasks, self.threads, |_, &(w, l)| {
            self.run_cell(&self.workloads[w], self.levels[l])
        });
        let mut rows: Vec<Vec<MeasuredCell>> = Vec::with_capacity(self.workloads.len());
        let mut it = cells.into_iter();
        for _ in 0..self.workloads.len() {
            let mut row = Vec::with_capacity(self.levels.len());
            for _ in 0..self.levels.len() {
                row.push(it.next().expect("cell count matches")?);
            }
            rows.push(row);
        }
        Ok(MeasureReport {
            levels: self.levels,
            cells: rows,
        })
    }

    fn run_cell(&self, w: &Workload, level: OptLevel) -> Result<MeasuredCell, MatrixError> {
        let start = Instant::now();
        let trace = self.trace.new_trace();
        let opts = (self.copts)(level);
        if let CachePolicy::Store(cache) = self.cache {
            let lookup = trace.span("cache-lookup");
            let hit = cache.lookup(w, &opts, &self.sopts);
            lookup.finish();
            if let Some(measurement) = hit {
                let wall = start.elapsed();
                return Ok(MeasuredCell {
                    measurement,
                    cache_hit: true,
                    wall,
                    trace: trace.finish(),
                });
            }
        }
        let measurement =
            measure_traced(w, &opts, &self.sopts, &trace).map_err(|error| MatrixError {
                workload: w.name.to_string(),
                level,
                error,
            })?;
        if let CachePolicy::Store(cache) = self.cache {
            let store = trace.span("store");
            cache.store(w, &opts, &self.sopts, &measurement);
            store.finish();
        }
        let wall = start.elapsed();
        Ok(MeasuredCell {
            measurement,
            cache_hit: false,
            wall,
            trace: trace.finish(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_request_builds_well_formed_cell_trees() {
        let workloads = vec![epic_workloads::by_name("vortex_mc").unwrap()];
        let report = MeasureRequest::new(&workloads)
            .levels(&[OptLevel::Gcc, OptLevel::IlpCs])
            .trace(TracePolicy::Enabled)
            .threads(2)
            .run()
            .unwrap();
        assert_eq!(report.levels, vec![OptLevel::Gcc, OptLevel::IlpCs]);
        for cell in &report.cells[0] {
            let snap = cell.trace.as_ref().expect("traced cell");
            let compile = snap.root("compile").expect("compile root");
            let sim = snap.root("sim").expect("sim root");
            assert!(
                compile.children.iter().all(|c| c.name.starts_with("pass:")),
                "compile children are passes"
            );
            let sim_kids: Vec<&str> = sim.children.iter().map(|c| c.name.as_str()).collect();
            assert!(sim_kids.contains(&"dispatch"), "{sim_kids:?}");
            assert!(sim_kids.contains(&"attrib"), "{sim_kids:?}");
            // root durations sum-check against the cell wall (±5%)
            let roots_ns: u64 = snap.spans.iter().map(|s| s.dur_ns).sum();
            let wall_ns = cell.wall.as_nanos() as u64;
            assert!(roots_ns <= wall_ns, "spans fit inside the wall");
            assert!(
                roots_ns as f64 >= wall_ns as f64 * 0.95,
                "roots cover the cell: {roots_ns} vs {wall_ns}"
            );
            // deterministic per-cell metrics came from the sim sink
            assert!(snap.metrics.counter("sim.charges") > 0);
            assert_eq!(snap.dropped, 0);
        }
        // ILP-CS runs more passes than GCC
        let gcc = report.cells[0][0].trace.as_ref().unwrap();
        let cs = report.cells[0][1].trace.as_ref().unwrap();
        assert!(
            cs.root("compile").unwrap().children.len()
                > gcc.root("compile").unwrap().children.len()
        );
    }

    #[test]
    fn untraced_request_matches_traced_measurement_bits() {
        let workloads = vec![epic_workloads::by_name("mcf_mc").unwrap()];
        let plain = MeasureRequest::new(&workloads)
            .levels(&[OptLevel::ONs])
            .run()
            .unwrap();
        let traced = MeasureRequest::new(&workloads)
            .levels(&[OptLevel::ONs])
            .trace(TracePolicy::Enabled)
            .run()
            .unwrap();
        let (p, t) = (&plain.cells[0][0], &traced.cells[0][0]);
        assert!(p.trace.is_none());
        assert!(t.trace.is_some());
        assert_eq!(p.measurement.sim.cycles, t.measurement.sim.cycles);
        assert_eq!(p.measurement.sim.checksum, t.measurement.sim.checksum);
        assert_eq!(
            p.measurement.compiled.code_bytes,
            t.measurement.compiled.code_bytes
        );
    }

    #[test]
    fn trace_policy_flag_parsing() {
        assert_eq!(TracePolicy::from_flag("1"), TracePolicy::Enabled);
        assert_eq!(TracePolicy::from_flag("on"), TracePolicy::Enabled);
        assert_eq!(TracePolicy::from_flag("0"), TracePolicy::Disabled);
        assert_eq!(TracePolicy::from_flag(""), TracePolicy::Disabled);
    }
}
