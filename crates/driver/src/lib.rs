//! # epic-driver
//!
//! End-to-end orchestration of the paper's Fig. 4 pipeline, exposing the
//! four compiler configurations of Table 1:
//!
//! | Level | profile | promote+inline | pointer analysis | structural ILP | speculation |
//! |-------|---------|----------------|------------------|----------------|-------------|
//! | GCC    | –  | – | – (conservative) | – | – |
//! | O-NS   | ✔  | ✔ | ✔ | – | – |
//! | ILP-NS | ✔  | ✔ | ✔ | ✔ | safe only |
//! | ILP-CS | ✔  | ✔ | ✔ | ✔ | control speculation |
//!
//! [`compile`] produces machine code plus all static statistics;
//! [`measure`] additionally runs the simulator on the reference input.

use epic_core::IlpOptions;
use epic_ir::Program;
use epic_mach::MachProgram;
use epic_sched::{PlanStats, SchedOptions};
use epic_sim::{SimOptions, SimResult};
use epic_workloads::Workload;

/// The paper's compiler configurations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OptLevel {
    /// GCC 3.2-like: classical optimization only, no inlining, no
    /// interprocedural analysis, no profile feedback.
    Gcc,
    /// IMPACT classical baseline (inlining + pointer analysis + profile).
    ONs,
    /// + structural ILP formation, no control speculation.
    IlpNs,
    /// + control speculation (general model unless overridden).
    IlpCs,
}

impl OptLevel {
    /// All levels in Table 1 order.
    pub const ALL: [OptLevel; 4] = [OptLevel::Gcc, OptLevel::ONs, OptLevel::IlpNs, OptLevel::IlpCs];

    /// Display name as in the paper.
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::Gcc => "GCC",
            OptLevel::ONs => "O-NS",
            OptLevel::IlpNs => "ILP-NS",
            OptLevel::IlpCs => "ILP-CS",
        }
    }
}

/// Which input trains the profile (Sec. 4.6 swaps this).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ProfileInput {
    /// SPEC methodology: train on the training input.
    #[default]
    Train,
    /// Profile-variation experiment: train on the reference input.
    Refr,
}

/// Compilation options.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Configuration level.
    pub level: OptLevel,
    /// Profile source.
    pub profile_input: ProfileInput,
    /// Override the structural-transform knobs (ablations); `None` uses
    /// the level's defaults.
    pub ilp_override: Option<IlpOptions>,
    /// Enable ALAT data speculation (`ld.a`/`chk.a`) — the paper's
    /// future-work extension; off by default to match its configuration.
    pub enable_data_spec: bool,
    /// Interpreter fuel for the profiling run.
    pub profile_fuel: u64,
}

impl CompileOptions {
    /// Defaults for a level.
    pub fn for_level(level: OptLevel) -> CompileOptions {
        CompileOptions {
            level,
            profile_input: ProfileInput::Train,
            ilp_override: None,
            enable_data_spec: false,
            profile_fuel: 2_000_000_000,
        }
    }
}

/// A compiled workload plus every static statistic the experiments need.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The machine program.
    pub mach: MachProgram,
    /// Scheduler plan statistics (planned cycles / IPC, register windows).
    pub plan: PlanStats,
    /// Structural-transform statistics (zeroed below ILP levels).
    pub ilp: epic_core::IlpStats,
    /// Inlined callsites.
    pub inlined: usize,
    /// Indirect callsites promoted.
    pub promoted: usize,
    /// Static code bytes.
    pub code_bytes: u64,
    /// Static (real op, nop) slot counts.
    pub static_ops: (usize, usize),
    /// Static op count before any transformation (post-frontend).
    pub frontend_ops: usize,
}

/// Errors from the driver.
#[derive(Debug)]
pub enum DriverError {
    /// MiniC compilation failed.
    Lang(epic_lang::LangError),
    /// The profiling run trapped.
    Profile(epic_ir::interp::Trap),
    /// IR verification failed after a transform.
    Verify(String),
    /// Emitted machine code failed its checks.
    Machine(String),
    /// Simulation trapped.
    Sim(epic_sim::SimTrap),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Lang(e) => write!(f, "frontend: {e}"),
            DriverError::Profile(e) => write!(f, "profiling: {e}"),
            DriverError::Verify(e) => write!(f, "verify: {e}"),
            DriverError::Machine(e) => write!(f, "machine check: {e}"),
            DriverError::Sim(e) => write!(f, "simulation: {e}"),
        }
    }
}

impl std::error::Error for DriverError {}

/// Compile MiniC source through the selected pipeline.
///
/// # Errors
/// Any pipeline stage failure (see [`DriverError`]).
pub fn compile_source(
    src: &str,
    train_args: &[i64],
    ref_args: &[i64],
    opts: &CompileOptions,
) -> Result<Compiled, DriverError> {
    let mut prog = epic_lang::compile(src).map_err(DriverError::Lang)?;
    let frontend_ops = prog.op_count();
    let mut inlined = 0;
    let mut promoted = 0;
    let mut ilp_stats = epic_core::IlpStats::default();

    if opts.level != OptLevel::Gcc {
        // Control-flow + call-target profiling (Fig. 4 top).
        let pargs = match opts.profile_input {
            ProfileInput::Train => train_args,
            ProfileInput::Refr => ref_args,
        };
        let profile = epic_opt::profile::profile_program(&mut prog, pargs, opts.profile_fuel)
            .map_err(DriverError::Profile)?;
        // Indirect-call promotion, then profile-guided inlining.
        promoted = epic_opt::promote::run(&mut prog, &profile, Default::default());
        inlined = epic_opt::inline::run(&mut prog, Default::default()).inlined;
    }
    // Classical optimization at every level (GCC performs "a very
    // competent level of traditional optimizations").
    epic_opt::classical_optimize_program(&mut prog);
    if opts.level != OptLevel::Gcc {
        // Interprocedural pointer analysis -> alias tags.
        epic_opt::alias::run(&mut prog);
    }
    let sched = match opts.level {
        OptLevel::Gcc => SchedOptions::gcc(),
        OptLevel::ONs => SchedOptions::o_ns(),
        OptLevel::IlpNs => SchedOptions::ilp_ns(),
        OptLevel::IlpCs => SchedOptions::ilp_cs(),
    };
    if matches!(opts.level, OptLevel::IlpNs | OptLevel::IlpCs) {
        let ilp_opts = opts.ilp_override.unwrap_or(match opts.level {
            OptLevel::IlpNs => IlpOptions::ilp_ns(),
            _ => IlpOptions::ilp_cs(),
        });
        for i in 0..prog.funcs.len() {
            ilp_stats.merge(&epic_core::ilp_transform(&mut prog.funcs[i], &ilp_opts));
        }
        epic_ir::verify::verify_program(&prog)
            .map_err(|e| DriverError::Verify(format!("{}", e[0])))?;
        if opts.enable_data_spec {
            for i in 0..prog.funcs.len() {
                let mut func = prog.funcs[i].clone();
                let s = epic_core::dataspec::run(&mut func, &prog, &Default::default());
                ilp_stats.loads_advanced += s.advanced;
                prog.funcs[i] = func;
            }
            epic_ir::verify::verify_program(&prog)
                .map_err(|e| DriverError::Verify(format!("{}", e[0])))?;
        }
    }
    let (mach, plan) = epic_sched::compile_program(&prog, &sched);
    epic_sched::check_machine_program(&mach).map_err(DriverError::Machine)?;
    let code_bytes = mach.code_bytes();
    let static_ops = mach.op_counts();
    Ok(Compiled {
        mach,
        plan,
        ilp: ilp_stats,
        inlined,
        promoted,
        code_bytes,
        static_ops,
        frontend_ops,
    })
}

/// Compile a workload at a level (with default options).
///
/// # Errors
/// See [`compile_source`].
pub fn compile(w: &Workload, opts: &CompileOptions) -> Result<Compiled, DriverError> {
    compile_source(w.source, &w.train_args, &w.ref_args, opts)
}

/// One measured (compiled + simulated) run.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Level measured.
    pub level: OptLevel,
    /// Static compilation statistics.
    pub compiled: CompiledStats,
    /// Simulation results on the chosen input.
    pub sim: SimResult,
}

/// The static side of a [`Measurement`] (no machine code, cheap to keep).
#[derive(Clone, Debug)]
pub struct CompiledStats {
    /// Planned statistics from the scheduler.
    pub plan: PlanStats,
    /// Structural transform statistics.
    pub ilp: epic_core::IlpStats,
    /// Inlined callsites.
    pub inlined: usize,
    /// Promoted indirect callsites.
    pub promoted: usize,
    /// Code bytes.
    pub code_bytes: u64,
    /// (real ops, nops).
    pub static_ops: (usize, usize),
    /// Post-frontend op count.
    pub frontend_ops: usize,
    /// Function names by id (Fig. 10 labels).
    pub func_names: Vec<String>,
}

/// Compile and simulate a workload on its reference input.
///
/// # Errors
/// See [`compile_source`] and the simulator's traps.
pub fn measure(
    w: &Workload,
    copts: &CompileOptions,
    sopts: &SimOptions,
) -> Result<Measurement, DriverError> {
    let compiled = compile(w, copts)?;
    let sim = epic_sim::run(&compiled.mach, &w.ref_args, sopts).map_err(DriverError::Sim)?;
    Ok(Measurement {
        level: copts.level,
        compiled: CompiledStats {
            plan: compiled.plan,
            ilp: compiled.ilp,
            inlined: compiled.inlined,
            promoted: compiled.promoted,
            code_bytes: compiled.code_bytes,
            static_ops: compiled.static_ops,
            frontend_ops: compiled.frontend_ops,
            func_names: compiled.mach.funcs.iter().map(|f| f.name.clone()).collect(),
        },
        sim,
    })
}

/// Convenience: interpret a workload (the semantic oracle) on given args.
///
/// # Errors
/// Propagates interpreter traps.
pub fn oracle(w: &Workload, args: &[i64]) -> Result<Vec<u64>, DriverError> {
    let prog: Program = w.compile();
    epic_ir::interp::run(&prog, args, Default::default())
        .map(|r| r.output)
        .map_err(DriverError::Profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_is_correct_on_one_workload_all_levels() {
        let w = epic_workloads::by_name("vortex_mc").unwrap();
        let want = oracle(&w, &w.train_args).unwrap();
        for level in OptLevel::ALL {
            let compiled = compile(&w, &CompileOptions::for_level(level)).unwrap();
            let sim = epic_sim::run(&compiled.mach, &w.train_args, &SimOptions::default())
                .unwrap_or_else(|e| panic!("{} at {}: {e}", w.name, level.name()));
            assert_eq!(sim.output, want, "{} at {}", w.name, level.name());
        }
    }

    #[test]
    fn levels_differ_statically() {
        let w = epic_workloads::by_name("crafty_mc").unwrap();
        let gcc = compile(&w, &CompileOptions::for_level(OptLevel::Gcc)).unwrap();
        let ons = compile(&w, &CompileOptions::for_level(OptLevel::ONs)).unwrap();
        let ilp = compile(&w, &CompileOptions::for_level(OptLevel::IlpNs)).unwrap();
        assert_eq!(gcc.inlined, 0);
        assert!(ons.inlined > 0, "O-NS should inline");
        assert!(ilp.ilp.regions_converted > 0, "ILP-NS should if-convert");
        assert!(
            ilp.code_bytes > ons.code_bytes,
            "structural transforms grow code: {} vs {}",
            ilp.code_bytes,
            ons.code_bytes
        );
    }
}
