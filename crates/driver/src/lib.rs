//! # epic-driver
//!
//! End-to-end orchestration of the paper's Fig. 4 pipeline, exposing the
//! four compiler configurations of Table 1:
//!
//! | Level | profile | promote+inline | pointer analysis | structural ILP | speculation |
//! |-------|---------|----------------|------------------|----------------|-------------|
//! | GCC    | –  | – | – (conservative) | – | – |
//! | O-NS   | ✔  | ✔ | ✔ | – | – |
//! | ILP-NS | ✔  | ✔ | ✔ | ✔ | safe only |
//! | ILP-CS | ✔  | ✔ | ✔ | ✔ | control speculation |
//!
//! [`compile`] produces machine code plus all static statistics;
//! [`MeasureRequest`] additionally runs the simulator on the reference
//! input — it is the one measurement entry point.

use epic_core::IlpOptions;
use epic_ir::Program;
use epic_mach::MachProgram;
use epic_sched::PlanStats;
use epic_sim::{SimOptions, SimResult};
use epic_workloads::Workload;

pub mod parallel;
pub mod pipeline;
pub mod request;

pub use parallel::{par_map, MatrixCell, MatrixError, MeasurementCache};
pub use pipeline::{passes_for, Pass, PassRecord, PassTimeline, PipelineCx};
pub use request::{CachePolicy, MeasureReport, MeasureRequest, MeasuredCell, TracePolicy};

use epic_trace::Trace;

/// The paper's compiler configurations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OptLevel {
    /// GCC 3.2-like: classical optimization only, no inlining, no
    /// interprocedural analysis, no profile feedback.
    Gcc,
    /// IMPACT classical baseline (inlining + pointer analysis + profile).
    ONs,
    /// + structural ILP formation, no control speculation.
    IlpNs,
    /// + control speculation (general model unless overridden).
    IlpCs,
}

impl OptLevel {
    /// All levels in Table 1 order.
    pub const ALL: [OptLevel; 4] = [
        OptLevel::Gcc,
        OptLevel::ONs,
        OptLevel::IlpNs,
        OptLevel::IlpCs,
    ];

    /// Display name as in the paper.
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::Gcc => "GCC",
            OptLevel::ONs => "O-NS",
            OptLevel::IlpNs => "ILP-NS",
            OptLevel::IlpCs => "ILP-CS",
        }
    }
}

/// Which input trains the profile (Sec. 4.6 swaps this).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ProfileInput {
    /// SPEC methodology: train on the training input.
    #[default]
    Train,
    /// Profile-variation experiment: train on the reference input.
    Refr,
}

/// Compilation options.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Configuration level.
    pub level: OptLevel,
    /// Profile source.
    pub profile_input: ProfileInput,
    /// Override the structural-transform knobs (ablations); `None` uses
    /// the level's defaults.
    pub ilp_override: Option<IlpOptions>,
    /// Enable ALAT data speculation (`ld.a`/`chk.a`) — the paper's
    /// future-work extension; off by default to match its configuration.
    pub enable_data_spec: bool,
    /// Interpreter fuel for the profiling run.
    pub profile_fuel: u64,
    /// Debug mode: re-verify the IR after every pass, so a transform bug
    /// is caught at the pass that introduced it (off by default — the
    /// pipeline verifies at its usual checkpoints either way).
    pub verify_each_pass: bool,
    /// Test-only: deliberately miscompile by perturbing one immediate in
    /// the entry function after classical optimization. Exists so the
    /// fuzzing/shrinking harness can prove end-to-end that it detects and
    /// minimizes a real miscompile; never set outside tests.
    pub inject_bug: bool,
}

impl CompileOptions {
    /// Defaults for a level.
    pub fn for_level(level: OptLevel) -> CompileOptions {
        CompileOptions {
            level,
            profile_input: ProfileInput::Train,
            ilp_override: None,
            enable_data_spec: false,
            profile_fuel: 2_000_000_000,
            verify_each_pass: false,
            inject_bug: false,
        }
    }
}

/// A compiled workload plus every static statistic the experiments need.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The machine program.
    pub mach: MachProgram,
    /// Scheduler plan statistics (planned cycles / IPC, register windows).
    pub plan: PlanStats,
    /// Structural-transform statistics (zeroed below ILP levels).
    pub ilp: epic_core::IlpStats,
    /// Inlined callsites.
    pub inlined: usize,
    /// Indirect callsites promoted.
    pub promoted: usize,
    /// Static code bytes.
    pub code_bytes: u64,
    /// Static (real op, nop) slot counts.
    pub static_ops: (usize, usize),
    /// Static op count before any transformation (post-frontend).
    pub frontend_ops: usize,
    /// Per-pass wall time and op/block-count deltas for this compilation.
    pub pass_timeline: PassTimeline,
}

/// Errors from the driver.
#[derive(Debug)]
pub enum DriverError {
    /// MiniC compilation failed.
    Lang(epic_lang::LangError),
    /// The profiling run trapped.
    Profile(epic_ir::interp::Trap),
    /// IR verification failed after a transform.
    Verify(String),
    /// Emitted machine code failed its checks.
    Machine(String),
    /// Simulation trapped.
    Sim(epic_sim::SimTrap),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Lang(e) => write!(f, "frontend: {e}"),
            DriverError::Profile(e) => write!(f, "profiling: {e}"),
            DriverError::Verify(e) => write!(f, "verify: {e}"),
            DriverError::Machine(e) => write!(f, "machine check: {e}"),
            DriverError::Sim(e) => write!(f, "simulation: {e}"),
        }
    }
}

impl std::error::Error for DriverError {}

/// Compile MiniC source through the selected pipeline.
///
/// # Errors
/// Any pipeline stage failure (see [`DriverError`]).
pub fn compile_source(
    src: &str,
    train_args: &[i64],
    ref_args: &[i64],
    opts: &CompileOptions,
) -> Result<Compiled, DriverError> {
    compile_source_traced(src, train_args, ref_args, opts, &Trace::disabled())
}

/// [`compile_source`] recording into `trace`: the whole compilation is
/// one `compile` span with a `pass:<name>` child per executed pass (the
/// returned [`PassTimeline`] is a view over those same spans).
///
/// # Errors
/// Any pipeline stage failure (see [`DriverError`]).
pub fn compile_source_traced(
    src: &str,
    train_args: &[i64],
    ref_args: &[i64],
    opts: &CompileOptions,
    trace: &Trace,
) -> Result<Compiled, DriverError> {
    let span = trace.span("compile");
    let prog = epic_lang::compile(src).map_err(DriverError::Lang)?;
    let frontend_ops = prog.op_count();
    let mut cx = PipelineCx::new(prog, opts, train_args, ref_args);
    let passes = passes_for(opts);
    let pass_timeline = pipeline::run_passes(&mut cx, &passes, opts.verify_each_pass, trace)?;
    let wall = span.finish();
    epic_trace::global()
        .histogram("driver.compile_us")
        .record(wall.as_micros() as u64);
    let (mach, plan) = cx
        .mach
        .take()
        .expect("pipeline ends with the schedule pass");
    let code_bytes = mach.code_bytes();
    let static_ops = mach.op_counts();
    Ok(Compiled {
        mach,
        plan,
        ilp: cx.ilp,
        inlined: cx.inlined,
        promoted: cx.promoted,
        code_bytes,
        static_ops,
        frontend_ops,
        pass_timeline,
    })
}

/// Compile a workload at a level (with default options).
///
/// # Errors
/// See [`compile_source`].
pub fn compile(w: &Workload, opts: &CompileOptions) -> Result<Compiled, DriverError> {
    compile_source(w.source, &w.train_args, &w.ref_args, opts)
}

/// One measured (compiled + simulated) run.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Level measured.
    pub level: OptLevel,
    /// Static compilation statistics.
    pub compiled: CompiledStats,
    /// Simulation results on the chosen input.
    pub sim: SimResult,
}

/// The static side of a [`Measurement`] (no machine code, cheap to keep).
#[derive(Clone, Debug)]
pub struct CompiledStats {
    /// Planned statistics from the scheduler.
    pub plan: PlanStats,
    /// Structural transform statistics.
    pub ilp: epic_core::IlpStats,
    /// Inlined callsites.
    pub inlined: usize,
    /// Promoted indirect callsites.
    pub promoted: usize,
    /// Code bytes.
    pub code_bytes: u64,
    /// (real ops, nops).
    pub static_ops: (usize, usize),
    /// Post-frontend op count.
    pub frontend_ops: usize,
    /// Function names by id (Fig. 10 labels).
    pub func_names: Vec<String>,
    /// Per-pass compile-time breakdown.
    pub pass_timeline: PassTimeline,
}

impl Compiled {
    /// The static side of this compilation (everything a [`Measurement`]
    /// keeps once the machine code itself is no longer needed).
    pub fn stats(&self) -> CompiledStats {
        CompiledStats {
            plan: self.plan,
            ilp: self.ilp,
            inlined: self.inlined,
            promoted: self.promoted,
            code_bytes: self.code_bytes,
            static_ops: self.static_ops,
            frontend_ops: self.frontend_ops,
            func_names: self.mach.funcs.iter().map(|f| f.name.clone()).collect(),
            pass_timeline: self.pass_timeline.clone(),
        }
    }
}

/// Compile and simulate a workload on its reference input, recording a
/// `compile → pass:<name>…` and `sim → dispatch/attrib` span tree into
/// `trace` (plus deterministic `sim.charge.<category>` histograms into
/// the trace's registry). The usual entry point is
/// [`MeasureRequest::run`], which creates one trace per cell.
///
/// # Errors
/// See [`compile_source`] and the simulator's traps.
pub fn measure_traced(
    w: &Workload,
    copts: &CompileOptions,
    sopts: &SimOptions,
    trace: &Trace,
) -> Result<Measurement, DriverError> {
    let compiled = compile_source_traced(w.source, &w.train_args, &w.ref_args, copts, trace)?;
    let sim_span = trace.span("sim");
    let dispatch = trace.span("dispatch");
    let (result, stats) = if trace.is_enabled() {
        let (sink, stats) = epic_sim::TraceSink::new();
        let r = epic_sim::run_with_sinks(&compiled.mach, &w.ref_args, sopts, vec![Box::new(sink)]);
        (r, Some(stats))
    } else {
        (epic_sim::run(&compiled.mach, &w.ref_args, sopts), None)
    };
    dispatch.finish();
    let sim = result.map_err(DriverError::Sim)?;
    if let Some(stats) = stats {
        let attrib = trace.span("attrib");
        stats
            .lock()
            .expect("charge stats")
            .flush_into(trace.metrics());
        attrib.finish();
    }
    let sim_wall = sim_span.finish();
    let g = epic_trace::global();
    g.histogram("driver.sim_us")
        .record(sim_wall.as_micros() as u64);
    // per-predictor totals, so `epicc top` can break prediction quality
    // out by zoo member across everything a process has measured
    let pname = sopts.predictor.name();
    g.counter(&format!("sim.predict.{pname}.predictions"))
        .add(sim.counters.branch_predictions);
    g.counter(&format!("sim.predict.{pname}.mispredictions"))
        .add(sim.counters.branch_mispredictions);
    Ok(Measurement {
        level: copts.level,
        compiled: compiled.stats(),
        sim,
    })
}

/// Convenience: interpret a workload (the semantic oracle) on given args.
///
/// # Errors
/// Propagates interpreter traps.
pub fn oracle(w: &Workload, args: &[i64]) -> Result<Vec<u64>, DriverError> {
    let prog: Program = w.compile();
    epic_ir::interp::run(&prog, args, Default::default())
        .map(|r| r.output)
        .map_err(DriverError::Profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_is_correct_on_one_workload_all_levels() {
        let w = epic_workloads::by_name("vortex_mc").unwrap();
        let want = oracle(&w, &w.train_args).unwrap();
        for level in OptLevel::ALL {
            let compiled = compile(&w, &CompileOptions::for_level(level)).unwrap();
            let sim = epic_sim::run(&compiled.mach, &w.train_args, &SimOptions::default())
                .unwrap_or_else(|e| panic!("{} at {}: {e}", w.name, level.name()));
            assert_eq!(sim.output, want, "{} at {}", w.name, level.name());
        }
    }

    #[test]
    fn pass_timeline_names_every_phase_and_verify_each_pass_is_clean() {
        let w = epic_workloads::by_name("gzip_mc").unwrap();
        for level in OptLevel::ALL {
            let mut opts = CompileOptions::for_level(level);
            opts.verify_each_pass = true;
            let compiled = compile(&w, &opts).unwrap();
            let tl = &compiled.pass_timeline;
            assert!(!tl.is_empty(), "{} timeline empty", level.name());
            assert!(tl.get("classical").is_some(), "{}", level.name());
            assert!(tl.get("schedule").is_some(), "{}", level.name());
            assert!(tl.get("mach-check").is_some(), "{}", level.name());
            if level == OptLevel::Gcc {
                assert!(tl.get("profile").is_none(), "GCC takes no profile");
            } else {
                assert!(tl.get("profile").is_some(), "{}", level.name());
                assert!(tl.get("inline").is_some(), "{}", level.name());
            }
            if matches!(level, OptLevel::IlpNs | OptLevel::IlpCs) {
                let ilp = tl.get("ilp-transform").unwrap();
                assert!(ilp.op_delta() > 0, "structural transforms grow code");
                assert!(tl.get("verify").is_some());
            }
            assert!(tl.total_wall() > std::time::Duration::ZERO);
            assert!(!tl.render().is_empty());
        }
    }

    #[test]
    fn data_spec_pass_runs_in_place_and_counts_advances() {
        let w = epic_workloads::by_name("gap_mc").unwrap();
        let mut opts = CompileOptions::for_level(OptLevel::IlpCs);
        opts.enable_data_spec = true;
        opts.verify_each_pass = true;
        let compiled = compile(&w, &opts).unwrap();
        assert!(compiled.pass_timeline.get("data-spec").is_some());
    }

    #[test]
    fn levels_differ_statically() {
        let w = epic_workloads::by_name("crafty_mc").unwrap();
        let gcc = compile(&w, &CompileOptions::for_level(OptLevel::Gcc)).unwrap();
        let ons = compile(&w, &CompileOptions::for_level(OptLevel::ONs)).unwrap();
        let ilp = compile(&w, &CompileOptions::for_level(OptLevel::IlpNs)).unwrap();
        assert_eq!(gcc.inlined, 0);
        assert!(ons.inlined > 0, "O-NS should inline");
        assert!(ilp.ilp.regions_converted > 0, "ILP-NS should if-convert");
        assert!(
            ilp.code_bytes > ons.code_bytes,
            "structural transforms grow code: {} vs {}",
            ilp.code_bytes,
            ons.code_bytes
        );
    }
}
