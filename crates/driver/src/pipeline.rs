//! The pass manager: the paper's Fig. 4 pipeline as an explicit,
//! instrumented sequence of passes instead of one monolithic function.
//!
//! Each [`Pass`] mutates a [`PipelineCx`] (the program being compiled plus
//! everything the passes exchange: profile, accumulated statistics, and
//! finally the scheduled machine program). The runner times every pass and
//! records op/block-count deltas into a [`PassTimeline`], surfaced on
//! [`Compiled::pass_timeline`](crate::Compiled::pass_timeline) so any
//! experiment can attribute compile time and code growth per phase.
//! [`passes_for`] maps each [`OptLevel`](crate::OptLevel) to its
//! declarative pass list.

use crate::{CompileOptions, DriverError, OptLevel};
use epic_core::{IlpOptions, IlpStats};
use epic_ir::profile::Profile;
use epic_ir::Program;
use epic_mach::MachProgram;
use epic_sched::{PlanStats, SchedOptions};
use epic_trace::Trace;
use std::time::Duration;

/// Everything a pass can see or produce. Owned by the runner for the
/// duration of one compilation.
pub struct PipelineCx<'a> {
    /// The program under compilation (IR until the schedule pass).
    pub prog: Program,
    /// The options this compilation was invoked with.
    pub opts: &'a CompileOptions,
    /// Training input (profile feedback).
    pub train_args: &'a [i64],
    /// Reference input (profile-variation experiments).
    pub ref_args: &'a [i64],
    /// Profile collected by the profile pass (needed by promotion).
    pub profile: Option<Profile>,
    /// Inlined callsites so far.
    pub inlined: usize,
    /// Indirect callsites promoted so far.
    pub promoted: usize,
    /// Accumulated structural-transform statistics.
    pub ilp: IlpStats,
    /// The scheduled machine program (set by the schedule pass).
    pub mach: Option<(MachProgram, PlanStats)>,
}

impl<'a> PipelineCx<'a> {
    /// Fresh context around a frontend-produced program.
    pub fn new(
        prog: Program,
        opts: &'a CompileOptions,
        train_args: &'a [i64],
        ref_args: &'a [i64],
    ) -> PipelineCx<'a> {
        PipelineCx {
            prog,
            opts,
            train_args,
            ref_args,
            profile: None,
            inlined: 0,
            promoted: 0,
            ilp: IlpStats::default(),
            mach: None,
        }
    }
}

/// One phase of the compilation pipeline.
pub trait Pass: Sync {
    /// Stable name, used in timelines and error messages.
    fn name(&self) -> &'static str;
    /// Transform the context.
    ///
    /// # Errors
    /// Pass-specific failures (trap during profiling, verification, …).
    fn run(&self, cx: &mut PipelineCx) -> Result<(), DriverError>;
}

/// Timing and size deltas for one executed pass.
#[derive(Clone, Debug)]
pub struct PassRecord {
    /// [`Pass::name`] of the pass.
    pub name: &'static str,
    /// Wall time spent inside the pass.
    pub wall: Duration,
    /// Static IR op count entering the pass.
    pub ops_before: usize,
    /// Static IR op count leaving the pass.
    pub ops_after: usize,
    /// Live block count entering the pass.
    pub blocks_before: usize,
    /// Live block count leaving the pass.
    pub blocks_after: usize,
}

impl PassRecord {
    /// Signed op-count change (positive = code growth).
    pub fn op_delta(&self) -> i64 {
        self.ops_after as i64 - self.ops_before as i64
    }

    /// Signed block-count change.
    pub fn block_delta(&self) -> i64 {
        self.blocks_after as i64 - self.blocks_before as i64
    }
}

/// Per-pass breakdown of one compilation.
#[derive(Clone, Debug, Default)]
pub struct PassTimeline {
    /// Records in execution order.
    pub passes: Vec<PassRecord>,
}

impl PassTimeline {
    /// Total wall time across all passes.
    pub fn total_wall(&self) -> Duration {
        self.passes.iter().map(|p| p.wall).sum()
    }

    /// Record for a pass name (first occurrence), if it ran.
    pub fn get(&self, name: &str) -> Option<&PassRecord> {
        self.passes.iter().find(|p| p.name == name)
    }

    /// True if no pass ran (never the case for a driver compilation).
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// A deterministic digest of which passes ran and how they reshaped
    /// the program: per pass, the name plus log-bucketed op/block deltas
    /// (wall time is excluded — it is not deterministic). Two compilations
    /// share a signature exactly when every pass did structurally similar
    /// work, which makes the signature a cheap coverage signal for
    /// feedback-directed fuzzing: a mutant with an unseen signature lit up
    /// new pass behavior.
    pub fn coverage_signature(&self) -> u64 {
        fn bucket(d: i64) -> u64 {
            // sign and bit-length: 0, ±1-ish, ±2-3, ±4-7, … collapse noise
            let mag = 64 - d.unsigned_abs().leading_zeros() as u64;
            if d < 0 {
                0x80 | mag
            } else {
                mag
            }
        }
        let mut h = 0xcbf29ce484222325u64;
        let mut eat = |b: u64| {
            for i in 0..8 {
                h ^= (b >> (8 * i)) & 0xff;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for p in &self.passes {
            for c in p.name.bytes() {
                eat(c as u64);
            }
            eat(bucket(p.op_delta()));
            eat(bucket(p.block_delta()));
        }
        h
    }

    /// Human-readable multi-line summary (name, time, op delta).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for p in &self.passes {
            out.push_str(&format!(
                "{:<14} {:>9.3}ms  ops {:>6} -> {:<6} ({:+})  blocks {:+}\n",
                p.name,
                p.wall.as_secs_f64() * 1e3,
                p.ops_before,
                p.ops_after,
                p.op_delta(),
                p.block_delta(),
            ));
        }
        out
    }
}

/// Join *all* verifier errors into one message (a transform bug usually
/// breaks many ops at once; reporting only the first hid the pattern).
fn verify_all(prog: &Program, ctx: &str) -> Result<(), DriverError> {
    epic_ir::verify::verify_program(prog).map_err(|errs| {
        let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        DriverError::Verify(format!(
            "{ctx}: {} error(s): {}",
            msgs.len(),
            msgs.join("; ")
        ))
    })
}

/// Run `passes` over `cx`, producing the per-pass timeline. With
/// `verify_each` (the opt-in debug mode), the IR is re-verified after
/// every pass and a failure names the offending pass.
///
/// Every pass runs inside a `pass:<name>` span on `trace`; the
/// [`PassRecord::wall`] is that span's duration, so the timeline is a
/// view over the same measurements the span tree carries (pass a
/// [`Trace::disabled`] handle to time without recording).
///
/// # Errors
/// The first pass failure, or the first post-pass verification failure in
/// `verify_each` mode.
pub fn run_passes(
    cx: &mut PipelineCx,
    passes: &[Box<dyn Pass>],
    verify_each: bool,
    trace: &Trace,
) -> Result<PassTimeline, DriverError> {
    let mut timeline = PassTimeline::default();
    for pass in passes {
        let ops_before = cx.prog.op_count();
        let blocks_before = cx.prog.block_count();
        let span = trace.span_pair("pass:", pass.name());
        let result = pass.run(cx);
        let wall = span.finish();
        result?;
        timeline.passes.push(PassRecord {
            name: pass.name(),
            wall,
            ops_before,
            ops_after: cx.prog.op_count(),
            blocks_before,
            blocks_after: cx.prog.block_count(),
        });
        if verify_each && cx.mach.is_none() {
            verify_all(&cx.prog, &format!("after pass '{}'", pass.name()))?;
        }
    }
    Ok(timeline)
}

/// The declarative pass list for a configuration — Table 1 as data.
pub fn passes_for(opts: &CompileOptions) -> Vec<Box<dyn Pass>> {
    let mut passes: Vec<Box<dyn Pass>> = Vec::new();
    if opts.level != OptLevel::Gcc {
        // Control-flow + call-target profiling (Fig. 4 top), then the
        // profile consumers.
        passes.push(Box::new(ProfilePass));
        passes.push(Box::new(PromotePass));
        passes.push(Box::new(InlinePass));
    }
    // Classical optimization at every level (GCC performs "a very
    // competent level of traditional optimizations").
    passes.push(Box::new(ClassicalPass));
    if opts.inject_bug {
        passes.push(Box::new(BugInjectPass));
    }
    if opts.level != OptLevel::Gcc {
        passes.push(Box::new(AliasPass));
    }
    if matches!(opts.level, OptLevel::IlpNs | OptLevel::IlpCs) {
        let ilp_opts = opts.ilp_override.unwrap_or(match opts.level {
            OptLevel::IlpNs => IlpOptions::ilp_ns(),
            _ => IlpOptions::ilp_cs(),
        });
        passes.push(Box::new(IlpTransformPass { opts: ilp_opts }));
        passes.push(Box::new(VerifyPass {
            after: "ilp-transform",
        }));
        if opts.enable_data_spec {
            passes.push(Box::new(DataSpecPass));
            passes.push(Box::new(VerifyPass { after: "data-spec" }));
        }
    }
    let sched = match opts.level {
        OptLevel::Gcc => SchedOptions::gcc(),
        OptLevel::ONs => SchedOptions::o_ns(),
        OptLevel::IlpNs => SchedOptions::ilp_ns(),
        OptLevel::IlpCs => SchedOptions::ilp_cs(),
    };
    passes.push(Box::new(SchedulePass { opts: sched }));
    passes.push(Box::new(MachineCheckPass));
    passes
}

/// Profile on the selected input and annotate the IR with weights.
pub struct ProfilePass;

impl Pass for ProfilePass {
    fn name(&self) -> &'static str {
        "profile"
    }

    fn run(&self, cx: &mut PipelineCx) -> Result<(), DriverError> {
        let pargs = match cx.opts.profile_input {
            crate::ProfileInput::Train => cx.train_args,
            crate::ProfileInput::Refr => cx.ref_args,
        };
        let profile = epic_opt::profile::profile_program(&mut cx.prog, pargs, cx.opts.profile_fuel)
            .map_err(DriverError::Profile)?;
        cx.profile = Some(profile);
        Ok(())
    }
}

/// Promote hot indirect calls to guarded direct calls.
pub struct PromotePass;

impl Pass for PromotePass {
    fn name(&self) -> &'static str {
        "promote"
    }

    fn run(&self, cx: &mut PipelineCx) -> Result<(), DriverError> {
        let profile = cx.profile.take().expect("promote runs after profile");
        cx.promoted = epic_opt::promote::run(&mut cx.prog, &profile, Default::default());
        cx.profile = Some(profile);
        Ok(())
    }
}

/// Profile-guided inlining.
pub struct InlinePass;

impl Pass for InlinePass {
    fn name(&self) -> &'static str {
        "inline"
    }

    fn run(&self, cx: &mut PipelineCx) -> Result<(), DriverError> {
        cx.inlined = epic_opt::inline::run(&mut cx.prog, Default::default()).inlined;
        Ok(())
    }
}

/// Classical scalar optimization suite (LVN, propagation, DCE, LICM, …).
pub struct ClassicalPass;

impl Pass for ClassicalPass {
    fn name(&self) -> &'static str {
        "classical"
    }

    fn run(&self, cx: &mut PipelineCx) -> Result<(), DriverError> {
        epic_opt::classical_optimize_program(&mut cx.prog);
        Ok(())
    }
}

/// Test-only deliberate miscompile (see
/// [`CompileOptions::inject_bug`](crate::CompileOptions::inject_bug)):
/// bumps every add-immediate in the program by one — a classic
/// off-by-one constant-folding bug. The IR stays verifier-clean, so the
/// bug is observable only as wrong output — exactly the class of
/// miscompile the differential oracles exist to catch.
pub struct BugInjectPass;

impl Pass for BugInjectPass {
    fn name(&self) -> &'static str {
        "bug-inject"
    }

    fn run(&self, cx: &mut PipelineCx) -> Result<(), DriverError> {
        for f in &mut cx.prog.funcs {
            let ids: Vec<_> = f.block_ids().collect();
            for b in ids {
                for op in &mut f.block_mut(b).ops {
                    if op.opcode != epic_ir::Opcode::Add {
                        continue;
                    }
                    if let Some(epic_ir::Operand::Imm(i)) = op
                        .srcs
                        .iter_mut()
                        .find(|s| matches!(s, epic_ir::Operand::Imm(_)))
                    {
                        *i = i.wrapping_add(1);
                    }
                }
            }
        }
        Ok(())
    }
}

/// Interprocedural pointer analysis -> alias tags.
pub struct AliasPass;

impl Pass for AliasPass {
    fn name(&self) -> &'static str {
        "alias"
    }

    fn run(&self, cx: &mut PipelineCx) -> Result<(), DriverError> {
        epic_opt::alias::run(&mut cx.prog);
        Ok(())
    }
}

/// Structural ILP transformation (superblock/hyperblock formation, tail
/// duplication, peeling, unrolling, control speculation).
pub struct IlpTransformPass {
    /// Transform knobs (per-level defaults or an ablation override).
    pub opts: IlpOptions,
}

impl Pass for IlpTransformPass {
    fn name(&self) -> &'static str {
        "ilp-transform"
    }

    fn run(&self, cx: &mut PipelineCx) -> Result<(), DriverError> {
        for i in 0..cx.prog.funcs.len() {
            cx.ilp
                .merge(&epic_core::ilp_transform(&mut cx.prog.funcs[i], &self.opts));
        }
        Ok(())
    }
}

/// Data speculation via advanced loads (`ld.a`/`chk.a`), in place — the
/// alias sets are a disjoint `Program` field, so no function clone.
pub struct DataSpecPass;

impl Pass for DataSpecPass {
    fn name(&self) -> &'static str {
        "data-spec"
    }

    fn run(&self, cx: &mut PipelineCx) -> Result<(), DriverError> {
        let prog = &mut cx.prog;
        for i in 0..prog.funcs.len() {
            let s =
                epic_core::dataspec::run(&mut prog.funcs[i], &prog.alias_sets, &Default::default());
            cx.ilp.loads_advanced += s.advanced;
        }
        Ok(())
    }
}

/// Full IR verification; `after` names the producing phase in errors.
pub struct VerifyPass {
    /// The phase whose output is being checked.
    pub after: &'static str,
}

impl Pass for VerifyPass {
    fn name(&self) -> &'static str {
        "verify"
    }

    fn run(&self, cx: &mut PipelineCx) -> Result<(), DriverError> {
        verify_all(&cx.prog, &format!("after {}", self.after))
    }
}

/// List-schedule, allocate registers, pack bundles, emit machine code.
pub struct SchedulePass {
    /// Scheduler configuration for the level.
    pub opts: SchedOptions,
}

impl Pass for SchedulePass {
    fn name(&self) -> &'static str {
        "schedule"
    }

    fn run(&self, cx: &mut PipelineCx) -> Result<(), DriverError> {
        cx.mach = Some(epic_sched::compile_program(&cx.prog, &self.opts));
        Ok(())
    }
}

/// Machine-level invariant checks on the emitted program.
pub struct MachineCheckPass;

impl Pass for MachineCheckPass {
    fn name(&self) -> &'static str {
        "mach-check"
    }

    fn run(&self, cx: &mut PipelineCx) -> Result<(), DriverError> {
        let (mach, _) = cx.mach.as_ref().expect("mach-check runs after schedule");
        epic_sched::check_machine_program(mach).map_err(DriverError::Machine)
    }
}
