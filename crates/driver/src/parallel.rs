//! Std-only parallel execution layer: a bounded worker pool over
//! `std::thread::scope` backing [`MeasureRequest`](crate::MeasureRequest)
//! — the batch measurement API every experiment in `epic-bench` uses.
//!
//! No external crates: work distribution is an atomic cursor over the
//! flattened (workload × level) task list, so the pool stays busy even
//! when task costs are wildly uneven (ILP-CS compiles + simulates are
//! several times costlier than GCC ones).

use crate::{CompileOptions, DriverError, Measurement, OptLevel};
use epic_sim::SimOptions;
use epic_workloads::Workload;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count actually used for `n` tasks: `requested` if nonzero,
/// otherwise the machine's available parallelism, always clamped to `n`.
pub fn effective_workers(requested: usize, n: usize) -> usize {
    let w = if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    };
    w.clamp(1, n.max(1))
}

/// Apply `f` to every item on a bounded pool of scoped threads, returning
/// results in item order. `workers == 0` uses the available parallelism.
///
/// # Panics
/// Propagates a panic from any worker (after all threads join).
pub fn par_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = effective_workers(workers, n);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().expect("result slot") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock")
                .expect("worker filled slot")
        })
        .collect()
}

/// A failure inside a measurement sweep, tagged with its cell.
#[derive(Debug)]
pub struct MatrixError {
    /// Workload that failed.
    pub workload: String,
    /// Level it was being measured at.
    pub level: OptLevel,
    /// The underlying driver failure.
    pub error: DriverError,
}

impl std::fmt::Display for MatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "measure({}, {}): {}",
            self.workload,
            self.level.name(),
            self.error
        )
    }
}

impl std::error::Error for MatrixError {}

/// A pluggable measurement cache for
/// [`CachePolicy::Store`](crate::CachePolicy): the driver asks it
/// before compiling a cell and offers the result back after.
/// Implementations decide what is cacheable (an implementation
/// must return `None` for option combinations it does not key on) and
/// where results live — `epic-serve`'s content-addressed artifact store
/// is the production implementation.
pub trait MeasurementCache: Sync {
    /// A previously stored measurement for this exact cell, if any.
    fn lookup(
        &self,
        w: &Workload,
        copts: &CompileOptions,
        sopts: &SimOptions,
    ) -> Option<Measurement>;

    /// Offer a freshly measured cell for storage.
    fn store(&self, w: &Workload, copts: &CompileOptions, sopts: &SimOptions, m: &Measurement);
}

/// One measured cell plus whether it was served from a cache.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    /// The measurement (cached or fresh — bit-identical either way).
    pub measurement: Measurement,
    /// True when the cell came out of the cache without compiling.
    pub cache_hit: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::MeasureRequest;

    #[test]
    fn par_map_preserves_order_and_covers_all_items() {
        let items: Vec<usize> = (0..100).collect();
        let got = par_map(&items, 7, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(got, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(&[] as &[u8], 4, |_, &x| x), Vec::<u8>::new());
        assert_eq!(par_map(&[9u8], 0, |_, &x| x), vec![9]);
    }

    #[test]
    fn effective_workers_clamps() {
        assert_eq!(effective_workers(8, 3), 3);
        assert_eq!(effective_workers(2, 100), 2);
        assert!(effective_workers(0, 100) >= 1);
        assert_eq!(effective_workers(0, 0), 1);
    }

    #[test]
    fn matrix_shape_matches_inputs() {
        let workloads = vec![epic_workloads::by_name("vortex_mc").unwrap()];
        let levels = [OptLevel::Gcc, OptLevel::ONs];
        let report = MeasureRequest::new(&workloads)
            .levels(&levels)
            .run()
            .unwrap();
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.cells[0].len(), 2);
        assert_eq!(report.cells[0][0].measurement.level, OptLevel::Gcc);
        assert_eq!(report.cells[0][1].measurement.level, OptLevel::ONs);
    }

    #[test]
    fn matrix_is_identical_across_worker_counts() {
        // one worker (fully serial), and far more workers than the two
        // jobs (most workers find the cursor exhausted immediately) must
        // produce byte-identical measurements — compilation is a pure
        // function of (source, options)
        let workloads = vec![epic_workloads::by_name("mcf_mc").unwrap()];
        let levels = [OptLevel::Gcc, OptLevel::IlpCs];
        let run = |workers| {
            MeasureRequest::new(&workloads)
                .levels(&levels)
                .threads(workers)
                .run()
                .unwrap()
        };
        let serial = run(1);
        let oversubscribed = run(64);
        assert_eq!(serial.cells.len(), 1);
        assert_eq!(oversubscribed.cells[0].len(), 2);
        for l in 0..levels.len() {
            let (s, o) = (
                &serial.cells[0][l].measurement,
                &oversubscribed.cells[0][l].measurement,
            );
            assert_eq!(s.level, o.level);
            assert_eq!(s.sim.cycles, o.sim.cycles);
            assert_eq!(s.sim.checksum, o.sim.checksum);
            assert_eq!(s.compiled.code_bytes, o.compiled.code_bytes);
        }
    }
}
