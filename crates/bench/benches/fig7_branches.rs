//! Figure 7: effects on branches and prediction — dynamic branch counts,
//! mispredictions, and correct-prediction rate per configuration.
//!
//! Paper: region formation removes 27% of dynamic branches on average and
//! reduces misprediction stall cycles by 22%; branch misprediction is a
//! small share of cycles on Itanium 2 (Sec. 3.5).

use epic_bench::{banner, f2, f3, run_suite, Table};
use epic_driver::OptLevel;

fn main() {
    banner(
        "Figure 7 — branches and prediction",
        "27% average dynamic-branch removal; 22% misprediction-stall reduction",
    );
    let levels = [OptLevel::ONs, OptLevel::IlpNs, OptLevel::IlpCs];
    let suite = run_suite(&levels);
    let mut t = Table::new(&[
        "Benchmark",
        "level",
        "dyn-br",
        "predicts",
        "mispred",
        "rate",
        "flush-cy",
    ]);
    let mut br_base = 0u64;
    let mut br_ilp = 0u64;
    let mut flush_base = 0u64;
    let mut flush_ilp = 0u64;
    for (wi, w) in suite.workloads.iter().enumerate() {
        for (li, &level) in levels.iter().enumerate() {
            let m = &suite.get(wi, level).sim;
            let c = &m.counters;
            let rate = if c.branch_predictions > 0 {
                1.0 - c.branch_mispredictions as f64 / c.branch_predictions as f64
            } else {
                1.0
            };
            t.row(vec![
                if li == 0 {
                    w.spec_name.to_string()
                } else {
                    String::new()
                },
                level.name().to_string(),
                c.dynamic_branches.to_string(),
                c.branch_predictions.to_string(),
                c.branch_mispredictions.to_string(),
                f3(rate),
                m.acct.br_mispredict_flush().to_string(),
            ]);
            if level == OptLevel::ONs {
                br_base += c.dynamic_branches;
                flush_base += m.acct.br_mispredict_flush();
            }
            if level == OptLevel::IlpCs {
                br_ilp += c.dynamic_branches;
                flush_ilp += m.acct.br_mispredict_flush();
            }
        }
    }
    t.print();
    println!();
    println!(
        "dynamic branch change at ILP-CS (paper: -27%): {:+.1}%",
        (br_ilp as f64 / br_base as f64 - 1.0) * 100.0
    );
    println!(
        "misprediction flush-cycle change (paper: -22%): {:+.1}%",
        (flush_ilp as f64 / flush_base.max(1) as f64 - 1.0) * 100.0
    );
    let total: u64 = (0..suite.workloads.len())
        .map(|wi| suite.get(wi, OptLevel::IlpCs).sim.cycles)
        .sum();
    println!(
        "misprediction share of all cycles at ILP-CS (paper: small): {:.2}%",
        100.0 * flush_ilp as f64 / total as f64
    );
    let _ = f2; // formatting helper kept for symmetry with other figures
    epic_bench::json::emit_if_requested("fig7", &suite);
}
