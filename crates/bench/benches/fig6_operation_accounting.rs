//! Figure 6: operation accounting — retired useful ops, predicate-squashed
//! ops, and explicit nops, normalized to the O-NS total, plus planned and
//! achieved IPC.
//!
//! Paper: planned/achieved IPC 2.00/1.10 (O-NS), 2.21/1.12 (ILP-NS),
//! 2.63/1.23 (ILP-CS); nop retirement almost universally *decreases* in
//! ILP code; "useful" ops rise from ILP-NS to ILP-CS because promoted
//! speculative operations execute with true predicates.

use epic_bench::{banner, f2, f3, run_suite, Table};
use epic_driver::OptLevel;

fn main() {
    banner(
        "Figure 6 — operation accounting and IPC",
        "paper planned/achieved IPC: O-NS 2.00/1.10, ILP-NS 2.21/1.12, ILP-CS 2.63/1.23; nops drop with ILP scheduling",
    );
    let levels = [OptLevel::ONs, OptLevel::IlpNs, OptLevel::IlpCs];
    let suite = run_suite(&levels);
    let mut t = Table::new(&[
        "Benchmark",
        "level",
        "useful",
        "squashed",
        "nops",
        "plan-IPC",
        "ach-IPC",
    ]);
    let mut agg_plan = vec![Vec::new(); 3];
    let mut agg_ach = vec![Vec::new(); 3];
    for (wi, w) in suite.workloads.iter().enumerate() {
        let base = &suite.get(wi, OptLevel::ONs).sim;
        let base_ops = (base.counters.retired_useful
            + base.counters.retired_squashed
            + base.counters.retired_nops) as f64;
        for (li, &level) in levels.iter().enumerate() {
            let m = suite.get(wi, level);
            let c = &m.sim.counters;
            let ach_ipc = c.retired_useful as f64 / m.sim.cycles as f64;
            let plan_ipc = m.compiled.plan.planned_ipc();
            agg_plan[li].push(plan_ipc);
            agg_ach[li].push(ach_ipc);
            t.row(vec![
                if li == 0 {
                    w.spec_name.to_string()
                } else {
                    String::new()
                },
                level.name().to_string(),
                f3(c.retired_useful as f64 / base_ops),
                f3(c.retired_squashed as f64 / base_ops),
                f3(c.retired_nops as f64 / base_ops),
                f2(plan_ipc),
                f2(ach_ipc),
            ]);
        }
    }
    t.print();
    println!();
    for (li, &level) in levels.iter().enumerate() {
        let plan = agg_plan[li].iter().sum::<f64>() / agg_plan[li].len() as f64;
        let ach = agg_ach[li].iter().sum::<f64>() / agg_ach[li].len() as f64;
        println!(
            "{:<7} planned IPC {:.2} / achieved IPC {:.2}",
            level.name(),
            plan,
            ach
        );
    }
    // nop-reduction shape check (Sec. 3.4)
    let mut nop_base = 0u64;
    let mut nop_ilp = 0u64;
    let mut l1i_base = 0u64;
    let mut l1i_ilp = 0u64;
    for wi in 0..suite.workloads.len() {
        nop_base += suite.get(wi, OptLevel::ONs).sim.counters.retired_nops;
        nop_ilp += suite.get(wi, OptLevel::IlpCs).sim.counters.retired_nops;
        l1i_base += suite.get(wi, OptLevel::ONs).sim.counters.l1i_accesses;
        l1i_ilp += suite.get(wi, OptLevel::IlpCs).sim.counters.l1i_accesses;
    }
    println!();
    println!(
        "nop retirement change at ILP-CS (paper: decreases): {:+.1}%",
        (nop_ilp as f64 / nop_base as f64 - 1.0) * 100.0
    );
    println!(
        "L1I line-fetch change at ILP-CS (paper: ~-10%): {:+.1}%",
        (l1i_ilp as f64 / l1i_base as f64 - 1.0) * 100.0
    );
    epic_bench::json::emit_if_requested("fig6", &suite);
}
