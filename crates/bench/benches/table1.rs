//! Table 1: estimated SPECint2000-style performance ratios for
//! GCC / O-NS / ILP-NS / ILP-CS, plus the paper's headline speedups.
//!
//! Paper values (geomean ratios): GCC 430, O-NS 591, ILP-NS 645,
//! ILP-CS 668; headline speedups: ILP-CS vs GCC 1.55 (max 2.30),
//! ILP-CS vs O-NS 1.13 (max 1.50).

use epic_bench::{banner, f2, geomean, pseudo_ratio, run_suite, Table};
use epic_driver::OptLevel;

fn main() {
    banner(
        "Table 1 — estimated performance ratios",
        "GEOMEAN GCC=430 O-NS=591 ILP-NS=645 ILP-CS=668; ILP-CS/GCC 1.55 avg (2.30 max); ILP-CS/O-NS 1.13 avg (1.50 max)",
    );
    let suite = run_suite(&OptLevel::ALL);
    let mut t = Table::new(&[
        "Benchmark",
        "GCC",
        "O-NS",
        "ILP-NS",
        "ILP-CS",
        "CS/GCC",
        "CS/O-NS",
    ]);
    let mut per_level: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let mut cs_gcc = Vec::new();
    let mut cs_ons = Vec::new();
    for (wi, w) in suite.workloads.iter().enumerate() {
        let mut cells = vec![w.spec_name.to_string()];
        for (li, &level) in OptLevel::ALL.iter().enumerate() {
            let ratio = pseudo_ratio(suite.get(wi, level).sim.cycles);
            per_level[li].push(ratio);
            cells.push(format!("{ratio:.0}"));
        }
        let s_gcc = suite.speedup(wi, OptLevel::IlpCs, OptLevel::Gcc);
        let s_ons = suite.speedup(wi, OptLevel::IlpCs, OptLevel::ONs);
        cs_gcc.push(s_gcc);
        cs_ons.push(s_ons);
        cells.push(f2(s_gcc));
        cells.push(f2(s_ons));
        t.row(cells);
    }
    let mut g = vec!["GEOMEAN".to_string()];
    for l in &per_level {
        g.push(format!("{:.0}", geomean(l.iter().copied())));
    }
    g.push(f2(geomean(cs_gcc.iter().copied())));
    g.push(f2(geomean(cs_ons.iter().copied())));
    t.row(g);
    t.print();
    println!();
    println!(
        "headline: ILP-CS vs GCC  avg {:.2} (paper 1.55), max {:.2} (paper 2.30)",
        geomean(cs_gcc.iter().copied()),
        cs_gcc.iter().cloned().fold(0.0, f64::max)
    );
    println!(
        "headline: ILP-CS vs O-NS avg {:.2} (paper 1.13), max {:.2} (paper 1.50)",
        geomean(cs_ons.iter().copied()),
        cs_ons.iter().cloned().fold(0.0, f64::max)
    );
    println!(
        "headline: ILP-NS vs O-NS avg {:.2} (paper 1.10)",
        geomean((0..suite.workloads.len()).map(|wi| suite.speedup(
            wi,
            OptLevel::IlpNs,
            OptLevel::ONs
        )))
    );
    epic_bench::json::emit_if_requested("table1", &suite);
}
