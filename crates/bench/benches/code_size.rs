//! Sec. 3.2 / 3.4 static-code statistics: code growth from region
//! formation (paper: tail duplication +21%, peeling +2%), static branch
//! removal, and the nop fraction of emitted slots per level.
//!
//! This experiment is purely static (no simulation), so it also serves as
//! a fast smoke test of the whole compiler.

use epic_bench::{banner, f2, worker_bound, Table};
use epic_driver::{compile, par_map, CompileOptions, OptLevel};

fn main() {
    banner(
        "Static code statistics",
        "tail-dup growth ~21%, peeling ~+2% (Sec. 3.2); fewer nop slots in ILP code (Sec. 3.4)",
    );
    let mut t = Table::new(&[
        "Benchmark",
        "O-NS bytes",
        "ILP bytes",
        "growth",
        "dup ops%",
        "br removed",
        "O-NS nop%",
        "ILP nop%",
    ]);
    let mut growths = Vec::new();
    let mut dup_fracs = Vec::new();
    // This experiment is compile-only, so it uses the bounded pool
    // directly instead of the full measure matrix.
    let workloads = epic_workloads::all();
    let compiled = par_map(&workloads, worker_bound(), |_, w| {
        let ons = compile(w, &CompileOptions::for_level(OptLevel::ONs)).unwrap();
        let ilp = compile(w, &CompileOptions::for_level(OptLevel::IlpCs)).unwrap();
        (ons, ilp)
    });
    for (w, (ons, ilp)) in workloads.iter().zip(compiled) {
        let growth = ilp.code_bytes as f64 / ons.code_bytes as f64;
        let dup_frac = ilp.ilp.dup_ops as f64 / ilp.ilp.ops_before.max(1) as f64;
        growths.push(growth);
        dup_fracs.push(dup_frac);
        let nopf = |c: &epic_driver::Compiled| {
            let (ops, nops) = c.static_ops;
            100.0 * nops as f64 / (ops + nops) as f64
        };
        t.row(vec![
            w.spec_name.to_string(),
            ons.code_bytes.to_string(),
            ilp.code_bytes.to_string(),
            f2(growth),
            f2(100.0 * dup_frac),
            ilp.ilp.branches_removed.to_string(),
            f2(nopf(&ons)),
            f2(nopf(&ilp)),
        ]);
    }
    t.print();
    println!();
    println!(
        "average code growth O-NS -> ILP-CS (paper: ~1.23x from dup alone): {:.2}x",
        growths.iter().sum::<f64>() / growths.len() as f64
    );
    println!(
        "average duplicated-op fraction (paper: 21% tail dup + 2% peel): {:.1}%",
        100.0 * dup_fracs.iter().sum::<f64>() / dup_fracs.len() as f64
    );
}
