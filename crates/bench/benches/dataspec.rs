//! Data-speculation extension (the paper's named future-work item):
//! ILP-CS with and without ALAT advanced loads (`ld.a`/`chk.a`).
//!
//! Paper Sec. 2: "In gap, pointer analysis is unable to resolve critical
//! spurious dependences in otherwise highly-parallel loops. A limited
//! initial application, currently in progress, is providing a 5% speedup;
//! much more is attainable."

use epic_bench::{banner, f2, geomean, run_suite_with, Table};
use epic_driver::{CompileOptions, OptLevel};
use epic_sim::SimOptions;

fn main() {
    banner(
        "Data speculation (extension; paper Sec. 2 predicts ~5% on gap)",
        "ILP-CS vs ILP-CS + ld.a/chk.a; gains where stores block parallel loads",
    );
    let base = run_suite_with(
        &[OptLevel::IlpCs],
        &CompileOptions::for_level,
        &SimOptions::default(),
    );
    let ds = run_suite_with(
        &[OptLevel::IlpCs],
        &|l| {
            let mut o = CompileOptions::for_level(l);
            o.enable_data_spec = true;
            o
        },
        &SimOptions::default(),
    );
    let mut t = Table::new(&[
        "Benchmark",
        "ILP-CS cy",
        "+DS cy",
        "speedup",
        "adv loads",
        "ALAT misses",
    ]);
    let mut speedups = Vec::new();
    for (wi, w) in base.workloads.iter().enumerate() {
        let a = &base.get(wi, OptLevel::IlpCs).sim;
        let b = &ds.get(wi, OptLevel::IlpCs).sim;
        assert_eq!(
            a.output, b.output,
            "{}: data speculation must not change output",
            w.name
        );
        let s = a.cycles as f64 / b.cycles as f64;
        speedups.push(s);
        t.row(vec![
            w.spec_name.to_string(),
            a.cycles.to_string(),
            b.cycles.to_string(),
            f2(s),
            b.counters.adv_loads.to_string(),
            b.counters.alat_misses.to_string(),
        ]);
    }
    t.print();
    println!();
    println!(
        "geomean data-speculation speedup: {:.3} (paper's initial gap result: ~1.05)",
        geomean(speedups.iter().copied())
    );
    epic_bench::json::emit_if_requested("dataspec_base", &base);
    epic_bench::json::emit_if_requested("dataspec_ds", &ds);
}
