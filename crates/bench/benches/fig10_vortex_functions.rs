//! Figure 10: function-level execution time for the vortex stand-in —
//! each function's share of O-NS time (the paper's bar widths) and its
//! ILP-NS / ILP-CS time relative to O-NS (the bar heights).
//!
//! Paper: most vortex functions improve under ILP formation and further
//! under speculation; functions compiled elsewhere (libc's chunk_alloc,
//! memcpy) stay at 1.0 — our whole program is compiled, so every function
//! participates.

use epic_bench::{banner, f2, f3, run_suite, Table};
use epic_driver::OptLevel;

fn main() {
    banner(
        "Figure 10 — per-function time, vortex stand-in",
        "width = share of O-NS time; height = ILP time / O-NS time (mostly < 1)",
    );
    let suite = run_suite(&[OptLevel::ONs, OptLevel::IlpNs, OptLevel::IlpCs]);
    let wi = suite
        .workloads
        .iter()
        .position(|w| w.name == "vortex_mc")
        .expect("vortex in suite");
    let base = &suite.get(wi, OptLevel::ONs);
    let ns = &suite.get(wi, OptLevel::IlpNs);
    let cs = &suite.get(wi, OptLevel::IlpCs);
    let by_func = base.sim.func_matrix.by_func();
    let total: u64 = by_func.iter().sum();
    // sort functions by O-NS contribution, descending
    let mut order: Vec<usize> = (0..by_func.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(by_func[i]));
    let mut t = Table::new(&["function", "O-NS share", "ILP-NS/O-NS", "ILP-CS/O-NS"]);
    for &fi in &order {
        let b = by_func[fi];
        if b == 0 {
            continue;
        }
        let name = base
            .compiled
            .func_names
            .get(fi)
            .cloned()
            .unwrap_or_else(|| format!("f{fi}"));
        // function ids are stable across levels (same source program)
        let n = ns.sim.func_matrix.row_total(fi);
        let c = cs.sim.func_matrix.row_total(fi);
        t.row(vec![
            name,
            f3(b as f64 / total as f64),
            f2(n as f64 / b as f64),
            f2(c as f64 / b as f64),
        ]);
    }
    t.print();
    println!();
    println!(
        "whole-benchmark: ILP-NS/O-NS {:.2}, ILP-CS/O-NS {:.2} (arrows in the paper's figure)",
        ns.sim.cycles as f64 / base.sim.cycles as f64,
        cs.sim.cycles as f64 / base.sim.cycles as f64
    );
    epic_bench::json::emit_if_requested("fig10", &suite);
}
