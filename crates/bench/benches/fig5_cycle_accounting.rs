//! Figure 5: execution-cycle accounting into nine categories for each of
//! O-NS / ILP-NS / ILP-CS, normalized to the O-NS total.
//!
//! Paper observations to reproduce in shape: most of the ILP gain comes
//! from the statically-anticipable categories (unstalled + scoreboard);
//! branch-flush cycles shrink with if-conversion; I-cache (front-end)
//! stalls drop ~15% on average but *grow* for crafty/twolf; kernel time
//! jumps for gcc under ILP-CS (wild loads); RSE rises for register-hungry
//! code (crafty, parser).

use epic_bench::{banner, f3, run_suite, Table};
use epic_driver::OptLevel;
use epic_sim::{Category, CATEGORIES};

fn cat_name(c: Category) -> &'static str {
    match c {
        Category::Unstalled => "unstalled",
        Category::FloatScoreboard => "float-sb",
        Category::Misc => "misc",
        Category::IntLoadBubble => "ld-bubble",
        Category::Micropipe => "micropipe",
        Category::FrontEndBubble => "frontend",
        Category::BrMispredictFlush => "br-flush",
        Category::RegisterStack => "rse",
        Category::Kernel => "kernel",
    }
}

fn main() {
    banner(
        "Figure 5 — cycle accounting, normalized to O-NS",
        "gain concentrates in anticipable categories; gcc kernel jumps at ILP-CS; \
         crafty/twolf front-end grows; crafty/parser RSE visible",
    );
    let levels = [OptLevel::ONs, OptLevel::IlpNs, OptLevel::IlpCs];
    let suite = run_suite(&levels);
    for (wi, w) in suite.workloads.iter().enumerate() {
        println!("--- {} ---", w.spec_name);
        let base_total = suite.get(wi, OptLevel::ONs).sim.cycles as f64;
        let mut t = Table::new(&["category", "O-NS", "ILP-NS", "ILP-CS"]);
        for &cat in &CATEGORIES {
            let mut cells = vec![cat_name(cat).to_string()];
            for &level in &levels {
                let v = suite.get(wi, level).sim.acct.get(cat) as f64 / base_total;
                cells.push(f3(v));
            }
            t.row(cells);
        }
        let mut total = vec!["TOTAL".to_string()];
        for &level in &levels {
            total.push(f3(suite.get(wi, level).sim.cycles as f64 / base_total));
        }
        t.row(total);
        t.print();
        println!();
    }
    // aggregate shape checks
    let mut fe_base = 0.0;
    let mut fe_ilp = 0.0;
    for wi in 0..suite.workloads.len() {
        fe_base += suite.get(wi, OptLevel::ONs).sim.acct.front_end_bubble() as f64;
        fe_ilp += suite.get(wi, OptLevel::IlpCs).sim.acct.front_end_bubble() as f64;
    }
    println!(
        "aggregate front-end stall change (paper: ~-15%): {:+.1}%",
        (fe_ilp / fe_base - 1.0) * 100.0
    );
    epic_bench::json::emit_if_requested("fig5", &suite);
}
