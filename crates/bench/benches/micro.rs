//! Microbenchmarks of the toolchain itself (epic-bench's own timing
//! harness; no criterion): frontend, classical optimization, structural
//! transformation, scheduling, and simulation throughput on a mid-size
//! workload.

use epic_bench::timing::{bench, bench_with, TimingOptions};
use std::time::Duration;

fn main() {
    let w = epic_workloads::by_name("vortex_mc").unwrap();
    println!("pipeline phase microbenchmarks ({}):", w.name);
    bench("frontend_compile", || {
        epic_lang::compile(std::hint::black_box(w.source)).unwrap()
    });

    let mut prog = epic_lang::compile(w.source).unwrap();
    epic_opt::profile::profile_program(&mut prog, &w.train_args, 2_000_000_000).unwrap();
    epic_opt::inline::run(&mut prog, Default::default());
    epic_opt::alias::run(&mut prog);
    bench("classical_optimize", || {
        let mut p = prog.clone();
        epic_opt::classical_optimize_program(&mut p)
    });
    epic_opt::classical_optimize_program(&mut prog);
    bench("structural_ilp_transform", || {
        let mut p = prog.clone();
        for f in &mut p.funcs {
            epic_core::ilp_transform(f, &epic_core::IlpOptions::ilp_cs());
        }
    });
    let mut tprog = prog.clone();
    for f in &mut tprog.funcs {
        epic_core::ilp_transform(f, &epic_core::IlpOptions::ilp_cs());
    }
    bench("schedule_and_emit", || {
        epic_sched::compile_program(&tprog, &epic_sched::SchedOptions::ilp_cs())
    });
    let (mp, _) = epic_sched::compile_program(&tprog, &epic_sched::SchedOptions::ilp_cs());
    // The simulator run is orders of magnitude slower than the compiler
    // phases; cap its budget so the target stays fast.
    bench_with(
        "simulate_train_run",
        &TimingOptions {
            warmup: Duration::from_millis(200),
            sample_budget: Duration::from_millis(500),
            samples: 3,
        },
        || epic_sim::run(&mp, &w.train_args, &epic_sim::SimOptions::default()).unwrap(),
    );
}
