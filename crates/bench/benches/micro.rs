//! Criterion microbenchmarks of the toolchain itself: frontend, classical
//! optimization, structural transformation, scheduling, and simulation
//! throughput on a mid-size workload.

use criterion::{criterion_group, criterion_main, Criterion};

fn pipeline_phases(c: &mut Criterion) {
    let w = epic_workloads::by_name("vortex_mc").unwrap();
    c.bench_function("frontend_compile", |b| {
        b.iter(|| epic_lang::compile(std::hint::black_box(w.source)).unwrap())
    });

    let mut prog = epic_lang::compile(w.source).unwrap();
    epic_opt::profile::profile_program(&mut prog, &w.train_args, 2_000_000_000).unwrap();
    epic_opt::inline::run(&mut prog, Default::default());
    epic_opt::alias::run(&mut prog);
    c.bench_function("classical_optimize", |b| {
        b.iter(|| {
            let mut p = prog.clone();
            epic_opt::classical_optimize_program(&mut p)
        })
    });
    epic_opt::classical_optimize_program(&mut prog);
    c.bench_function("structural_ilp_transform", |b| {
        b.iter(|| {
            let mut p = prog.clone();
            for f in &mut p.funcs {
                epic_core::ilp_transform(f, &epic_core::IlpOptions::ilp_cs());
            }
        })
    });
    let mut tprog = prog.clone();
    for f in &mut tprog.funcs {
        epic_core::ilp_transform(f, &epic_core::IlpOptions::ilp_cs());
    }
    c.bench_function("schedule_and_emit", |b| {
        b.iter(|| epic_sched::compile_program(&tprog, &epic_sched::SchedOptions::ilp_cs()))
    });
    let (mp, _) = epic_sched::compile_program(&tprog, &epic_sched::SchedOptions::ilp_cs());
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("simulate_train_run", |b| {
        b.iter(|| epic_sim::run(&mp, &w.train_args, &epic_sim::SimOptions::default()).unwrap())
    });
    g.finish();
}

criterion_group!(benches, pipeline_phases);
criterion_main!(benches);
