//! Figure 8: effects on data-cache stall cycles — load-bubble cycles of
//! ILP-NS and ILP-CS as a ratio to O-NS.
//!
//! Paper: effects vary around 1.0 per benchmark (scheduling moves loads
//! closer to or farther from consumers); increases under ILP-CS mark
//! promoted loads executing (and missing) more often, while decreases mark
//! loads scheduled farther from consumers.

use epic_bench::{banner, f3, run_suite, Table};
use epic_driver::OptLevel;

fn main() {
    banner(
        "Figure 8 — data-cache (load bubble) stall cycles vs O-NS",
        "ratios scatter around 1.0; speculation-driven increases visible where promotion is hot",
    );
    let suite = run_suite(&[OptLevel::ONs, OptLevel::IlpNs, OptLevel::IlpCs]);
    let mut t = Table::new(&["Benchmark", "ILP-NS", "ILP-CS", "spec loads", "deferred"]);
    for (wi, w) in suite.workloads.iter().enumerate() {
        let base = suite
            .get(wi, OptLevel::ONs)
            .sim
            .acct
            .int_load_bubble()
            .max(1);
        let ns = suite.get(wi, OptLevel::IlpNs).sim.acct.int_load_bubble();
        let cs = &suite.get(wi, OptLevel::IlpCs).sim;
        t.row(vec![
            w.spec_name.to_string(),
            f3(ns as f64 / base as f64),
            f3(cs.acct.int_load_bubble() as f64 / base as f64),
            cs.counters.spec_loads.to_string(),
            cs.counters.deferred_loads.to_string(),
        ]);
    }
    t.print();
    epic_bench::json::emit_if_requested("fig8", &suite);
}
