//! Ablation of the structural transformations (DESIGN.md extension):
//! how much of the ILP-NS gain does each transform carry? The paper argues
//! (via [8]) that collaborative suites beat the sum of individual parts —
//! disabling one stage should cost more than its isolated contribution
//! suggests.

use epic_bench::{banner, f2, geomean, run_suite_with, Table};
use epic_core::IlpOptions;
use epic_driver::{CompileOptions, OptLevel};
use epic_sim::SimOptions;

fn variant(name: &'static str, f: fn(&mut IlpOptions)) -> (&'static str, IlpOptions) {
    let mut o = IlpOptions::ilp_ns();
    f(&mut o);
    (name, o)
}

fn main() {
    banner(
        "Ablation — structural transforms (ILP-NS variants)",
        "collaborative suite: removing one stage costs across the board",
    );
    let variants: Vec<(&str, IlpOptions)> = vec![
        ("full", IlpOptions::ilp_ns()),
        variant("no-peel", |o| o.enable_peel = false),
        variant("no-hyperblock", |o| o.enable_hyperblock = false),
        variant("no-superblock", |o| o.enable_superblock = false),
        variant("no-unroll", |o| o.enable_unroll = false),
    ];
    // baseline O-NS
    let base = run_suite_with(
        &[OptLevel::ONs],
        &CompileOptions::for_level,
        &SimOptions::default(),
    );
    let mut header = vec!["Benchmark"];
    for (n, _) in &variants {
        header.push(n);
    }
    let mut t = Table::new(&header);
    let mut per_variant: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    let mut suites = Vec::new();
    for (_, opts) in &variants {
        let opts = *opts;
        let s = run_suite_with(
            &[OptLevel::IlpNs],
            &move |l| {
                let mut c = CompileOptions::for_level(l);
                c.ilp_override = Some(opts);
                c
            },
            &SimOptions::default(),
        );
        suites.push(s);
    }
    for (wi, w) in base.workloads.iter().enumerate() {
        let b = base.get(wi, OptLevel::ONs).sim.cycles as f64;
        let mut cells = vec![w.spec_name.to_string()];
        for (vi, s) in suites.iter().enumerate() {
            let speedup = b / s.get(wi, OptLevel::IlpNs).sim.cycles as f64;
            per_variant[vi].push(speedup);
            cells.push(f2(speedup));
        }
        t.row(cells);
    }
    let mut g = vec!["GEOMEAN".to_string()];
    for v in &per_variant {
        g.push(f2(geomean(v.iter().copied())));
    }
    t.row(g);
    t.print();
    println!();
    println!("columns are speedup over O-NS; 'full' should lead, each no-X trails it.");
    epic_bench::json::emit_if_requested("ablation_base", &base);
}
