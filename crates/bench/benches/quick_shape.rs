//! Fast shape check (not a paper figure): one line per workload with the
//! key numbers every experiment depends on — cycles per level, planned
//! speedup, branch reduction, kernel share, RSE share. Used while tuning;
//! kept because it is the quickest end-to-end smoke of the whole system.

use epic_bench::{f2, geomean, run_suite, Table};
use epic_driver::OptLevel;

fn main() {
    let suite = run_suite(&OptLevel::ALL);
    let mut t = Table::new(&[
        "Benchmark",
        "GCC",
        "O-NS",
        "ILP-NS",
        "ILP-CS",
        "NS/ONS",
        "CS/ONS",
        "CS plan",
        "br-red%",
        "kern%",
        "rse%",
    ]);
    let mut ns_sp = Vec::new();
    let mut cs_sp = Vec::new();
    let mut plan_sp = Vec::new();
    for (wi, w) in suite.workloads.iter().enumerate() {
        let gcc = &suite.get(wi, OptLevel::Gcc).sim;
        let ons = &suite.get(wi, OptLevel::ONs).sim;
        let ns = &suite.get(wi, OptLevel::IlpNs).sim;
        let cs = &suite.get(wi, OptLevel::IlpCs).sim;
        let ns_s = ons.cycles as f64 / ns.cycles as f64;
        let cs_s = ons.cycles as f64 / cs.cycles as f64;
        let plan = ons.acct.planned() as f64 / cs.acct.planned() as f64;
        ns_sp.push(ns_s);
        cs_sp.push(cs_s);
        plan_sp.push(plan);
        let br_red = 100.0
            * (1.0 - cs.counters.dynamic_branches as f64 / ons.counters.dynamic_branches as f64);
        t.row(vec![
            w.spec_name.to_string(),
            gcc.cycles.to_string(),
            ons.cycles.to_string(),
            ns.cycles.to_string(),
            cs.cycles.to_string(),
            f2(ns_s),
            f2(cs_s),
            f2(plan),
            f2(br_red),
            f2(100.0 * cs.acct.kernel() as f64 / cs.cycles as f64),
            f2(100.0 * cs.acct.register_stack() as f64 / cs.cycles as f64),
        ]);
    }
    t.print();
    println!();
    println!(
        "geomeans: ILP-NS/O-NS {:.2} (paper 1.10) | ILP-CS/O-NS {:.2} (paper 1.13) | planned {:.2} (paper 1.36) | CS/GCC {:.2} (paper 1.55)",
        geomean(ns_sp.iter().copied()),
        geomean(cs_sp.iter().copied()),
        geomean(plan_sp.iter().copied()),
        geomean((0..suite.workloads.len()).map(|wi| suite.speedup(wi, OptLevel::IlpCs, OptLevel::Gcc))),
    );
    epic_bench::json::emit_if_requested("quick_shape", &suite);
}
