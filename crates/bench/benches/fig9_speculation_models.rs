//! Figure 9 / Sec. 4.3: general vs sentinel control-speculation models.
//!
//! Under the *general* model, wild speculative loads (pointer/int unions,
//! prominent in gcc) complete via expensive uncached kernel page-table
//! queries — the paper measures gcc spending ~20% of its time in the
//! kernel at ILP-CS, with smaller effects in parser, perlbmk, and gap.
//! Under the *sentinel* model the load defers cheaply, but `chk` ops
//! occupy slots and recoveries flush.

use epic_bench::{banner, f2, run_suite_with, Table};
use epic_driver::{CompileOptions, OptLevel};
use epic_sim::{SimOptions, SpecModel};

fn main() {
    banner(
        "Figure 9 — general vs sentinel speculation",
        "general: gcc ~20% kernel time from wild loads; sentinel: chk overhead instead",
    );
    // general model
    let general = run_suite_with(
        &[OptLevel::IlpCs],
        &CompileOptions::for_level,
        &SimOptions::default(),
    );
    // sentinel model: compiler leaves chk ops; simulator defers on DTLB miss
    let sentinel = run_suite_with(
        &[OptLevel::IlpCs],
        &|l| {
            let mut o = CompileOptions::for_level(l);
            o.ilp_override = Some(epic_core::IlpOptions {
                speculate: Some(epic_core::speculate::SpeculateOptions {
                    model: epic_core::speculate::SpecModel::Sentinel,
                    ..Default::default()
                }),
                ..epic_core::IlpOptions::default()
            });
            o
        },
        &SimOptions {
            spec_model: SpecModel::Sentinel,
            ..Default::default()
        },
    );
    let mut t = Table::new(&[
        "Benchmark",
        "gen cycles",
        "gen kernel%",
        "wild loads",
        "sen cycles",
        "sen kernel%",
        "chk recov",
        "sen/gen",
    ]);
    for (wi, w) in general.workloads.iter().enumerate() {
        let g = &general.get(wi, OptLevel::IlpCs).sim;
        let s = &sentinel.get(wi, OptLevel::IlpCs).sim;
        t.row(vec![
            w.spec_name.to_string(),
            g.cycles.to_string(),
            f2(100.0 * g.acct.kernel() as f64 / g.cycles as f64),
            g.counters.wild_loads.to_string(),
            s.cycles.to_string(),
            f2(100.0 * s.acct.kernel() as f64 / s.cycles as f64),
            s.counters.chk_recoveries.to_string(),
            f2(s.cycles as f64 / g.cycles as f64),
        ]);
    }
    t.print();
    println!();
    let gcc_i = general
        .workloads
        .iter()
        .position(|w| w.name == "gcc_mc")
        .expect("gcc in suite");
    let g = &general.get(gcc_i, OptLevel::IlpCs).sim;
    println!(
        "gcc kernel share under general speculation (paper ~20%): {:.1}%",
        100.0 * g.acct.kernel() as f64 / g.cycles as f64
    );
    epic_bench::json::emit_if_requested("fig9_general", &general);
    epic_bench::json::emit_if_requested("fig9_sentinel", &sentinel);
}
