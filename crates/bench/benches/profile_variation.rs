//! Sec. 4.6: profile variation — compile ILP-CS with the profile trained
//! on the *reference* input instead of the training input, and measure
//! the performance delta on the reference run.
//!
//! Paper: crafty improved 5%, perlbmk 10%, gap 3% when ref-trained;
//! the rest moved negligibly. Sensitivity concentrates in inlining- and
//! footprint-sensitive benchmarks.

use epic_bench::{banner, f2, run_suite_with, Table};
use epic_driver::{CompileOptions, OptLevel, ProfileInput};
use epic_sim::SimOptions;

fn main() {
    banner(
        "Profile variation (Sec. 4.6)",
        "ref-trained vs train-trained ILP-CS; paper: crafty +5%, perlbmk +10%, gap +3%",
    );
    let train = run_suite_with(
        &[OptLevel::IlpCs],
        &CompileOptions::for_level,
        &SimOptions::default(),
    );
    let reft = run_suite_with(
        &[OptLevel::IlpCs],
        &|l| {
            let mut o = CompileOptions::for_level(l);
            o.profile_input = ProfileInput::Refr;
            o
        },
        &SimOptions::default(),
    );
    let mut t = Table::new(&["Benchmark", "train-prof cy", "ref-prof cy", "ref gain %"]);
    for (wi, w) in train.workloads.iter().enumerate() {
        let a = train.get(wi, OptLevel::IlpCs).sim.cycles;
        let b = reft.get(wi, OptLevel::IlpCs).sim.cycles;
        t.row(vec![
            w.spec_name.to_string(),
            a.to_string(),
            b.to_string(),
            f2(100.0 * (a as f64 / b as f64 - 1.0)),
        ]);
    }
    t.print();
    println!();
    println!("positive 'ref gain' = the reference-trained profile produced faster code,");
    println!("i.e. the training input was not fully representative (the paper's concern).");
    epic_bench::json::emit_if_requested("profile_variation_train", &train);
    epic_bench::json::emit_if_requested("profile_variation_ref", &reft);
}
