//! Hand-rolled JSON emission (no `serde`): a tiny value tree plus an
//! escaping renderer, and a machine-readable dump of a [`Suite`] so the
//! experiment tables can feed downstream tooling. Every bench target
//! calls [`emit_if_requested`]; set `EPIC_BENCH_JSON=1` to get the raw
//! matrix after the human-readable table.

use crate::Suite;

/// A JSON value. Numbers are `f64` (integers within 2^53 round-trip).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Compact (single-line) rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Json::Obj(kvs) => {
                out.push('{');
                for (i, (k, v)) in kvs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl Suite {
    /// The full measurement matrix as a JSON tree: per workload, per
    /// level, the headline dynamic and static numbers plus the per-pass
    /// compile-time breakdown.
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .workloads
            .iter()
            .zip(&self.results)
            .map(|(w, row)| {
                let cells: Vec<Json> = row
                    .iter()
                    .map(|m| {
                        let passes: Vec<Json> = m
                            .compiled
                            .pass_timeline
                            .passes
                            .iter()
                            .map(|p| {
                                Json::obj([
                                    ("name", Json::Str(p.name.to_string())),
                                    ("wall_us", Json::Num(p.wall.as_secs_f64() * 1e6)),
                                    ("op_delta", Json::Num(p.op_delta() as f64)),
                                    ("block_delta", Json::Num(p.block_delta() as f64)),
                                ])
                            })
                            .collect();
                        Json::obj([
                            ("level", Json::Str(m.level.name().to_string())),
                            ("cycles", Json::Num(m.sim.cycles as f64)),
                            ("code_bytes", Json::Num(m.compiled.code_bytes as f64)),
                            ("inlined", Json::Num(m.compiled.inlined as f64)),
                            ("promoted", Json::Num(m.compiled.promoted as f64)),
                            ("passes", Json::Arr(passes)),
                        ])
                    })
                    .collect();
                Json::obj([
                    ("name", Json::Str(w.name.to_string())),
                    ("spec_name", Json::Str(w.spec_name.to_string())),
                    ("levels", Json::Arr(cells)),
                ])
            })
            .collect();
        Json::obj([
            (
                "levels",
                Json::Arr(
                    self.levels
                        .iter()
                        .map(|l| Json::Str(l.name().to_string()))
                        .collect(),
                ),
            ),
            ("workloads", Json::Arr(rows)),
        ])
    }
}

/// Print the suite as one JSON line when `EPIC_BENCH_JSON` is set, tagged
/// with the experiment id.
pub fn emit_if_requested(id: &str, suite: &Suite) {
    if std::env::var_os("EPIC_BENCH_JSON").is_some() {
        let tagged = Json::obj([
            ("experiment", Json::Str(id.to_string())),
            ("data", suite.to_json()),
        ]);
        println!("{}", tagged.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_escapes_and_shapes() {
        let j = Json::obj([
            ("s", Json::Str("a\"b\\c\nd".into())),
            ("n", Json::Num(1.5)),
            ("i", Json::Num(42.0)),
            ("b", Json::Bool(true)),
            ("z", Json::Null),
            ("a", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
        ]);
        assert_eq!(
            j.render(),
            r#"{"s":"a\"b\\c\nd","n":1.5,"i":42,"b":true,"z":null,"a":[1,2]}"#
        );
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn control_chars_escape_as_unicode() {
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }
}
