//! Hand-rolled JSON emission (no `serde`): a tiny value tree plus an
//! escaping renderer, and a machine-readable dump of a [`Suite`] so the
//! experiment tables can feed downstream tooling. Every bench target
//! calls [`emit_if_requested`]; set `EPIC_BENCH_JSON=1` to get the raw
//! matrix after the human-readable table.

use crate::Suite;
use epic_sim::CATEGORIES;
use epic_trace::{
    HistogramSnapshot, MetricEntry, MetricValue, MetricsSnapshot, SpanNode, TraceSnapshot,
};

/// A JSON value. Numbers are `f64` (integers within 2^53 round-trip).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Compact (single-line) rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Json::Obj(kvs) => {
                out.push('{');
                for (i, (k, v)) in kvs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl Json {
    /// Parse a JSON document (the inverse of [`Json::render`], used to
    /// check that emitted matrices round-trip and by any tooling that
    /// wants to read a dump back). Numbers parse as `f64`; input must be
    /// a single value with only trailing whitespace after it.
    ///
    /// # Errors
    /// A static description of the first syntax error.
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut i = 0usize;
        let v = parse_value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing bytes at offset {i}"));
        }
        Ok(v)
    }
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn expect(b: &[u8], i: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, i);
    if *i < b.len() && b[*i] == c {
        *i += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {}", c as char, i))
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    skip_ws(b, i);
    match b.get(*i) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, i, "null", Json::Null),
        Some(b't') => parse_lit(b, i, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, i, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, i).map(Json::Str),
        Some(b'[') => {
            *i += 1;
            let mut xs = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(Json::Arr(xs));
            }
            loop {
                xs.push(parse_value(b, i)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(Json::Arr(xs));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {i}")),
                }
            }
        }
        Some(b'{') => {
            *i += 1;
            let mut kvs = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(Json::Obj(kvs));
            }
            loop {
                skip_ws(b, i);
                let k = parse_string(b, i)?;
                expect(b, i, b':')?;
                kvs.push((k, parse_value(b, i)?));
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(Json::Obj(kvs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {i}")),
                }
            }
        }
        Some(_) => {
            let start = *i;
            while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                *i += 1;
            }
            std::str::from_utf8(&b[start..*i])
                .ok()
                .and_then(|t| t.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at offset {start}"))
        }
    }
}

fn parse_lit(b: &[u8], i: &mut usize, word: &str, v: Json) -> Result<Json, String> {
    if b[*i..].starts_with(word.as_bytes()) {
        *i += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {i}"))
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<String, String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at offset {i}"));
    }
    *i += 1;
    let mut out = String::new();
    loop {
        match b.get(*i) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *i += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*i + 1..*i + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at offset {i}"))?;
                        out.push(
                            char::from_u32(hex)
                                .ok_or_else(|| format!("bad codepoint at offset {i}"))?,
                        );
                        *i += 4;
                    }
                    _ => return Err(format!("bad escape at offset {i}")),
                }
                *i += 1;
            }
            Some(&c) => {
                // multi-byte UTF-8 passes through unchanged
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b
                    .get(*i..*i + len)
                    .and_then(|x| std::str::from_utf8(x).ok())
                    .ok_or_else(|| format!("bad UTF-8 at offset {i}"))?;
                out.push_str(chunk);
                *i += len;
            }
        }
    }
}

fn span_to_json(n: &SpanNode) -> Json {
    Json::obj([
        ("name", Json::Str(n.name.clone())),
        ("start_ns", Json::Num(n.start_ns as f64)),
        ("dur_ns", Json::Num(n.dur_ns as f64)),
        (
            "children",
            Json::Arr(n.children.iter().map(span_to_json).collect()),
        ),
    ])
}

fn metric_to_json(e: &MetricEntry) -> Json {
    let mut kvs = vec![("name", Json::Str(e.name.clone()))];
    match &e.value {
        MetricValue::Counter(v) => {
            kvs.push(("kind", Json::Str("counter".into())));
            kvs.push(("value", Json::Num(*v as f64)));
        }
        MetricValue::Gauge(v) => {
            kvs.push(("kind", Json::Str("gauge".into())));
            kvs.push(("value", Json::Num(*v as f64)));
        }
        MetricValue::Histogram(h) => {
            kvs.push(("kind", Json::Str("histogram".into())));
            kvs.push(("count", Json::Num(h.count as f64)));
            kvs.push(("sum", Json::Num(h.sum as f64)));
            kvs.push((
                "buckets",
                Json::Arr(
                    h.buckets
                        .iter()
                        .map(|&(b, n)| Json::Arr(vec![Json::Num(b as f64), Json::Num(n as f64)]))
                        .collect(),
                ),
            ));
        }
    }
    Json::obj(kvs)
}

/// A [`TraceSnapshot`] as a JSON tree: `{spans, metrics, dropped}`,
/// the `trace:` block attached to each traced cell of a dump.
pub fn trace_to_json(t: &TraceSnapshot) -> Json {
    Json::obj([
        (
            "spans",
            Json::Arr(t.spans.iter().map(span_to_json).collect()),
        ),
        (
            "metrics",
            Json::Arr(t.metrics.entries.iter().map(metric_to_json).collect()),
        ),
        ("dropped", Json::Num(t.dropped as f64)),
    ])
}

fn get<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    match obj {
        Json::Obj(kvs) => kvs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key {key:?}")),
        _ => Err(format!("expected object holding {key:?}")),
    }
}

fn as_u64(j: &Json, what: &str) -> Result<u64, String> {
    match j {
        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
        _ => Err(format!("{what}: expected a non-negative integer")),
    }
}

fn as_str<'a>(j: &'a Json, what: &str) -> Result<&'a str, String> {
    match j {
        Json::Str(s) => Ok(s),
        _ => Err(format!("{what}: expected a string")),
    }
}

fn as_arr<'a>(j: &'a Json, what: &str) -> Result<&'a [Json], String> {
    match j {
        Json::Arr(xs) => Ok(xs),
        _ => Err(format!("{what}: expected an array")),
    }
}

fn span_from_json(j: &Json) -> Result<SpanNode, String> {
    Ok(SpanNode {
        name: as_str(get(j, "name")?, "span name")?.to_string(),
        start_ns: as_u64(get(j, "start_ns")?, "start_ns")?,
        dur_ns: as_u64(get(j, "dur_ns")?, "dur_ns")?,
        children: as_arr(get(j, "children")?, "children")?
            .iter()
            .map(span_from_json)
            .collect::<Result<_, _>>()?,
    })
}

fn metric_from_json(j: &Json) -> Result<MetricEntry, String> {
    let name = as_str(get(j, "name")?, "metric name")?.to_string();
    let value = match as_str(get(j, "kind")?, "metric kind")? {
        "counter" => MetricValue::Counter(as_u64(get(j, "value")?, "counter value")?),
        "gauge" => match get(j, "value")? {
            Json::Num(n) if n.fract() == 0.0 => MetricValue::Gauge(*n as i64),
            _ => return Err("gauge value: expected an integer".into()),
        },
        "histogram" => MetricValue::Histogram(HistogramSnapshot {
            count: as_u64(get(j, "count")?, "histogram count")?,
            sum: as_u64(get(j, "sum")?, "histogram sum")?,
            buckets: as_arr(get(j, "buckets")?, "buckets")?
                .iter()
                .map(|pair| {
                    let pair = as_arr(pair, "bucket pair")?;
                    match pair {
                        [b, n] => {
                            Ok((as_u64(b, "bucket index")? as u8, as_u64(n, "bucket count")?))
                        }
                        _ => Err("bucket pair: expected [index, count]".to_string()),
                    }
                })
                .collect::<Result<_, _>>()?,
        }),
        k => return Err(format!("unknown metric kind {k:?}")),
    };
    Ok(MetricEntry { name, value })
}

/// Inverse of [`trace_to_json`], so emitted `trace:` blocks can be read
/// back by downstream tooling (and are, by `epicc matrix --trace`).
///
/// # Errors
/// A description of the first structural mismatch.
pub fn trace_from_json(j: &Json) -> Result<TraceSnapshot, String> {
    Ok(TraceSnapshot {
        spans: as_arr(get(j, "spans")?, "spans")?
            .iter()
            .map(span_from_json)
            .collect::<Result<_, _>>()?,
        metrics: MetricsSnapshot {
            entries: as_arr(get(j, "metrics")?, "metrics")?
                .iter()
                .map(metric_from_json)
                .collect::<Result<_, _>>()?,
        },
        dropped: as_u64(get(j, "dropped")?, "dropped")?,
    })
}

impl Suite {
    /// The full measurement matrix as a JSON tree: per workload, per
    /// level, the headline dynamic and static numbers plus the per-pass
    /// compile-time breakdown.
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .workloads
            .iter()
            .zip(&self.results)
            .enumerate()
            .map(|(wi, (w, row))| {
                let cells: Vec<Json> = row
                    .iter()
                    .enumerate()
                    .map(|(li, m)| {
                        let passes: Vec<Json> = m
                            .compiled
                            .pass_timeline
                            .passes
                            .iter()
                            .map(|p| {
                                Json::obj([
                                    ("name", Json::Str(p.name.to_string())),
                                    ("wall_us", Json::Num(p.wall.as_secs_f64() * 1e6)),
                                    ("op_delta", Json::Num(p.op_delta() as f64)),
                                    ("block_delta", Json::Num(p.block_delta() as f64)),
                                ])
                            })
                            .collect();
                        let acct = Json::Obj(
                            CATEGORIES
                                .iter()
                                .map(|c| {
                                    (c.name().to_string(), Json::Num(m.sim.acct.get(*c) as f64))
                                })
                                .collect(),
                        );
                        let ctr = &m.sim.counters;
                        let caches = Json::obj([
                            ("l1i_accesses", Json::Num(ctr.l1i_accesses as f64)),
                            ("l1i_misses", Json::Num(ctr.l1i_misses as f64)),
                            ("l1d_accesses", Json::Num(ctr.l1d_accesses as f64)),
                            ("l1d_misses", Json::Num(ctr.l1d_misses as f64)),
                            ("l2_accesses", Json::Num(ctr.l2_accesses as f64)),
                            ("l2_misses", Json::Num(ctr.l2_misses as f64)),
                            ("l3_accesses", Json::Num(ctr.l3_accesses as f64)),
                            ("l3_misses", Json::Num(ctr.l3_misses as f64)),
                        ]);
                        // Fig. 10 drill-down: one row per function that
                        // accrued cycles, in CATEGORIES column order
                        let matrix: Vec<Json> = (0..m.sim.func_matrix.num_funcs())
                            .filter(|&f| m.sim.func_matrix.row_total(f) > 0)
                            .map(|f| {
                                Json::obj([
                                    (
                                        "func",
                                        Json::Str(
                                            m.compiled
                                                .func_names
                                                .get(f)
                                                .cloned()
                                                .unwrap_or_else(|| format!("f{f}")),
                                        ),
                                    ),
                                    (
                                        "cycles",
                                        Json::Arr(
                                            m.sim
                                                .func_matrix
                                                .row(f)
                                                .iter()
                                                .map(|&c| Json::Num(c as f64))
                                                .collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect();
                        let mut cell = vec![
                            ("level", Json::Str(m.level.name().to_string())),
                            ("cycles", Json::Num(m.sim.cycles as f64)),
                            ("acct", acct),
                            ("caches", caches),
                            ("func_matrix", Json::Arr(matrix)),
                            ("code_bytes", Json::Num(m.compiled.code_bytes as f64)),
                            ("inlined", Json::Num(m.compiled.inlined as f64)),
                            ("promoted", Json::Num(m.compiled.promoted as f64)),
                            ("passes", Json::Arr(passes)),
                        ];
                        cell.push((
                            "predict",
                            Json::obj([
                                ("kind", Json::Str(self.predictor.name().to_string())),
                                (
                                    "digest",
                                    Json::Str(format!("{:016x}", self.predictor.config_digest())),
                                ),
                                ("predictions", Json::Num(ctr.branch_predictions as f64)),
                                (
                                    "mispredictions",
                                    Json::Num(ctr.branch_mispredictions as f64),
                                ),
                            ]),
                        ));
                        if let Some(s) = &m.sim.sample {
                            cell.push((
                                "sample",
                                Json::obj([
                                    (
                                        "mode",
                                        Json::Str(
                                            if s.fallback { "exact" } else { "sampled" }.into(),
                                        ),
                                    ),
                                    ("intervals", Json::Num(s.intervals as f64)),
                                    ("clusters", Json::Num(s.clusters as f64)),
                                    ("est_error", Json::Num(s.est_error)),
                                ]),
                            ));
                        }
                        if let Some(report) = &self.cache {
                            let cc = &report.cells[wi][li];
                            cell.push((
                                "cache",
                                Json::obj([
                                    ("hit", Json::Bool(cc.hit)),
                                    ("key", Json::Str(cc.key.clone())),
                                ]),
                            ));
                        }
                        if let Some(traces) = &self.traces {
                            cell.push(("trace", trace_to_json(&traces[wi][li])));
                        }
                        Json::obj(cell)
                    })
                    .collect();
                Json::obj([
                    ("name", Json::Str(w.name.to_string())),
                    ("spec_name", Json::Str(w.spec_name.to_string())),
                    ("levels", Json::Arr(cells)),
                ])
            })
            .collect();
        let mut top = vec![
            (
                "levels",
                Json::Arr(
                    self.levels
                        .iter()
                        .map(|l| Json::Str(l.name().to_string()))
                        .collect(),
                ),
            ),
            ("workloads", Json::Arr(rows)),
        ];
        if let Some(report) = &self.cache {
            let s = &report.stats;
            top.push((
                "cache_stats",
                Json::obj([
                    ("hits", Json::Num(s.hits as f64)),
                    ("misses", Json::Num(s.misses as f64)),
                    ("evictions", Json::Num(s.evictions as f64)),
                    ("disk_hits", Json::Num(s.disk_hits as f64)),
                    ("disk_writes", Json::Num(s.disk_writes as f64)),
                    ("mach_hits", Json::Num(s.mach_hits as f64)),
                    ("mem_entries", Json::Num(s.mem_entries as f64)),
                ]),
            ));
        }
        Json::obj(top)
    }
}

/// Print the suite as one JSON line when `EPIC_BENCH_JSON` is set, tagged
/// with the experiment id.
pub fn emit_if_requested(id: &str, suite: &Suite) {
    if std::env::var_os("EPIC_BENCH_JSON").is_some() {
        let tagged = Json::obj([
            ("experiment", Json::Str(id.to_string())),
            ("data", suite.to_json()),
        ]);
        println!("{}", tagged.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_escapes_and_shapes() {
        let j = Json::obj([
            ("s", Json::Str("a\"b\\c\nd".into())),
            ("n", Json::Num(1.5)),
            ("i", Json::Num(42.0)),
            ("b", Json::Bool(true)),
            ("z", Json::Null),
            ("a", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
        ]);
        assert_eq!(
            j.render(),
            r#"{"s":"a\"b\\c\nd","n":1.5,"i":42,"b":true,"z":null,"a":[1,2]}"#
        );
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn control_chars_escape_as_unicode() {
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    fn roundtrip(j: &Json) -> Json {
        Json::parse(&j.render()).expect("rendered JSON parses")
    }

    #[test]
    fn strings_round_trip_through_escaping() {
        for s in [
            "",
            "plain",
            "a\"b\\c\nd\re\tf",
            "\u{1}\u{1f}",
            "unicode: caché π €",
            "slash / and \\u0041",
        ] {
            let j = Json::Str(s.into());
            assert_eq!(roundtrip(&j), j, "{s:?}");
        }
    }

    #[test]
    fn nested_objects_and_arrays_round_trip() {
        let j = Json::obj([
            (
                "levels",
                Json::Arr(vec![
                    Json::obj([
                        ("name", Json::Str("GCC".into())),
                        ("passes", Json::Arr(vec![Json::Num(1.0), Json::Null])),
                    ]),
                    Json::Obj(Vec::new()),
                ]),
            ),
            ("empty", Json::Arr(Vec::new())),
            ("deep", Json::Arr(vec![Json::Arr(vec![Json::Arr(vec![])])])),
        ]);
        assert_eq!(roundtrip(&j), j);
    }

    #[test]
    fn non_finite_floats_round_trip_safely() {
        // Non-finite values render as null, so a dump is always valid
        // JSON and re-reads losslessly as null (never as NaN text).
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let j = Json::obj([("x", Json::Num(bad))]);
            assert_eq!(j.render(), r#"{"x":null}"#);
            assert_eq!(roundtrip(&j), Json::obj([("x", Json::Null)]));
        }
        // ... while ordinary numbers, including 2^53-scale integers and
        // negatives, survive exactly
        for n in [0.0, -1.5, 42.0, 9.0e15, -8.99e15, 1e-3] {
            assert_eq!(roundtrip(&Json::Num(n)), Json::Num(n), "{n}");
        }
    }

    #[test]
    fn suite_json_carries_cache_fields_and_round_trips() {
        use crate::{CacheReport, CellCache, Suite};
        let suite = Suite {
            workloads: epic_workloads::all().into_iter().take(1).collect(),
            results: vec![vec![epic_serve::testutil::dummy_measurement(3)]],
            levels: vec![epic_driver::OptLevel::Gcc],
            cache: Some(CacheReport {
                cells: vec![vec![CellCache {
                    hit: true,
                    key: "ab".repeat(16),
                }]],
                stats: epic_serve::StoreStats {
                    hits: 1,
                    misses: 2,
                    ..Default::default()
                },
            }),
            traces: None,
            predictor: Default::default(),
        };
        let j = suite.to_json();
        assert_eq!(roundtrip(&j), j);
        let text = j.render();
        // every cell names the predictor it was simulated with
        assert!(
            text.contains(r#""predict":{"kind":"gshare","digest":""#),
            "{text}"
        );
        // per-cell cache outcome and the server-level counters are both
        // present in the dump
        assert!(text.contains(r#""cache":{"hit":true,"key":"abababababababababababababababab"}"#));
        assert!(text.contains(r#""cache_stats":{"hits":1,"misses":2"#));
        // without a cache report, neither field appears
        let plain = Suite {
            cache: None,
            ..suite
        };
        let text = plain.to_json().render();
        assert!(!text.contains("cache_stats"));
        assert!(!text.contains(r#""cache""#));
    }

    #[test]
    fn suite_json_carries_sample_blocks_and_round_trips() {
        use crate::Suite;
        let mut m = epic_serve::testutil::dummy_measurement(9);
        m.sim.sample = Some(epic_sim::SampleInfo {
            interval_len: 300_000,
            intervals: 40,
            clusters: 7,
            total_ops: 12_000_000,
            sampled_ops: 2_100_000,
            est_error: 0.0125,
            fallback: false,
            phases: vec![0; 40],
        });
        let suite = Suite {
            workloads: epic_workloads::all().into_iter().take(1).collect(),
            results: vec![vec![m]],
            levels: vec![epic_driver::OptLevel::Gcc],
            cache: None,
            traces: None,
            predictor: Default::default(),
        };
        let j = suite.to_json();
        assert_eq!(roundtrip(&j), j);
        let text = j.render();
        assert!(
            text.contains(
                r#""sample":{"mode":"sampled","intervals":40,"clusters":7,"est_error":0.0125}"#
            ),
            "{text}"
        );
        // a fallback estimate reports itself as exact
        let mut fb = epic_serve::testutil::dummy_measurement(9);
        fb.sim.sample = Some(epic_sim::SampleInfo {
            interval_len: 300_000,
            intervals: 2,
            clusters: 0,
            total_ops: 5_000,
            sampled_ops: 5_000,
            est_error: 0.0,
            fallback: true,
            phases: vec![0, 0],
        });
        let fb_suite = Suite {
            workloads: epic_workloads::all().into_iter().take(1).collect(),
            results: vec![vec![fb]],
            levels: vec![epic_driver::OptLevel::Gcc],
            cache: None,
            traces: None,
            predictor: Default::default(),
        };
        assert!(fb_suite.to_json().render().contains(r#""mode":"exact""#));
        // a plain exact run carries no sample block at all
        let plain = Suite {
            workloads: epic_workloads::all().into_iter().take(1).collect(),
            results: vec![vec![epic_serve::testutil::dummy_measurement(9)]],
            levels: vec![epic_driver::OptLevel::Gcc],
            cache: None,
            traces: None,
            predictor: Default::default(),
        };
        assert!(!plain.to_json().render().contains(r#""sample""#));
    }

    #[test]
    fn trace_blocks_round_trip_through_json() {
        let snap = TraceSnapshot {
            spans: vec![
                SpanNode {
                    name: "compile".into(),
                    start_ns: 10,
                    dur_ns: 900,
                    children: vec![
                        SpanNode::leaf("pass:inline", 20, 300),
                        SpanNode::leaf("pass:schedule", 330, 500),
                    ],
                },
                SpanNode {
                    name: "sim".into(),
                    start_ns: 950,
                    dur_ns: 2000,
                    children: vec![SpanNode::leaf("dispatch", 960, 1800)],
                },
            ],
            metrics: MetricsSnapshot {
                entries: vec![
                    MetricEntry {
                        name: "sim.charges".into(),
                        value: MetricValue::Counter(1234),
                    },
                    MetricEntry {
                        name: "sim.charge.unstalled".into(),
                        value: MetricValue::Histogram(HistogramSnapshot {
                            count: 7,
                            sum: 40,
                            buckets: vec![(1, 3), (3, 4)],
                        }),
                    },
                ],
            },
            dropped: 0,
        };
        let j = trace_to_json(&snap);
        // the tree survives render → parse → decode byte-for-byte
        let parsed = Json::parse(&j.render()).unwrap();
        let back = trace_from_json(&parsed).unwrap();
        assert_eq!(trace_to_json(&back).render(), j.render());
        assert_eq!(back.spans.len(), 2);
        assert_eq!(back.spans[0].children[1].name, "pass:schedule");
        assert_eq!(back.metrics.entries.len(), 2);
        // structural damage is an error, not a wrong answer
        assert!(trace_from_json(&Json::Null).is_err());
        assert!(trace_from_json(&Json::obj([("spans", Json::Arr(vec![]))])).is_err());
    }

    #[test]
    fn suite_json_carries_trace_blocks_when_traced() {
        use crate::Suite;
        let snap = TraceSnapshot {
            spans: vec![SpanNode::leaf("compile", 0, 5)],
            metrics: MetricsSnapshot::default(),
            dropped: 0,
        };
        let suite = Suite {
            workloads: epic_workloads::all().into_iter().take(1).collect(),
            results: vec![vec![epic_serve::testutil::dummy_measurement(3)]],
            levels: vec![epic_driver::OptLevel::Gcc],
            cache: None,
            traces: Some(vec![vec![snap]]),
            predictor: Default::default(),
        };
        let text = suite.to_json().render();
        assert!(text.contains(r#""trace":{"spans":[{"name":"compile""#));
        let untraced = Suite {
            traces: None,
            ..suite
        };
        assert!(!untraced.to_json().render().contains(r#""trace""#));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
    }
}
