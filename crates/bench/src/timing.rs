//! Minimal wall-clock micro-benchmark harness (no `criterion`): calibrate
//! an iteration count to a time budget, take several samples, report
//! best/median/mean. Good enough to rank pipeline phases and catch
//! regressions of tens of percent, which is all the micro target needs.

use std::time::{Duration, Instant};

/// Harness configuration.
#[derive(Clone, Copy, Debug)]
pub struct TimingOptions {
    /// Warm-up budget before calibration.
    pub warmup: Duration,
    /// Target wall time per sample.
    pub sample_budget: Duration,
    /// Number of samples.
    pub samples: usize,
}

impl Default for TimingOptions {
    fn default() -> TimingOptions {
        TimingOptions {
            warmup: Duration::from_millis(100),
            sample_budget: Duration::from_millis(200),
            samples: 5,
        }
    }
}

/// One benchmark's results, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct TimingReport {
    /// Benchmark name.
    pub name: String,
    /// Iterations per sample.
    pub iters: u64,
    /// Per-sample mean ns/iter, sorted ascending.
    pub samples_ns: Vec<f64>,
}

impl TimingReport {
    /// Fastest sample (least noisy estimate on a busy machine).
    pub fn best_ns(&self) -> f64 {
        self.samples_ns.first().copied().unwrap_or(0.0)
    }

    /// Median sample.
    pub fn median_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.samples_ns[self.samples_ns.len() / 2]
    }

    /// Mean over all samples.
    pub fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
    }

    /// One-line human-readable summary.
    pub fn line(&self) -> String {
        format!(
            "{:<28} {:>12}/iter  (median {}, mean {}, {} iters x {} samples)",
            self.name,
            fmt_ns(self.best_ns()),
            fmt_ns(self.median_ns()),
            fmt_ns(self.mean_ns()),
            self.iters,
            self.samples_ns.len(),
        )
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Measure `f`, returning the report (does not print).
pub fn measure<R>(name: &str, opts: &TimingOptions, mut f: impl FnMut() -> R) -> TimingReport {
    // Warm-up: run until the budget elapses (at least once).
    let start = Instant::now();
    let mut warm_runs = 0u64;
    let mut warm_spent = Duration::ZERO;
    while warm_spent < opts.warmup {
        std::hint::black_box(f());
        warm_runs += 1;
        warm_spent = start.elapsed();
    }
    // Calibrate iterations per sample from the observed mean run time.
    let per_run = warm_spent.as_secs_f64() / warm_runs as f64;
    let iters = ((opts.sample_budget.as_secs_f64() / per_run.max(1e-9)) as u64).max(1);
    let mut samples_ns: Vec<f64> = (0..opts.samples.max(1))
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            t.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    TimingReport {
        name: name.to_string(),
        iters,
        samples_ns,
    }
}

/// Measure `f` with default options and print the one-line summary.
pub fn bench<R>(name: &str, f: impl FnMut() -> R) -> TimingReport {
    let r = measure(name, &TimingOptions::default(), f);
    println!("{}", r.line());
    r
}

/// Like [`bench`] but with a caller-tuned options block (e.g. fewer
/// samples for very slow bodies).
pub fn bench_with<R>(name: &str, opts: &TimingOptions, f: impl FnMut() -> R) -> TimingReport {
    let r = measure(name, opts, f);
    println!("{}", r.line());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_closure_quickly() {
        let opts = TimingOptions {
            warmup: Duration::from_millis(1),
            sample_budget: Duration::from_millis(2),
            samples: 3,
        };
        let mut n = 0u64;
        let r = measure("noop", &opts, || {
            n = n.wrapping_add(1);
            n
        });
        assert_eq!(r.samples_ns.len(), 3);
        assert!(r.iters >= 1);
        assert!(r.best_ns() <= r.median_ns());
        assert!(r.median_ns() > 0.0);
        assert!(!r.line().is_empty());
    }

    #[test]
    fn formats_scale_units() {
        assert_eq!(fmt_ns(12.0), "12ns");
        assert_eq!(fmt_ns(1500.0), "1.500us");
        assert_eq!(fmt_ns(2.5e6), "2.500ms");
        assert_eq!(fmt_ns(3.0e9), "3.000s");
    }
}
