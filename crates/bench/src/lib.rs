//! # epic-bench
//!
//! Harness regenerating every table and figure of the paper's evaluation.
//! Each `benches/*.rs` target (run via `cargo bench`) prints one table or
//! figure data series; this library holds the shared machinery: running
//! the 12-workload × 4-level sweep in parallel, speedup math, and
//! paper-style table formatting.
//!
//! The reproduction criterion is *shape*, not absolute numbers (our
//! substrate is a simulator and the workloads are stand-ins): orderings,
//! approximate factors, and which benchmarks deviate in which direction.

use epic_driver::{
    CachePolicy, CompileOptions, MeasureRequest, Measurement, OptLevel, TracePolicy,
};
use epic_serve::{ArtifactStore, JobSpec, StoreStats};
use epic_sim::{PredictorSpec, SimOptions};
use epic_trace::TraceSnapshot;
use epic_workloads::Workload;

pub mod json;
pub mod timing;

/// Cache outcome for one (workload × level) cell of a sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellCache {
    /// Served from the artifact store rather than recomputed.
    pub hit: bool,
    /// 32-hex content key (empty when the cell was not cacheable).
    pub key: String,
}

/// Cache-side report for a cached sweep: per-cell outcomes plus the
/// store's counters after the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheReport {
    /// `cells[w][l]` pairs with `Suite::results[w][l]`.
    pub cells: Vec<Vec<CellCache>>,
    /// Store counters at the end of the sweep.
    pub stats: StoreStats,
}

/// A full sweep: per workload, one measurement per requested level.
pub struct Suite {
    /// The workloads measured, in Table 1 order.
    pub workloads: Vec<Workload>,
    /// `results[w][l]` pairs with `workloads[w]` and `levels[l]`.
    pub results: Vec<Vec<Measurement>>,
    /// The levels measured.
    pub levels: Vec<OptLevel>,
    /// Present when the sweep went through an artifact cache
    /// (`EPIC_CACHE_DIR`; see [`cache_store_from_env`]).
    pub cache: Option<CacheReport>,
    /// Per-cell span trees + metrics, present when the sweep was traced
    /// (`EPIC_TRACE=1`; see [`trace_policy_from_env`]). `traces[w][l]`
    /// pairs with `results[w][l]`.
    pub traces: Option<Vec<Vec<TraceSnapshot>>>,
    /// The branch predictor every cell of the sweep simulated with.
    pub predictor: PredictorSpec,
}

/// Worker-pool bound for the sweeps: `EPIC_BENCH_WORKERS` if set, else 0
/// (let the driver use the machine's available parallelism).
pub fn worker_bound() -> usize {
    worker_bound_from(std::env::var("EPIC_BENCH_WORKERS").ok().as_deref())
}

/// [`worker_bound`]'s parsing, factored out so the edge cases are
/// testable without touching the process environment: unset, empty,
/// non-numeric, negative, and overlong values all fall back to 0
/// (= available parallelism); surrounding whitespace is tolerated.
pub fn worker_bound_from(value: Option<&str>) -> usize {
    value
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_default()
}

/// The artifact store the bench sweeps use, from the environment:
/// `EPIC_CACHE_DIR=<dir>` enables a persistent store there, and
/// `EPIC_NO_CACHE=1` is the escape hatch that disables caching even when
/// a directory is configured.
pub fn cache_store_from_env() -> Option<ArtifactStore> {
    if std::env::var_os("EPIC_NO_CACHE").is_some() {
        return None;
    }
    std::env::var_os("EPIC_CACHE_DIR").map(ArtifactStore::persistent)
}

/// The sweep's [`TracePolicy`] from the environment: `EPIC_TRACE=1` (or
/// `on`/`true`) attaches a span tree + metrics snapshot to every cell.
/// Environment parsing happens here, at the binary boundary — the driver
/// library only ever sees the explicit policy.
pub fn trace_policy_from_env() -> TracePolicy {
    std::env::var("EPIC_TRACE")
        .map(|v| TracePolicy::from_flag(&v))
        .unwrap_or_default()
}

/// Run the sweep over all 12 workloads at the given levels, in parallel
/// over every (workload × level) cell via
/// [`MeasureRequest`]'s bounded worker pool, consulting the
/// environment-configured artifact cache (if any).
///
/// # Panics
/// Panics if any compilation or simulation fails — the differential test
/// suite guarantees these paths are correct, so a failure here is a bug.
pub fn run_suite(levels: &[OptLevel]) -> Suite {
    run_suite_with(levels, &CompileOptions::for_level, &SimOptions::default())
}

/// [`run_suite`] with custom compile/sim options per level.
pub fn run_suite_with(
    levels: &[OptLevel],
    copts: &(dyn Fn(OptLevel) -> CompileOptions + Sync),
    sopts: &SimOptions,
) -> Suite {
    run_suite_store(
        levels,
        copts,
        sopts,
        cache_store_from_env().as_ref(),
        trace_policy_from_env(),
    )
}

/// [`run_suite_with`] against an explicit store (or none) and an
/// explicit [`TracePolicy`]. The cache is consulted per cell; results
/// are bit-identical with and without it, and with and without tracing.
pub fn run_suite_store(
    levels: &[OptLevel],
    copts: &(dyn Fn(OptLevel) -> CompileOptions + Sync),
    sopts: &SimOptions,
    store: Option<&ArtifactStore>,
    trace: TracePolicy,
) -> Suite {
    let workloads = epic_workloads::all();
    let report = MeasureRequest::new(&workloads)
        .levels(levels)
        .compile_options(copts)
        .sim_options(*sopts)
        .threads(worker_bound())
        .cache(match store {
            Some(s) => CachePolicy::Store(s),
            None => CachePolicy::Disabled,
        })
        .trace(trace)
        .run()
        .unwrap_or_else(|e| panic!("{e}"));
    let cache = store.map(|s| CacheReport {
        cells: workloads
            .iter()
            .zip(&report.cells)
            .map(|(w, row)| {
                levels
                    .iter()
                    .zip(row)
                    .map(|(&level, cell)| {
                        let co = copts(level);
                        let key = if JobSpec::cacheable(&co, sopts) {
                            JobSpec::from_options(w.source, &w.train_args, &w.ref_args, &co, sopts)
                                .job_key()
                                .hex()
                        } else {
                            String::new()
                        };
                        CellCache {
                            hit: cell.cache_hit,
                            key,
                        }
                    })
                    .collect()
            })
            .collect(),
        stats: s.stats(),
    });
    let (results, traces): (Vec<Vec<Measurement>>, Vec<Vec<Option<TraceSnapshot>>>) = report
        .cells
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|c| (c.measurement, c.trace))
                .unzip::<_, _, Vec<_>, Vec<_>>()
        })
        .unzip();
    let traces = if trace == TracePolicy::Enabled {
        Some(
            traces
                .into_iter()
                .map(|row| {
                    row.into_iter()
                        .map(|t| t.expect("traced run attaches a snapshot to every cell"))
                        .collect()
                })
                .collect(),
        )
    } else {
        None
    };
    Suite {
        workloads,
        results,
        levels: levels.to_vec(),
        cache,
        traces,
        predictor: sopts.predictor,
    }
}

impl Suite {
    /// Index of a level within this suite.
    pub fn level_idx(&self, level: OptLevel) -> usize {
        self.levels
            .iter()
            .position(|l| *l == level)
            .expect("level was measured")
    }

    /// Measurement for (workload index, level).
    pub fn get(&self, wi: usize, level: OptLevel) -> &Measurement {
        &self.results[wi][self.level_idx(level)]
    }

    /// Speedup of `num` over `den` (cycles ratio, >1 = num faster).
    pub fn speedup(&self, wi: usize, num: OptLevel, den: OptLevel) -> f64 {
        self.get(wi, den).sim.cycles as f64 / self.get(wi, num).sim.cycles as f64
    }
}

/// Geometric mean.
pub fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut s, mut n) = (0.0, 0);
    for x in xs {
        s += x.ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (s / n as f64).exp()
}

/// A "SPEC ratio"-style figure of merit: bigger is better, scaled so the
/// numbers land in a Table 1-like range.
pub fn pseudo_ratio(cycles: u64) -> f64 {
    2.0e9 / cycles as f64
}

/// Fixed-width table printer.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a header row.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn print(&self) {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    out.push_str(&format!("{:<w$}", c, w = width[0]));
                } else {
                    out.push_str(&format!("  {:>w$}", c, w = width[i]));
                }
            }
            println!("{out}");
        };
        line(&self.header);
        println!(
            "{}",
            "-".repeat(width.iter().sum::<usize>() + 2 * (ncols - 1))
        );
        for r in &self.rows {
            line(r);
        }
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Print a standard experiment banner.
pub fn banner(id: &str, paper: &str) {
    println!();
    println!("=== {id} ===");
    println!("    paper reference: {paper}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean([1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty::<f64>()), 0.0);
    }

    #[test]
    fn worker_bound_parsing_edge_cases() {
        assert_eq!(worker_bound_from(None), 0);
        assert_eq!(worker_bound_from(Some("")), 0);
        assert_eq!(worker_bound_from(Some("abc")), 0);
        assert_eq!(worker_bound_from(Some("-1")), 0);
        assert_eq!(worker_bound_from(Some("3.5")), 0);
        assert_eq!(worker_bound_from(Some("0")), 0);
        assert_eq!(worker_bound_from(Some("4")), 4);
        assert_eq!(worker_bound_from(Some(" 8 ")), 8);
        assert_eq!(worker_bound_from(Some("99999999999999999999")), 0);
    }

    #[test]
    fn table_renders_without_panicking() {
        let mut t = Table::new(&["Benchmark", "A", "B"]);
        t.row(vec!["x".into(), "1.00".into(), "2.00".into()]);
        t.print();
    }
}
