//! Profile-guided procedure inlining.
//!
//! Following the paper (Sec. 3.1): callsites are expanded in priority order
//! with `priority = exec_weight / sqrt(callee_size)` until the program has
//! grown by a factor of 1.6, an empirically determined budget that provides
//! enough inlining for ILP formation without unduly hurting the
//! instruction cache.

use epic_ir::{BlockId, BlockOrigin, FuncId, Op, Opcode, Operand, Program, Vreg};
use std::collections::HashMap;

/// Inlining configuration.
#[derive(Clone, Copy, Debug)]
pub struct InlineOptions {
    /// Stop when `program ops > growth_budget * original ops`.
    pub growth_budget: f64,
    /// Never inline callees larger than this many ops.
    pub max_callee_ops: usize,
    /// Ignore callsites colder than this weight.
    pub min_weight: f64,
}

impl Default for InlineOptions {
    fn default() -> InlineOptions {
        InlineOptions {
            growth_budget: 1.6,
            max_callee_ops: 500,
            min_weight: 1.0,
        }
    }
}

/// Statistics from an inlining run.
#[derive(Clone, Copy, Debug, Default)]
pub struct InlineStats {
    /// Callsites expanded.
    pub inlined: usize,
    /// Static ops before.
    pub ops_before: usize,
    /// Static ops after.
    pub ops_after: usize,
}

/// Run profile-guided inlining over the whole program.
pub fn run(prog: &mut Program, opts: InlineOptions) -> InlineStats {
    let ops_before = prog.op_count();
    let budget = (ops_before as f64 * opts.growth_budget) as usize;
    let mut inlined = 0;
    // Iterate: each inlining creates new candidate sites inside the caller.
    for _round in 0..8 {
        let mut candidates = find_candidates(prog, &opts);
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by(|a, b| b.priority.partial_cmp(&a.priority).unwrap());
        let mut any = false;
        for c in candidates {
            if prog.op_count() + prog.func(c.callee).op_count() > budget {
                continue;
            }
            if inline_site(prog, c.caller, c.block, c.op_idx, c.callee) {
                inlined += 1;
                any = true;
                break; // op indexes are stale; re-scan
            }
        }
        if !any {
            break;
        }
        // keep scanning within the same budget
        while prog.op_count() < budget {
            let mut cs = find_candidates(prog, &opts);
            if cs.is_empty() {
                break;
            }
            cs.sort_by(|a, b| b.priority.partial_cmp(&a.priority).unwrap());
            let c = cs[0];
            if prog.op_count() + prog.func(c.callee).op_count() > budget {
                break;
            }
            if !inline_site(prog, c.caller, c.block, c.op_idx, c.callee) {
                break;
            }
            inlined += 1;
        }
    }
    InlineStats {
        inlined,
        ops_before,
        ops_after: prog.op_count(),
    }
}

#[derive(Clone, Copy, Debug)]
struct Candidate {
    caller: FuncId,
    block: BlockId,
    op_idx: usize,
    callee: FuncId,
    priority: f64,
}

fn find_candidates(prog: &Program, opts: &InlineOptions) -> Vec<Candidate> {
    let mut out = Vec::new();
    for f in &prog.funcs {
        for b in f.block_ids() {
            let blk = f.block(b);
            for (i, op) in blk.ops.iter().enumerate() {
                if !op.is_call() || op.guard.is_some() {
                    continue;
                }
                let Operand::FuncAddr(callee) = op.srcs[0] else {
                    continue;
                };
                if callee == f.id {
                    continue; // no self-inlining
                }
                let size = prog.func(callee).op_count();
                if size == 0 || size > opts.max_callee_ops {
                    continue;
                }
                let weight = blk.weight;
                if weight < opts.min_weight {
                    continue;
                }
                out.push(Candidate {
                    caller: f.id,
                    block: b,
                    op_idx: i,
                    callee,
                    priority: weight / (size as f64).sqrt(),
                });
            }
        }
    }
    out
}

/// Inline one callsite. Returns false if the site no longer matches.
fn inline_site(
    prog: &mut Program,
    caller: FuncId,
    block: BlockId,
    op_idx: usize,
    callee_id: FuncId,
) -> bool {
    // Validate the site.
    {
        let f = prog.func(caller);
        let Some(op) = f.block(block).ops.get(op_idx) else {
            return false;
        };
        if !op.is_call() || op.srcs.first() != Some(&Operand::FuncAddr(callee_id)) {
            return false;
        }
    }
    let callee = prog.func(callee_id).clone();
    let f = prog.func_mut(caller);

    // Split the caller block at the call.
    let call_op = f.block(block).ops[op_idx].clone();
    let tail: Vec<Op> = f.block_mut(block).ops.split_off(op_idx + 1);
    f.block_mut(block).ops.pop(); // remove the call
    let (site_weight, site_origin) = {
        let blk = f.block(block);
        (blk.weight, blk.origin)
    };
    let post = f.add_block();
    f.block_mut(post).ops = tail;
    f.block_mut(post).weight = site_weight;
    f.block_mut(post).origin = site_origin;

    // Clone callee blocks into the caller.
    let frame_shift = f.frame_size;
    f.frame_size += (callee.frame_size + 15) & !15;
    let mut vreg_map: HashMap<Vreg, Vreg> = HashMap::new();
    let mut map_vreg = |f: &mut epic_ir::Function, v: Vreg, m: &mut HashMap<Vreg, Vreg>| -> Vreg {
        *m.entry(v).or_insert_with(|| f.new_vreg())
    };
    let callsite_weight = f.block(block).weight;
    let callee_entry_weight = callee.block(callee.entry).weight.max(1.0);
    let scale = (callsite_weight / callee_entry_weight).min(1.0e12);

    let mut block_map: HashMap<BlockId, BlockId> = HashMap::new();
    for cb in callee.block_ids() {
        let nb = f.add_block();
        block_map.insert(cb, nb);
    }
    for cb in callee.block_ids() {
        let nb = block_map[&cb];
        let src_blk = callee.block(cb);
        let mut ops = Vec::with_capacity(src_blk.ops.len());
        for op in &src_blk.ops {
            // Rets become assignments + branch to post.
            if matches!(op.opcode, Opcode::Ret) {
                if let Some(&dst) = call_op.dsts.first() {
                    let val = op
                        .srcs
                        .first()
                        .map(|s| remap_operand(*s, &mut vreg_map, f, frame_shift, &mut map_vreg))
                        .unwrap_or(Operand::Imm(0));
                    let mut mv = Op::new(f.new_op_id(), Opcode::Mov, vec![dst], vec![val]);
                    mv.weight = op.weight * scale;
                    ops.push(mv);
                }
                let mut br = epic_ir::func::mk_br(f.new_op_id(), post);
                br.weight = op.weight * scale;
                ops.push(br);
                continue;
            }
            let mut c = op.clone();
            c.id = f.new_op_id();
            c.weight *= scale;
            for d in &mut c.dsts {
                *d = map_vreg(f, *d, &mut vreg_map);
            }
            for s in &mut c.srcs {
                *s = remap_operand(*s, &mut vreg_map, f, frame_shift, &mut map_vreg);
                // remap labels through block_map
                if let Operand::Label(t) = s {
                    *s = Operand::Label(block_map[t]);
                }
            }
            if let Some(g) = c.guard {
                c.guard = Some(map_vreg(f, g, &mut vreg_map));
            }
            ops.push(c);
        }
        let nblk = f.block_mut(nb);
        nblk.ops = ops;
        nblk.weight = src_blk.weight * scale;
        nblk.origin = BlockOrigin::Inline;
    }

    // Bind arguments and jump into the inlined entry.
    let entry_nb = block_map[&callee.entry];
    let mut binds = Vec::new();
    for (i, &p) in callee.params.iter().enumerate() {
        let arg = call_op.srcs.get(1 + i).copied().unwrap_or(Operand::Imm(0));
        let np = map_vreg(f, p, &mut vreg_map);
        let mut mv = Op::new(f.new_op_id(), Opcode::Mov, vec![np], vec![arg]);
        mv.weight = callsite_weight;
        binds.push(mv);
    }
    f.block_mut(block).ops.extend(binds);
    let mut br = epic_ir::func::mk_br(f.new_op_id(), entry_nb);
    br.weight = callsite_weight;
    f.block_mut(block).ops.push(br);
    true
}

fn remap_operand(
    s: Operand,
    map: &mut HashMap<Vreg, Vreg>,
    f: &mut epic_ir::Function,
    frame_shift: u64,
    map_vreg: &mut impl FnMut(&mut epic_ir::Function, Vreg, &mut HashMap<Vreg, Vreg>) -> Vreg,
) -> Operand {
    match s {
        Operand::Reg(v) => Operand::Reg(map_vreg(f, v, map)),
        Operand::FrameAddr(off) => Operand::FrameAddr(off + frame_shift),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::interp::{run as interp_run, InterpOptions};
    use epic_ir::verify::verify_program;

    fn profiled(src: &str, args: &[i64]) -> Program {
        let mut prog = epic_lang::compile(src).unwrap();
        let r = interp_run(
            &prog,
            args,
            InterpOptions {
                collect_profile: true,
                ..Default::default()
            },
        )
        .unwrap();
        r.profile.unwrap().apply(&mut prog);
        prog
    }

    #[test]
    fn inlines_hot_callee_and_preserves_semantics() {
        let src = "
            fn sq(x: int) -> int { return x * x; }
            fn main() {
                let i = 0; let s = 0;
                while i < 100 { s = s + sq(i); i = i + 1; }
                out(s);
            }";
        let mut prog = profiled(src, &[]);
        let want = interp_run(&prog, &[], InterpOptions::default())
            .unwrap()
            .output;
        let stats = run(&mut prog, InlineOptions::default());
        assert!(stats.inlined >= 1);
        verify_program(&prog).unwrap();
        // the hot call is gone from main
        let main = prog.func(prog.func_by_name("main").unwrap());
        let calls: usize = main
            .block_ids()
            .map(|b| main.block(b).ops.iter().filter(|o| o.is_call()).count())
            .sum();
        assert_eq!(calls, 0);
        let got = interp_run(&prog, &[], InterpOptions::default())
            .unwrap()
            .output;
        assert_eq!(got, want);
    }

    #[test]
    fn respects_growth_budget() {
        // many distinct cold callsites of a biggish function: budget limits
        let mut src = String::from("fn f(x: int) -> int { let a = x; let i = 0; while i < 3 { a = a * 2 + i; i = i + 1; } return a; }\nfn main() { let s = 0;\n");
        for i in 0..40 {
            src.push_str(&format!("s = s + f({i});\n"));
        }
        src.push_str("out(s); }");
        let mut prog = profiled(&src, &[]);
        let before = prog.op_count();
        let stats = run(
            &mut prog,
            InlineOptions {
                growth_budget: 1.3,
                ..Default::default()
            },
        );
        verify_program(&prog).unwrap();
        assert!(stats.ops_after as f64 <= before as f64 * 1.35 + 60.0);
        let got = interp_run(&prog, &[], InterpOptions::default())
            .unwrap()
            .output;
        let want = interp_run(&profiled(&src, &[]), &[], InterpOptions::default())
            .unwrap()
            .output;
        assert_eq!(got, want);
    }

    #[test]
    fn skips_recursive_and_returns_value() {
        let src = "
            fn fact(n: int) -> int {
                if n <= 1 { return 1; }
                return n * fact(n - 1);
            }
            fn main() { out(fact(10)); }";
        let mut prog = profiled(src, &[]);
        run(&mut prog, InlineOptions::default());
        verify_program(&prog).unwrap();
        let got = interp_run(&prog, &[], InterpOptions::default())
            .unwrap()
            .output;
        assert_eq!(got, vec![3628800]);
    }

    #[test]
    fn inlined_frame_slots_do_not_collide() {
        let src = "
            fn swap_add(x: int) -> int {
                let a = x;       // address-taken -> frame slot
                bump(&a);
                return a;
            }
            fn bump(p: *int) { *p = *p + 1; }
            fn main() {
                let t = 0;      // address-taken -> frame slot in main
                bump(&t);
                out(swap_add(t) + t);
            }";
        let mut prog = profiled(src, &[]);
        run(
            &mut prog,
            InlineOptions {
                min_weight: 0.0,
                ..Default::default()
            },
        );
        verify_program(&prog).unwrap();
        let got = interp_run(&prog, &[], InterpOptions::default())
            .unwrap()
            .output;
        assert_eq!(got, vec![3]); // t=1; swap_add(1)=2; 2+1
    }
}
