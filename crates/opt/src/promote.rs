//! Profile-guided indirect-call promotion.
//!
//! The paper (Sec. 3.1) notes that programs like eon and gap make heavily
//! biased indirect calls; IMPACT converts these to a test plus a
//! "specialized" direct call to the dominant callee (which then becomes
//! inlinable), falling back to the original indirect call otherwise.

use epic_ir::func::mk_br;
use epic_ir::profile::Profile;
use epic_ir::{BlockId, CmpKind, FuncId, Op, Opcode, Operand, Program};

/// Promotion configuration.
#[derive(Clone, Copy, Debug)]
pub struct PromoteOptions {
    /// Minimum fraction of calls going to the dominant target.
    pub min_bias: f64,
    /// Minimum dynamic execution count of the callsite.
    pub min_count: u64,
}

impl Default for PromoteOptions {
    fn default() -> PromoteOptions {
        PromoteOptions {
            min_bias: 0.70,
            min_count: 10,
        }
    }
}

/// Promote biased indirect callsites using `profile`'s call-target data
/// (which must have been collected on the *same program shape*, i.e. run
/// this before any other transform). Returns sites promoted.
pub fn run(prog: &mut Program, profile: &Profile, opts: PromoteOptions) -> usize {
    let mut sites = Vec::new();
    for (fi, targets) in profile.call_targets.iter().enumerate() {
        for (&(b, op_idx), counts) in targets {
            let total: u64 = counts.values().sum();
            if total < opts.min_count {
                continue;
            }
            let (&best, &best_n) = counts.iter().max_by_key(|(_, n)| **n).unwrap();
            if (best_n as f64) < opts.min_bias * total as f64 {
                continue;
            }
            sites.push((
                FuncId(fi as u32),
                BlockId(b),
                op_idx as usize,
                FuncId(best),
                best_n as f64,
                (total - best_n) as f64,
            ));
        }
    }
    // Rewrite from highest op index first within each block so indexes stay
    // valid; group by (func, block).
    sites.sort_by_key(|s| std::cmp::Reverse((s.0 .0, s.1 .0, s.2)));
    let mut promoted = 0;
    for (fid, bid, op_idx, target, hot_w, cold_w) in sites {
        if promote_site(prog, fid, bid, op_idx, target, hot_w, cold_w) {
            promoted += 1;
        }
    }
    promoted
}

fn promote_site(
    prog: &mut Program,
    fid: FuncId,
    bid: BlockId,
    op_idx: usize,
    target: FuncId,
    hot_w: f64,
    cold_w: f64,
) -> bool {
    let f = prog.func_mut(fid);
    {
        let Some(op) = f.block(bid).ops.get(op_idx) else {
            return false;
        };
        if !op.is_call() || !matches!(op.srcs[0], Operand::Reg(_)) || op.guard.is_some() {
            return false;
        }
    }
    let call = f.block(bid).ops[op_idx].clone();
    let tail: Vec<Op> = f.block_mut(bid).ops.split_off(op_idx + 1);
    f.block_mut(bid).ops.pop();
    let site_weight = f.block(bid).weight;

    let direct_b = f.add_block();
    let indirect_b = f.add_block();
    let join_b = f.add_block();
    // test: p = (fp == &target)
    let p = f.new_vreg();
    let cmp = Op::new(
        f.new_op_id(),
        Opcode::Cmp(CmpKind::Eq),
        vec![p],
        vec![call.srcs[0], Operand::FuncAddr(target)],
    );
    let mut br_direct = mk_br(f.new_op_id(), direct_b);
    br_direct.guard = Some(p);
    br_direct.weight = hot_w;
    let mut br_ind = mk_br(f.new_op_id(), indirect_b);
    br_ind.weight = cold_w;
    f.block_mut(bid).ops.extend([cmp, br_direct, br_ind]);

    // direct call block
    let mut dcall = call.clone();
    dcall.id = f.new_op_id();
    dcall.srcs[0] = Operand::FuncAddr(target);
    let mut dbr = mk_br(f.new_op_id(), join_b);
    dbr.weight = hot_w;
    f.block_mut(direct_b).ops = vec![dcall, dbr];
    f.block_mut(direct_b).weight = hot_w;

    // fallback indirect call block
    let mut icall = call.clone();
    icall.id = f.new_op_id();
    let mut ibr = mk_br(f.new_op_id(), join_b);
    ibr.weight = cold_w;
    f.block_mut(indirect_b).ops = vec![icall, ibr];
    f.block_mut(indirect_b).weight = cold_w;

    f.block_mut(join_b).ops = tail;
    f.block_mut(join_b).weight = site_weight;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::interp::{run as interp_run, InterpOptions};
    use epic_ir::verify::verify_program;

    #[test]
    fn promotes_biased_site_and_preserves_semantics() {
        let src = "
            fn a(x: int) -> int { return x + 1; }
            fn b(x: int) -> int { return x * 2; }
            fn main() {
                let s = 0; let i = 0;
                while i < 100 {
                    let fp = a;
                    if i % 10 == 0 { fp = b; }
                    s = s + icall(fp, i);
                    i = i + 1;
                }
                out(s);
            }";
        let mut prog = epic_lang::compile(src).unwrap();
        let r = interp_run(
            &prog,
            &[],
            InterpOptions {
                collect_profile: true,
                ..Default::default()
            },
        )
        .unwrap();
        let want = r.output.clone();
        let profile = r.profile.unwrap();
        profile.apply(&mut prog);
        let n = run(&mut prog, &profile, PromoteOptions::default());
        assert_eq!(n, 1);
        verify_program(&prog).unwrap();
        // a direct call to `a` now exists in main
        let main = prog.func(prog.func_by_name("main").unwrap());
        let a_id = prog.func_by_name("a").unwrap();
        let has_direct = main.block_ids().any(|b| {
            main.block(b)
                .ops
                .iter()
                .any(|o| o.is_call() && o.srcs[0] == Operand::FuncAddr(a_id))
        });
        assert!(has_direct);
        let got = interp_run(&prog, &[], InterpOptions::default())
            .unwrap()
            .output;
        assert_eq!(got, want);
    }

    #[test]
    fn skips_unbiased_sites() {
        let src = "
            fn a(x: int) -> int { return x + 1; }
            fn b(x: int) -> int { return x * 2; }
            fn main() {
                let s = 0; let i = 0;
                while i < 100 {
                    let fp = a;
                    if i % 2 == 0 { fp = b; }
                    s = s + icall(fp, i);
                    i = i + 1;
                }
                out(s);
            }";
        let mut prog = epic_lang::compile(src).unwrap();
        let r = interp_run(
            &prog,
            &[],
            InterpOptions {
                collect_profile: true,
                ..Default::default()
            },
        )
        .unwrap();
        let profile = r.profile.unwrap();
        profile.apply(&mut prog);
        assert_eq!(run(&mut prog, &profile, PromoteOptions::default()), 0);
    }
}
