//! Profiling glue: run the program on a training input and annotate the IR.

use epic_ir::interp::{run, InterpOptions, Trap};
use epic_ir::profile::Profile;
use epic_ir::Program;

/// Run a training execution and write the collected weights onto `prog`.
/// Returns the profile (also needed by indirect-call promotion).
///
/// # Errors
/// Propagates any interpreter trap (a workload bug).
pub fn profile_program(prog: &mut Program, train_args: &[i64], fuel: u64) -> Result<Profile, Trap> {
    let r = run(
        prog,
        train_args,
        InterpOptions {
            fuel,
            collect_profile: true,
        },
    )?;
    let profile = r.profile.expect("profile requested");
    profile.apply(prog);
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotates_blocks_and_branches() {
        let mut prog = epic_lang::compile(
            "fn main() {
                 let i = 0;
                 while i < 25 { i = i + 1; }
                 out(i);
             }",
        )
        .unwrap();
        profile_program(&mut prog, &[], 1_000_000).unwrap();
        let main = prog.func(prog.entry);
        let max_w = main
            .block_ids()
            .map(|b| main.block(b).weight)
            .fold(0.0f64, f64::max);
        assert!(max_w >= 25.0, "loop body weight {max_w}");
    }
}
