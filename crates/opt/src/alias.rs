//! Interprocedural flow-insensitive (Andersen-style) pointer analysis.
//!
//! This plays the role of IMPACT's access-path pointer analysis (paper
//! Sec. 3.1, [Cheng & Hwu PLDI'00]): it computes, for every memory
//! operation, the set of *abstract locations* it may touch, recorded as an
//! [`epic_ir::Op::mem_tag`] into [`epic_ir::Program::alias_sets`]. The
//! scheduler draws memory dependence arcs only between operations whose
//! sets intersect, which is the single largest enabler of O-NS code quality
//! over the GCC-like baseline.
//!
//! Abstract locations: one per global, one per function frame
//! (field-insensitive), one per `Alloc` site. Constraints:
//!
//! * address-of (globals, frame slots, allocation) seeds points-to sets;
//! * ALU ops union their register operands' sets (pointer arithmetic keeps
//!   the base; `Cmp`/`Div`/`Rem`/`Mul` produce non-pointers);
//! * loads read through location contents, stores write into them;
//! * calls connect arguments to parameters and returns to results
//!   (indirect calls conservatively target every address-taken function).
//!
//! A memory op whose address set comes out *empty* (a constant or purely
//! integer-derived address — e.g. the paper's "wild" loads in gcc) keeps
//! tag 0 = "may touch anything". Calls get the transitive effect set of
//! their callee; a call to a memory-pure callee receives an empty alias
//! set and so conflicts with nothing.

use epic_ir::bitset::BitSet;
use epic_ir::{FuncId, Opcode, Operand, Program};
use std::collections::HashMap;

/// Statistics from an analysis run.
#[derive(Clone, Copy, Debug, Default)]
pub struct AliasStats {
    /// Memory ops that received a precise (non-zero) tag.
    pub tagged: usize,
    /// Memory ops left with the unknown tag.
    pub unknown: usize,
    /// Number of abstract locations.
    pub locations: usize,
}

#[derive(Clone, Copy)]
enum Constraint {
    /// `pts[dst] ∋ loc`.
    AddrOf(usize, usize),
    /// `pts[dst] ⊇ pts[src]`.
    Copy(usize, usize),
    /// `pts[dst] ⊇ contents(l)` for every `l ∈ pts[addr]` — `(dst, addr)`.
    Load(usize, usize),
    /// `contents(l) ⊇ pts[val]` for every `l ∈ pts[addr]` — `(addr, val)`.
    Store(usize, usize),
}

/// Run the analysis and tag every memory operation in `prog`.
pub fn run(prog: &mut Program) -> AliasStats {
    let nf = prog.funcs.len();
    // --- variable space: one var per (function, vreg) ---
    let mut var_base = vec![0usize; nf + 1];
    for (i, f) in prog.funcs.iter().enumerate() {
        var_base[i + 1] = var_base[i] + f.vreg_count();
    }
    let nvars = var_base[nf];
    let var = |f: FuncId, v: epic_ir::Vreg| var_base[f.index()] + v.index();

    // --- location space ---
    let nglobals = prog.globals.len();
    let loc_global = |g: usize| g;
    let loc_frame = |f: usize| nglobals + f;
    let mut nlocs = nglobals + nf;
    // alloc sites discovered during constraint generation
    let mut constraints: Vec<Constraint> = Vec::new();
    // address-taken functions (possible indirect-call targets)
    let mut addr_taken: Vec<FuncId> = Vec::new();
    for f in &prog.funcs {
        for b in f.block_ids() {
            for op in &f.block(b).ops {
                for (i, s) in op.srcs.iter().enumerate() {
                    if let Operand::FuncAddr(t) = s {
                        if (!op.is_call() || i != 0) && !addr_taken.contains(t) {
                            addr_taken.push(*t);
                        }
                    }
                }
            }
        }
    }

    // return-value vars: one synthetic var per function
    let ret_var_base = nvars;
    let total_vars = nvars + nf;

    for f in &prog.funcs {
        let fi = f.id.index();
        for b in f.block_ids() {
            for op in &f.block(b).ops {
                let dst = op.dsts.first().map(|d| var(f.id, *d));
                // seed address-like operands
                for s in &op.srcs {
                    if let Some(d) = dst {
                        match s {
                            Operand::Global(g) => {
                                constraints.push(Constraint::AddrOf(d, loc_global(g.index())))
                            }
                            Operand::FrameAddr(_) => {
                                constraints.push(Constraint::AddrOf(d, loc_frame(fi)))
                            }
                            _ => {}
                        }
                    }
                }
                match op.opcode {
                    Opcode::Mov
                    | Opcode::Add
                    | Opcode::Sub
                    | Opcode::And
                    | Opcode::Or
                    | Opcode::Xor
                    | Opcode::Shl
                    | Opcode::Shr
                    | Opcode::Sar => {
                        if let Some(d) = dst {
                            for s in &op.srcs {
                                if let Operand::Reg(v) = s {
                                    constraints.push(Constraint::Copy(d, var(f.id, *v)));
                                }
                            }
                        }
                    }
                    Opcode::Ld(_) => {
                        if let (Some(d), Operand::Reg(a)) = (dst, op.srcs[0]) {
                            constraints.push(Constraint::Load(d, var(f.id, a)));
                        }
                    }
                    Opcode::Chk(_) => {
                        if let Some(d) = dst {
                            if let Operand::Reg(v) = op.srcs[0] {
                                constraints.push(Constraint::Copy(d, var(f.id, v)));
                            }
                            if let Operand::Reg(a) = op.srcs[1] {
                                constraints.push(Constraint::Load(d, var(f.id, a)));
                            }
                        }
                    }
                    Opcode::St(_) => {
                        if let (Operand::Reg(a), Operand::Reg(v)) = (op.srcs[0], op.srcs[1]) {
                            constraints.push(Constraint::Store(var(f.id, a), var(f.id, v)));
                        }
                        // stores of non-register values carry no pointers
                    }
                    Opcode::Alloc => {
                        if let Some(d) = dst {
                            let site = nlocs;
                            nlocs += 1;
                            constraints.push(Constraint::AddrOf(d, site));
                        }
                    }
                    Opcode::Call => {
                        let callees: Vec<FuncId> = match op.srcs[0] {
                            Operand::FuncAddr(t) => vec![t],
                            _ => addr_taken.clone(),
                        };
                        for callee in callees {
                            let cf = prog.func(callee);
                            for (i, p) in cf.params.iter().enumerate() {
                                if let Some(Operand::Reg(a)) = op.srcs.get(1 + i) {
                                    constraints
                                        .push(Constraint::Copy(var(callee, *p), var(f.id, *a)));
                                }
                            }
                            if let Some(d) = dst {
                                constraints
                                    .push(Constraint::Copy(d, ret_var_base + callee.index()));
                            }
                        }
                    }
                    Opcode::Ret => {
                        if let Some(Operand::Reg(v)) = op.srcs.first() {
                            constraints.push(Constraint::Copy(ret_var_base + fi, var(f.id, *v)));
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    // --- solve to fixpoint ---
    let mut pts: Vec<BitSet> = vec![BitSet::new(nlocs); total_vars];
    let mut contents: Vec<BitSet> = vec![BitSet::new(nlocs); nlocs];
    loop {
        let mut changed = false;
        for c in &constraints {
            match *c {
                Constraint::AddrOf(d, l) => {
                    changed |= pts[d].insert(l);
                }
                Constraint::Copy(d, s) => {
                    if d != s {
                        let (a, b) = index2(&mut pts, d, s);
                        changed |= a.union_with(b);
                    }
                }
                Constraint::Load(d, a) => {
                    let locs: Vec<usize> = pts[a].iter().collect();
                    for l in locs {
                        let (dst, src) = index2_slices(&mut pts, d, &contents, l);
                        changed |= dst.union_with(src);
                    }
                }
                Constraint::Store(a, v) => {
                    let locs: Vec<usize> = pts[a].iter().collect();
                    for l in locs {
                        let (dst, src) = index2_slices(&mut contents, l, &pts, v);
                        changed |= dst.union_with(src);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // --- per-function direct memory effect sets + call graph closure ---
    let mut effect: Vec<BitSet> = vec![BitSet::new(nlocs); nf];
    let mut effect_unknown = vec![false; nf];
    let mut calls: Vec<Vec<FuncId>> = vec![Vec::new(); nf];
    for f in &prog.funcs {
        let fi = f.id.index();
        for b in f.block_ids() {
            for op in &f.block(b).ops {
                if op.touches_memory() && !op.is_call() && !matches!(op.opcode, Opcode::Alloc) {
                    if let Operand::Reg(a) = op.srcs[0] {
                        let p = &pts[var(f.id, a)];
                        if p.is_empty() {
                            effect_unknown[fi] = true;
                        } else {
                            effect[fi].union_with(p);
                        }
                    } else if matches!(op.srcs[0], Operand::Global(_)) {
                        // direct global address as operand (possible after
                        // constant propagation)
                        if let Operand::Global(g) = op.srcs[0] {
                            effect[fi].insert(loc_global(g.index()));
                        }
                    } else if matches!(op.srcs[0], Operand::FrameAddr(_)) {
                        effect[fi].insert(loc_frame(fi));
                    } else {
                        effect_unknown[fi] = true;
                    }
                }
                if op.is_call() {
                    match op.srcs[0] {
                        Operand::FuncAddr(t) => calls[fi].push(t),
                        _ => calls[fi].extend(addr_taken.iter().copied()),
                    }
                }
            }
        }
    }
    loop {
        let mut changed = false;
        for fi in 0..nf {
            let callee_list = calls[fi].clone();
            for c in callee_list {
                if effect_unknown[c.index()] && !effect_unknown[fi] {
                    effect_unknown[fi] = true;
                    changed = true;
                }
                if c.index() == fi {
                    continue; // self-recursion: union with self is a no-op
                }
                let (dst, src) = index2(&mut effect, fi, c.index());
                changed |= dst.union_with(src);
            }
        }
        if !changed {
            break;
        }
    }

    // --- assign tags ---
    let mut stats = AliasStats {
        locations: nlocs,
        ..Default::default()
    };
    // Compute all (site, set) pairs first, then mutate the program.
    let mut sites: Vec<(usize, epic_ir::BlockId, usize, Option<Vec<u32>>)> = Vec::new();
    for f in &prog.funcs {
        let fi = f.id.index();
        for b in f.block_ids() {
            for (oi, op) in f.block(b).ops.iter().enumerate() {
                if !op.touches_memory() || matches!(op.opcode, Opcode::Alloc) {
                    continue;
                }
                let set = compute_set(
                    f,
                    op,
                    fi,
                    &pts,
                    &effect,
                    &effect_unknown,
                    &addr_taken,
                    nlocs,
                    loc_global,
                    loc_frame,
                    &var,
                );
                sites.push((fi, b, oi, set));
            }
        }
    }
    let mut resolved: HashMap<Vec<u32>, u32> = HashMap::new();
    for (fi, b, oi, set) in sites {
        let tag = match set {
            None => 0,
            Some(locs) => match resolved.get(&locs) {
                Some(&t) => t,
                None => {
                    let t = prog.add_alias_set(locs.clone());
                    resolved.insert(locs, t);
                    t
                }
            },
        };
        if tag == 0 {
            stats.unknown += 1;
        } else {
            stats.tagged += 1;
        }
        prog.funcs[fi].block_mut(b).ops[oi].mem_tag = tag;
    }
    stats
}

/// The alias-location set for one memory op, or `None` for "unknown".
#[allow(clippy::too_many_arguments)]
fn compute_set(
    f: &epic_ir::Function,
    op: &epic_ir::Op,
    fi: usize,
    pts: &[BitSet],
    effect: &[BitSet],
    effect_unknown: &[bool],
    addr_taken: &[FuncId],
    nlocs: usize,
    loc_global: impl Fn(usize) -> usize,
    loc_frame: impl Fn(usize) -> usize,
    var: &impl Fn(FuncId, epic_ir::Vreg) -> usize,
) -> Option<Vec<u32>> {
    if op.is_call() {
        let mut s = BitSet::new(nlocs);
        match op.srcs[0] {
            Operand::FuncAddr(t) => {
                if effect_unknown[t.index()] {
                    return None;
                }
                s.union_with(&effect[t.index()]);
            }
            _ => {
                for t in addr_taken {
                    if effect_unknown[t.index()] {
                        return None;
                    }
                    s.union_with(&effect[t.index()]);
                }
            }
        }
        return Some(s.iter().map(|l| l as u32).collect());
    }
    match op.srcs.first() {
        Some(Operand::Reg(a)) => {
            let p = &pts[var(f.id, *a)];
            if p.is_empty() {
                None
            } else {
                Some(p.iter().map(|l| l as u32).collect())
            }
        }
        Some(Operand::Global(g)) => Some(vec![loc_global(g.index()) as u32]),
        Some(Operand::FrameAddr(_)) => Some(vec![loc_frame(fi) as u32]),
        _ => None,
    }
}

/// Split-borrow two elements of one slice.
fn index2<T>(v: &mut [T], a: usize, b: usize) -> (&mut T, &T) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&mut lo[a], &hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&mut hi[0], &lo[b])
    }
}

/// Mutable element of one slice + shared element of another.
fn index2_slices<'a, T>(
    dst: &'a mut [T],
    di: usize,
    src: &'a [T],
    si: usize,
) -> (&'a mut T, &'a T) {
    (&mut dst[di], &src[si])
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::interp::{run as interp_run, InterpOptions};

    fn analyze(src: &str) -> Program {
        let mut prog = epic_lang::compile(src).unwrap();
        run(&mut prog);
        prog
    }

    fn mem_tags(prog: &Program, fname: &str) -> Vec<u32> {
        let f = prog.func(prog.func_by_name(fname).unwrap());
        let mut out = Vec::new();
        for b in f.block_ids() {
            for op in &f.block(b).ops {
                if op.touches_memory() && !matches!(op.opcode, Opcode::Alloc) {
                    out.push(op.mem_tag);
                }
            }
        }
        out
    }

    #[test]
    fn distinct_globals_do_not_conflict() {
        let prog = analyze(
            "global a: [int; 8];
             global b: [int; 8];
             fn main() { a[0] = 1; b[0] = 2; out(a[0]); }",
        );
        let tags = mem_tags(&prog, "main");
        assert_eq!(tags.len(), 3);
        assert!(tags.iter().all(|t| *t != 0), "all tagged: {tags:?}");
        // store to a vs store to b: disjoint
        assert!(!prog.tags_conflict(tags[0], tags[1]));
        // store to a vs load of a: conflict
        assert!(prog.tags_conflict(tags[0], tags[2]));
    }

    #[test]
    fn heap_allocations_are_distinguished() {
        let prog = analyze(
            "fn main() {
                 let p = alloc(8) as *int;
                 let q = alloc(8) as *int;
                 *p = 1; *q = 2;
                 out(*p);
             }",
        );
        let tags = mem_tags(&prog, "main");
        assert!(!prog.tags_conflict(tags[0], tags[1]));
        assert!(prog.tags_conflict(tags[0], tags[2]));
    }

    #[test]
    fn pointers_through_calls_conflate() {
        let prog = analyze(
            "global g: [int; 4];
             fn write(p: *int) { *p = 7; }
             fn main() { write(&g[0]); out(g[0]); }",
        );
        // the store in `write` must alias the load of g in main
        let wtags = mem_tags(&prog, "write");
        let mtags = mem_tags(&prog, "main");
        assert!(prog.tags_conflict(wtags[0], *mtags.last().unwrap()));
        // and the call op in main must conflict with the g load
        let main = prog.func(prog.func_by_name("main").unwrap());
        let call_tag = main
            .block_ids()
            .flat_map(|b| main.block(b).ops.clone())
            .find(|o| o.is_call())
            .unwrap()
            .mem_tag;
        assert!(prog.tags_conflict(call_tag, *mtags.last().unwrap()));
    }

    #[test]
    fn pure_call_conflicts_with_nothing() {
        let prog = analyze(
            "global g: int;
             fn pure_add(a: int, b: int) -> int { return a + b; }
             fn main() { g = 1; out(pure_add(g, 2)); }",
        );
        let main = prog.func(prog.func_by_name("main").unwrap());
        let call = main
            .block_ids()
            .flat_map(|b| main.block(b).ops.clone())
            .find(|o| o.is_call())
            .unwrap();
        assert_ne!(call.mem_tag, 0, "pure call should have a precise tag");
        let mtags = mem_tags(&prog, "main");
        // store to g does not conflict with pure call
        assert!(!prog.tags_conflict(call.mem_tag, mtags[0]));
    }

    #[test]
    fn integer_derived_address_stays_unknown() {
        let prog = analyze(
            "fn main() {
                 let x = 268435456;   // some absolute address as an int
                 let p = x as *int;
                 out(*p + 0);
             }",
        );
        // constant-derived load keeps tag 0 (wild)
        let tags = mem_tags(&prog, "main");
        assert!(tags.contains(&0));
    }

    #[test]
    fn analysis_does_not_change_semantics() {
        let src = "
            struct Node { next: *Node, v: int }
            fn main() {
                let h = alloc(16) as *Node;
                h.v = 1; h.next = alloc(16) as *Node;
                h.next.v = 41; h.next.next = 0 as *Node;
                let s = 0; let p = h;
                while p as int != 0 { s = s + p.v; p = p.next; }
                out(s);
            }";
        let prog0 = epic_lang::compile(src).unwrap();
        let want = interp_run(&prog0, &[], InterpOptions::default()).unwrap();
        let prog = analyze(src);
        let got = interp_run(&prog, &[], InterpOptions::default()).unwrap();
        assert_eq!(got.output, want.output);
        assert_eq!(got.output, vec![42]);
    }
}
