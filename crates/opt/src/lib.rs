//! # epic-opt
//!
//! The "high-level" and classical phases of the IMPACT pipeline (paper
//! Fig. 4) for the EPIC reproduction:
//!
//! * [`profile`] — control-flow (and indirect-call-target) profiling via a
//!   training run of the reference interpreter;
//! * [`promote`] — profile-guided indirect-call promotion;
//! * [`inline`] — profile-guided procedure inlining
//!   (`priority = weight / sqrt(size)`, 1.6× growth budget);
//! * [`alias`] — interprocedural Andersen-style pointer analysis, recorded
//!   as per-op alias tags consumed by the scheduler;
//! * [`classical`] — value numbering, constant/copy propagation, dead code
//!   elimination, CFG simplification, loop-invariant code motion.
//!
//! The structural EPIC transformations (superblocks, hyperblocks, peeling,
//! speculation) live in `epic-core`.

pub mod alias;
pub mod classical;
pub mod inline;
pub mod profile;
pub mod promote;

/// Run the classical pipeline over every function of a program.
/// Returns total simplifications.
pub fn classical_optimize_program(prog: &mut epic_ir::Program) -> usize {
    let mut total = 0;
    for f in &mut prog.funcs {
        total += classical::optimize_function(f);
    }
    total
}
