//! Liveness-based dead code elimination.

use epic_ir::bitset::BitSet;
use epic_ir::liveness::Liveness;
use epic_ir::{Function, Opcode};

/// Remove ops with no side effects whose results are dead. Dead loads are
/// removed too (a correct program's loads never fault, so removing an
/// unused one is observation-free). Returns ops removed.
pub fn run(f: &mut Function) -> usize {
    let mut removed = 0;
    loop {
        let live = Liveness::compute(f);
        let mut pass_removed = 0;
        let blocks: Vec<_> = f.block_ids().collect();
        for b in blocks {
            let mut live_now: BitSet = live.live_out(b).clone();
            // Pre-compute side-exit live-ins: walking backward through an
            // extended block, each branch re-exposes its target's live-in
            // set (a later unguarded def must not hide values that escape
            // through an earlier side exit, e.g. loop back edges).
            let exit_liveins: Vec<Option<BitSet>> = f
                .block(b)
                .ops
                .iter()
                .map(|op| op.branch_target().map(|t| live.live_in(t).clone()))
                .collect();
            let ops = std::mem::take(&mut f.block_mut(b).ops);
            let mut kept = Vec::with_capacity(ops.len());
            for (op, exit_livein) in ops.into_iter().zip(exit_liveins).rev() {
                if let Some(li) = &exit_livein {
                    live_now.union_with(li);
                }
                let removable = !op.has_side_effects()
                    && !op.is_terminator()
                    && !matches!(op.opcode, Opcode::Nop)
                    && !op.dsts.is_empty()
                    && op.dsts.iter().all(|d| !live_now.contains(d.index()));
                if removable {
                    pass_removed += 1;
                    continue;
                }
                // Update running liveness: unguarded defs kill, uses gen.
                if op.guard.is_none() {
                    for d in op.defs() {
                        live_now.remove(d.index());
                    }
                }
                for u in op.uses() {
                    live_now.insert(u.index());
                }
                kept.push(op);
            }
            kept.reverse();
            f.block_mut(b).ops = kept;
        }
        removed += pass_removed;
        if pass_removed == 0 {
            return removed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::builder::FuncBuilder;
    use epic_ir::{BlockId, FuncId, MemSize, Operand};

    #[test]
    fn removes_dead_chains() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let x = b.mov(1i64);
        let y = b.binop(Opcode::Add, x, 2i64); // dead
        let _z = b.binop(Opcode::Mul, y, y); // dead
        let w = b.mov(5i64);
        b.out(w);
        b.ret(None);
        let mut f = b.finish();
        let n = run(&mut f);
        assert_eq!(n, 3);
        let kinds: Vec<_> = f.block(BlockId(0)).ops.iter().map(|o| o.opcode).collect();
        assert_eq!(kinds, vec![Opcode::Mov, Opcode::Out, Opcode::Ret]);
    }

    #[test]
    fn keeps_side_effects() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let slot = b.frame_alloc(8);
        b.store(MemSize::B8, Operand::FrameAddr(slot), 1i64);
        let _dead_call = b.call(Operand::FuncAddr(FuncId(0)), &[]);
        b.ret(None);
        let mut f = b.finish();
        run(&mut f);
        let kinds: Vec<_> = f.block(BlockId(0)).ops.iter().map(|o| o.opcode).collect();
        assert!(kinds.contains(&Opcode::St(MemSize::B8)));
        assert!(kinds.contains(&Opcode::Call));
    }

    #[test]
    fn removes_dead_load() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let slot = b.frame_alloc(8);
        let _v = b.load(MemSize::B8, Operand::FrameAddr(slot));
        b.ret(None);
        let mut f = b.finish();
        assert_eq!(run(&mut f), 1);
    }

    /// Regression: a superblock-shaped self-loop with a mid-block back
    /// edge followed by an unguarded redefinition. The induction update
    /// escapes through the side exit and must survive, even though a later
    /// def kills it on the fall-through path.
    #[test]
    fn keeps_values_escaping_through_side_exits() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let body = b.block();
        let tail = b.block();
        let i = b.vreg();
        b.mov_to(i, 0i64);
        b.br(body);
        b.switch_to(body);
        let i2 = b.binop(Opcode::Add, i, 1i64);
        b.mov_to(i, i2); // loop-carried update: must NOT be removed
        let p = b.cmp(epic_ir::CmpKind::SLt, i2, 10i64);
        b.brc(p, body); // side exit (back edge) mid-block
        b.mov_to(i, 0i64); // unguarded redefinition after the branch
        b.out(i);
        b.br(tail);
        b.switch_to(tail);
        b.ret(None);
        let mut f = b.finish();
        run(&mut f);
        let has_update =
            f.block(body).ops.iter().any(|o| {
                o.opcode == Opcode::Mov && o.defs() == [i] && o.srcs[0] == Operand::Reg(i2)
            });
        assert!(has_update, "loop-carried update was removed:\n{f}");
        // and the program still terminates with the right output
        let mut prog = epic_ir::Program::new();
        prog.add_func("main");
        f.name = "main".into();
        prog.funcs[0] = f;
        let r = epic_ir::interp::run(
            &prog,
            &[],
            epic_ir::interp::InterpOptions {
                fuel: 100_000,
                collect_profile: false,
            },
        )
        .unwrap();
        assert_eq!(r.output, vec![0]);
    }

    #[test]
    fn keeps_loop_carried_values() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let body = b.block();
        let exit = b.block();
        let i = b.vreg();
        b.mov_to(i, 0i64);
        b.br(body);
        b.switch_to(body);
        b.binop_to(i, Opcode::Add, i, 1i64);
        let p = b.cmp(epic_ir::CmpKind::SLt, i, 10i64);
        b.brc(p, body);
        b.br(exit);
        b.switch_to(exit);
        b.out(i);
        b.ret(None);
        let mut f = b.finish();
        assert_eq!(run(&mut f), 0);
    }
}
