//! Global (function-wide) constant and copy propagation for single-def
//! virtual registers, with dominance-checked substitution.
//!
//! Non-SSA Lcode mostly consists of single-definition temporaries; for a
//! register with exactly one unguarded definition, a use may be rewritten
//! to the definition's source when the definition dominates the use.

use epic_ir::dom::DomTree;
use epic_ir::{BlockId, Function, Opcode, Operand, Vreg};
use std::collections::HashMap;

#[derive(Clone, Copy)]
enum DefInfo {
    /// No definition seen yet.
    None,
    /// Exactly one unguarded def at (block, op index), a `Mov` from `src`.
    OneMov(BlockId, usize, Operand),
    /// One def but not a copy, or multiple defs, or guarded defs.
    Other,
}

/// Run propagation; returns the number of operands rewritten.
pub fn run(f: &mut Function) -> usize {
    let dom = DomTree::compute(f);
    // 1. Find single-def Mov registers.
    let mut defs: HashMap<Vreg, DefInfo> = HashMap::new();
    for b in f.block_ids() {
        for (i, op) in f.block(b).ops.iter().enumerate() {
            for &d in op.defs() {
                let e = defs.entry(d).or_insert(DefInfo::None);
                *e = match (&e, op.opcode, op.guard) {
                    (DefInfo::None, Opcode::Mov, None) => DefInfo::OneMov(b, i, op.srcs[0]),
                    _ => DefInfo::Other,
                };
            }
        }
    }
    // Params are implicitly defined at entry.
    for &p in &f.params {
        defs.insert(p, DefInfo::Other);
    }
    // 2. Rewrite dominated uses. A copy `v = Mov u` can forward `u` only if
    //    `u` itself is not redefined between def and use; we conservatively
    //    require `u` to have no definition other than possibly one that
    //    dominates the copy — simplest sound rule: forward only immutable
    //    operands (constants, addresses) or registers with no defs at all
    //    after their single def... Here: forward constants/addresses always;
    //    forward a register source only if that register has *no* unguarded
    //    redefinition anywhere except a single def (i.e. it is itself a
    //    single-def or param-only register).
    let single_or_param: HashMap<Vreg, bool> = {
        let mut counts: HashMap<Vreg, usize> = HashMap::new();
        for b in f.block_ids() {
            for op in &f.block(b).ops {
                for &d in op.defs() {
                    *counts.entry(d).or_insert(0) += 1;
                }
            }
        }
        let mut m = HashMap::new();
        for (&v, &c) in &counts {
            m.insert(v, c <= 1 && !f.params.contains(&v));
        }
        for &p in &f.params {
            m.insert(p, counts.get(&p).copied().unwrap_or(0) == 0);
        }
        m
    };
    let forwardable = |src: &Operand| -> bool {
        match src {
            Operand::Imm(_) | Operand::Global(_) | Operand::FuncAddr(_) | Operand::FrameAddr(_) => {
                true
            }
            Operand::Reg(u) => single_or_param.get(u).copied().unwrap_or(false),
            Operand::Label(_) => false,
        }
    };
    let mut rewrites = 0;
    let blocks: Vec<_> = f.block_ids().collect();
    for b in blocks {
        let nops = f.block(b).ops.len();
        for i in 0..nops {
            // Collect replacements first (immutable pass), then apply.
            let mut replace: Vec<(usize, Operand)> = Vec::new(); // src index
            let mut guard_replace: Option<Operand> = None;
            {
                let op = &f.block(b).ops[i];
                for (si, s) in op.srcs.iter().enumerate() {
                    if let Operand::Reg(v) = s {
                        if let Some(DefInfo::OneMov(db, di, src)) = defs.get(v) {
                            let dominates =
                                (*db == b && *di < i) || (*db != b && dom.dominates(*db, b));
                            if dominates && forwardable(src) {
                                replace.push((si, *src));
                            }
                        }
                    }
                }
                if let Some(g) = op.guard {
                    if let Some(DefInfo::OneMov(db, di, src)) = defs.get(&g) {
                        let dominates =
                            (*db == b && *di < i) || (*db != b && dom.dominates(*db, b));
                        if dominates && forwardable(src) {
                            guard_replace = Some(*src);
                        }
                    }
                }
            }
            if replace.is_empty() && guard_replace.is_none() {
                continue;
            }
            let op = &mut f.block_mut(b).ops[i];
            for (si, src) in replace {
                op.srcs[si] = src;
                rewrites += 1;
            }
            match guard_replace {
                Some(Operand::Reg(u)) => {
                    op.guard = Some(u);
                    rewrites += 1;
                }
                // guard constant 0 is left for DCE/LVN to kill
                Some(Operand::Imm(c)) if c != 0 => {
                    op.guard = None;
                    rewrites += 1;
                }
                _ => {}
            }
        }
    }
    rewrites
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::builder::FuncBuilder;
    use epic_ir::FuncId;

    #[test]
    fn propagates_constant_across_blocks() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let nextb = b.block();
        let x = b.mov(7i64);
        b.br(nextb);
        b.switch_to(nextb);
        b.out(x);
        b.ret(None);
        let mut f = b.finish();
        assert!(run(&mut f) > 0);
        let out = &f.block(nextb).ops[0];
        assert_eq!(out.srcs[0], Operand::Imm(7));
    }

    #[test]
    fn does_not_propagate_multi_def() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let nextb = b.block();
        let x = b.vreg();
        b.mov_to(x, 7i64);
        b.mov_to(x, 8i64);
        b.br(nextb);
        b.switch_to(nextb);
        b.out(x);
        b.ret(None);
        let mut f = b.finish();
        run(&mut f);
        let out = &f.block(nextb).ops[0];
        assert_eq!(out.srcs[0], Operand::Reg(x));
    }

    #[test]
    fn does_not_forward_mutable_register_source() {
        // y = Mov x; x = Mov 9; out(y)  — must NOT become out(x)
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let x = b.vreg();
        b.mov_to(x, 1i64);
        let y = b.mov(Operand::Reg(x));
        b.mov_to(x, 9i64);
        b.out(y);
        b.ret(None);
        let mut f = b.finish();
        run(&mut f);
        let out = f
            .block(BlockId(0))
            .ops
            .iter()
            .find(|o| o.opcode == Opcode::Out)
            .unwrap();
        // x has two defs, so y's source is not forwardable; and y itself is
        // single-def so out(y) may have been rewritten only to something
        // equal to y. It must not be x.
        assert_ne!(out.srcs[0], Operand::Reg(x));
    }

    #[test]
    fn respects_dominance() {
        // def in a branch arm must not propagate into the join
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let arm = b.block();
        let join = b.block();
        let p = b.param();
        let x = b.vreg();
        b.mov_to(x, 0i64);
        b.brc(p, arm);
        b.br(join);
        b.switch_to(arm);
        let y = b.mov(5i64); // single def, but only dominates `arm`
        b.mov_to(x, y);
        b.br(join);
        b.switch_to(join);
        b.out(y); // y not dominated here? actually arm dominates nothing else
        b.ret(None);
        let mut f = b.finish();
        run(&mut f);
        let out = &f.block(join).ops[0];
        assert_eq!(out.srcs[0], Operand::Reg(y), "must not substitute 5");
    }
}
