//! Classical (non-EPIC) optimizations, as in the paper's "Classical
//! optimization" phase of Fig. 4: value numbering, constant/copy
//! propagation, dead code elimination, CFG simplification, and
//! loop-invariant code motion.

pub mod cfg;
pub mod dce;
pub mod gprop;
pub mod licm;
pub mod lvn;

use epic_ir::Function;

/// Run the classical pipeline to (approximate) fixpoint on one function.
/// Returns the total number of simplifications applied.
pub fn optimize_function(f: &mut Function) -> usize {
    let mut total = 0;
    for _round in 0..4 {
        let mut changed = 0;
        changed += lvn::run(f);
        changed += gprop::run(f);
        changed += dce::run(f);
        changed += cfg::run(f);
        total += changed;
        if changed == 0 {
            break;
        }
    }
    total += licm::run(f);
    total += lvn::run(f);
    total += dce::run(f);
    total += cfg::run(f);
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::interp::{run as interp_run, InterpOptions};
    use epic_ir::verify::verify_program;

    /// End-to-end: classical optimization must preserve MiniC semantics.
    #[test]
    fn preserves_semantics_on_minic_program() {
        let src = "
            global tab: [int; 32];
            fn mix(a: int, b: int) -> int {
                let x = a * 8;
                let y = a * 8;        // CSE fodder
                if b > 0 { x = x + b; }
                return x + y;
            }
            fn main() {
                let i = 0;
                while i < 32 {
                    tab[i] = mix(i, i - 16);
                    i = i + 1;
                }
                let s = 0;
                i = 0;
                while i < 32 { s = s + tab[i]; i = i + 1; }
                out(s);
            }";
        let prog0 = epic_lang::compile(src).unwrap();
        let want = interp_run(&prog0, &[], InterpOptions::default()).unwrap();
        let mut prog = prog0.clone();
        let mut simplified = 0;
        for f in &mut prog.funcs {
            simplified += optimize_function(f);
        }
        assert!(simplified > 0, "expected some simplification");
        verify_program(&prog).unwrap();
        let got = interp_run(&prog, &[], InterpOptions::default()).unwrap();
        assert_eq!(got.output, want.output);
        assert!(
            got.ops_executed < want.ops_executed,
            "optimization should reduce dynamic ops: {} -> {}",
            want.ops_executed,
            got.ops_executed
        );
    }
}
