//! Local value numbering: per-block CSE, constant folding, copy
//! propagation, and algebraic simplification.

use epic_ir::{CmpKind, Function, Op, Opcode, Operand, Vreg};
use std::collections::HashMap;

/// A value number.
type Vn = u32;

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Key {
    Const(i64),
    Global(u32),
    FuncAddr(u32),
    FrameAddr(u64),
    /// Pure expression over value numbers.
    Expr(OpKey, Vec<Vn>),
    /// An opaque, unknown value (loads, call results, params, ...).
    Opaque(u32),
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum OpKey {
    Alu(OpcodeTag),
    Cmp(CmpKind),
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum OpcodeTag {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Sar,
}

fn tag(op: Opcode) -> Option<OpcodeTag> {
    Some(match op {
        Opcode::Add => OpcodeTag::Add,
        Opcode::Sub => OpcodeTag::Sub,
        Opcode::Mul => OpcodeTag::Mul,
        Opcode::And => OpcodeTag::And,
        Opcode::Or => OpcodeTag::Or,
        Opcode::Xor => OpcodeTag::Xor,
        Opcode::Shl => OpcodeTag::Shl,
        Opcode::Shr => OpcodeTag::Shr,
        Opcode::Sar => OpcodeTag::Sar,
        _ => return None,
    })
}

struct Numbering {
    next: Vn,
    next_opaque: u32,
    keys: HashMap<Key, Vn>,
    /// vn -> constant, when known.
    consts: HashMap<Vn, i64>,
    /// vn -> a register currently holding it (for copy prop / CSE reuse).
    rep: HashMap<Vn, Vreg>,
    /// register -> its current vn.
    reg_vn: HashMap<Vreg, Vn>,
}

impl Numbering {
    fn new() -> Numbering {
        Numbering {
            next: 0,
            next_opaque: 0,
            keys: HashMap::new(),
            consts: HashMap::new(),
            rep: HashMap::new(),
            reg_vn: HashMap::new(),
        }
    }

    fn vn_of_key(&mut self, k: Key) -> Vn {
        if let Some(&v) = self.keys.get(&k) {
            return v;
        }
        let v = self.next;
        self.next += 1;
        if let Key::Const(c) = k {
            self.consts.insert(v, c);
        }
        self.keys.insert(k, v);
        v
    }

    fn fresh(&mut self) -> Vn {
        let o = self.next_opaque;
        self.next_opaque += 1;
        self.vn_of_key(Key::Opaque(o))
    }

    fn vn_of_reg(&mut self, r: Vreg) -> Vn {
        if let Some(&v) = self.reg_vn.get(&r) {
            return v;
        }
        let v = self.fresh();
        self.reg_vn.insert(r, v);
        // an incoming register is a valid representative of its own value
        self.rep.entry(v).or_insert(r);
        v
    }

    fn vn_of_operand(&mut self, o: &Operand) -> Vn {
        match *o {
            Operand::Reg(r) => self.vn_of_reg(r),
            Operand::Imm(c) => self.vn_of_key(Key::Const(c)),
            Operand::Global(g) => self.vn_of_key(Key::Global(g.0)),
            Operand::FuncAddr(f) => self.vn_of_key(Key::FuncAddr(f.0)),
            Operand::FrameAddr(a) => self.vn_of_key(Key::FrameAddr(a)),
            Operand::Label(_) => self.fresh(),
        }
    }

    /// Record that `r` now holds `vn`, making it the representative if none.
    fn set_reg(&mut self, r: Vreg, vn: Vn) {
        // drop stale representative status
        if let Some(&old) = self.reg_vn.get(&r) {
            if self.rep.get(&old) == Some(&r) {
                self.rep.remove(&old);
            }
        }
        self.reg_vn.insert(r, vn);
        self.rep.entry(vn).or_insert(r);
    }

    /// Kill the value of `r` (guarded def, call result, ...).
    fn clobber(&mut self, r: Vreg) {
        let vn = self.fresh();
        self.set_reg(r, vn);
    }
}

/// Run LVN over every block of `f`. Returns the number of ops simplified
/// (folded, propagated, or CSE'd).
pub fn run(f: &mut Function) -> usize {
    let mut changed = 0;
    let blocks: Vec<_> = f.block_ids().collect();
    for b in blocks {
        let mut n = Numbering::new();
        let ops = std::mem::take(&mut f.block_mut(b).ops);
        let mut out = Vec::with_capacity(ops.len());
        for mut op in ops {
            // 1. Substitute operands: known constants or representatives.
            for s in &mut op.srcs {
                if let Operand::Reg(r) = *s {
                    let vn = n.vn_of_reg(r);
                    if let Some(&c) = n.consts.get(&vn) {
                        *s = Operand::Imm(c);
                        changed += 1;
                    } else if let Some(&rep) = n.rep.get(&vn) {
                        if rep != r {
                            *s = Operand::Reg(rep);
                            changed += 1;
                        }
                    }
                }
            }
            if let Some(g) = op.guard {
                let vn = n.vn_of_reg(g);
                if let Some(&rep) = n.rep.get(&vn) {
                    if rep != g {
                        op.guard = Some(rep);
                        changed += 1;
                    }
                }
                // guard known constant
                if let Some(&c) = n.consts.get(&vn) {
                    if c != 0 {
                        op.guard = None;
                        changed += 1;
                    } else {
                        // op can never execute
                        changed += 1;
                        continue;
                    }
                }
            }
            // 2. Try to fold / simplify pure ops.
            if op.guard.is_none() {
                if let Some(simplified) = simplify(&op) {
                    op = simplified;
                    changed += 1;
                }
            }
            // 3. Value-number the result.
            match op.opcode {
                Opcode::Mov => {
                    let vn = n.vn_of_operand(&op.srcs[0]);
                    if op.guard.is_none() {
                        n.set_reg(op.dsts[0], vn);
                    } else {
                        n.clobber(op.dsts[0]);
                    }
                    out.push(op);
                }
                _ if op.opcode.is_pure() && op.guard.is_none() => {
                    let vns: Vec<Vn> = op.srcs.iter().map(|s| n.vn_of_operand(s)).collect();
                    let key = match op.opcode {
                        Opcode::Cmp(k) => {
                            if op.dsts.len() == 1 {
                                Some(Key::Expr(OpKey::Cmp(k), vns.clone()))
                            } else {
                                None // two-dest compares are not CSE'd
                            }
                        }
                        o => tag(o).map(|t| {
                            let mut vs = vns.clone();
                            // commutative ops: canonical operand order
                            if matches!(
                                t,
                                OpcodeTag::Add
                                    | OpcodeTag::Mul
                                    | OpcodeTag::And
                                    | OpcodeTag::Or
                                    | OpcodeTag::Xor
                            ) {
                                vs.sort_unstable();
                            }
                            Key::Expr(OpKey::Alu(t), vs)
                        }),
                    };
                    match key {
                        Some(key) => {
                            let prior = n.keys.get(&key).copied();
                            let vn = n.vn_of_key(key);
                            if let (Some(_), Some(&rep)) = (prior, n.rep.get(&vn)) {
                                // CSE: replace with a copy from the rep.
                                let dst = op.dsts[0];
                                let mut mv =
                                    Op::new(op.id, Opcode::Mov, vec![dst], vec![Operand::Reg(rep)]);
                                mv.weight = op.weight;
                                n.set_reg(dst, vn);
                                out.push(mv);
                                changed += 1;
                                continue;
                            }
                            n.set_reg(op.dsts[0], vn);
                            out.push(op);
                        }
                        None => {
                            for d in op.dsts.clone() {
                                n.clobber(d);
                            }
                            out.push(op);
                        }
                    }
                }
                _ => {
                    for d in op.dsts.clone() {
                        n.clobber(d);
                    }
                    out.push(op);
                }
            }
        }
        f.block_mut(b).ops = out;
    }
    changed
}

/// Constant folding and algebraic identities for an unguarded op with
/// already-substituted operands. Returns a replacement op if simpler.
fn simplify(op: &Op) -> Option<Op> {
    let imm = |i: usize| op.srcs.get(i).and_then(|s| s.imm());
    let mk_mov = |src: Operand| {
        let mut m = Op::new(op.id, Opcode::Mov, vec![op.dsts[0]], vec![src]);
        m.weight = op.weight;
        Some(m)
    };
    match op.opcode {
        Opcode::Add
        | Opcode::Sub
        | Opcode::Mul
        | Opcode::And
        | Opcode::Or
        | Opcode::Xor
        | Opcode::Shl
        | Opcode::Shr
        | Opcode::Sar => {
            let (a, b) = (imm(0), imm(1));
            if let (Some(a), Some(b)) = (a, b) {
                let r = fold_alu(op.opcode, a as u64, b as u64);
                return mk_mov(Operand::Imm(r as i64));
            }
            // identities with rhs constant
            if let Some(b) = b {
                match (op.opcode, b) {
                    (Opcode::Add | Opcode::Sub | Opcode::Or | Opcode::Xor, 0)
                    | (Opcode::Shl | Opcode::Shr | Opcode::Sar, 0)
                    | (Opcode::Mul, 1) => return mk_mov(op.srcs[0]),
                    (Opcode::Mul, 0) | (Opcode::And, 0) => return mk_mov(Operand::Imm(0)),
                    (Opcode::Mul, c) if c > 1 && (c as u64).is_power_of_two() => {
                        let mut m = Op::new(
                            op.id,
                            Opcode::Shl,
                            vec![op.dsts[0]],
                            vec![op.srcs[0], Operand::Imm((c as u64).trailing_zeros() as i64)],
                        );
                        m.weight = op.weight;
                        return Some(m);
                    }
                    _ => {}
                }
            }
            // identities with lhs constant
            if let Some(a) = a {
                match (op.opcode, a) {
                    (Opcode::Add | Opcode::Or | Opcode::Xor, 0) => return mk_mov(op.srcs[1]),
                    (Opcode::Mul, 0) | (Opcode::And, 0) => return mk_mov(Operand::Imm(0)),
                    (Opcode::Mul, 1) => return mk_mov(op.srcs[1]),
                    _ => {}
                }
            }
            None
        }
        Opcode::Div | Opcode::Rem => {
            let (a, b) = (imm(0), imm(1));
            if let (Some(a), Some(b)) = (a, b) {
                if b != 0 {
                    let r = if matches!(op.opcode, Opcode::Div) {
                        a.wrapping_div(b)
                    } else {
                        a.wrapping_rem(b)
                    };
                    return mk_mov(Operand::Imm(r));
                }
            }
            if imm(1) == Some(1) && matches!(op.opcode, Opcode::Div) {
                return mk_mov(op.srcs[0]);
            }
            None
        }
        Opcode::Cmp(kind) => {
            if op.dsts.len() != 1 {
                return None;
            }
            let (a, b) = (imm(0), imm(1));
            if let (Some(a), Some(b)) = (a, b) {
                return mk_mov(Operand::Imm(kind.eval(a as u64, b as u64) as i64));
            }
            None
        }
        _ => None,
    }
}

fn fold_alu(opcode: Opcode, a: u64, b: u64) -> u64 {
    match opcode {
        Opcode::Add => a.wrapping_add(b),
        Opcode::Sub => a.wrapping_sub(b),
        Opcode::Mul => a.wrapping_mul(b),
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Shl => a << (b & 63),
        Opcode::Shr => a >> (b & 63),
        Opcode::Sar => ((a as i64) >> (b & 63)) as u64,
        _ => unreachable!("non-ALU fold"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::builder::FuncBuilder;
    use epic_ir::{BlockId, FuncId};

    fn ops(f: &Function) -> Vec<Opcode> {
        f.block(BlockId(0)).ops.iter().map(|o| o.opcode).collect()
    }

    #[test]
    fn folds_constants_transitively() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let x = b.mov(2i64);
        let y = b.binop(Opcode::Add, x, 3i64);
        let z = b.binop(Opcode::Mul, y, y);
        b.out(z);
        b.ret(None);
        let mut f = b.finish();
        run(&mut f);
        // out's operand must now be the constant 25
        let out_op = &f.block(BlockId(0)).ops[3];
        assert_eq!(out_op.opcode, Opcode::Out);
        assert_eq!(out_op.srcs[0], Operand::Imm(25));
    }

    #[test]
    fn cse_reuses_computation() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let p = b.param();
        let q = b.param();
        let x = b.binop(Opcode::Add, p, q);
        let y = b.binop(Opcode::Add, p, q);
        let z = b.binop(Opcode::Sub, x, y);
        b.out(z);
        b.ret(None);
        let mut f = b.finish();
        run(&mut f);
        // second Add becomes Mov; Sub of equal vns still runs (we don't
        // do x - x = 0 across vns, but after copy prop both srcs match).
        let kinds = ops(&f);
        assert_eq!(
            kinds.iter().filter(|o| **o == Opcode::Add).count(),
            1,
            "one Add should remain: {kinds:?}"
        );
        assert!(kinds.contains(&Opcode::Mov));
    }

    #[test]
    fn commutative_cse() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let p = b.param();
        let q = b.param();
        let x = b.binop(Opcode::Add, p, q);
        let y = b.binop(Opcode::Add, q, p);
        b.out(x);
        b.out(y);
        b.ret(None);
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(ops(&f).iter().filter(|o| **o == Opcode::Add).count(), 1);
    }

    #[test]
    fn strength_reduction_mul_to_shl() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let p = b.param();
        let x = b.binop(Opcode::Mul, p, 8i64);
        b.out(x);
        b.ret(None);
        let mut f = b.finish();
        run(&mut f);
        assert!(ops(&f).contains(&Opcode::Shl));
        assert!(!ops(&f).contains(&Opcode::Mul));
    }

    #[test]
    fn constant_guard_resolution() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let t = b.mov(1i64);
        let z = b.mov(0i64);
        let mut op1 = epic_ir::Op::new(
            epic_ir::OpId(0),
            Opcode::Mov,
            vec![b.vreg()],
            vec![Operand::Imm(5)],
        );
        op1.guard = Some(t);
        b.push(op1);
        let mut op2 =
            epic_ir::Op::new(epic_ir::OpId(0), Opcode::Out, vec![], vec![Operand::Imm(9)]);
        op2.guard = Some(z);
        b.push(op2);
        b.ret(None);
        let mut f = b.finish();
        run(&mut f);
        let blk = f.block(BlockId(0));
        // guarded-true op lost its guard; guarded-false op vanished
        assert!(blk.ops.iter().all(|o| o.guard.is_none()));
        assert!(!blk.ops.iter().any(|o| o.opcode == Opcode::Out));
    }

    #[test]
    fn does_not_fold_div_by_zero() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let x = b.binop(Opcode::Div, 5i64, 0i64);
        b.out(x);
        b.ret(None);
        let mut f = b.finish();
        run(&mut f);
        assert!(ops(&f).contains(&Opcode::Div));
    }

    #[test]
    fn guarded_def_clobbers_value() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let p = b.param();
        let x = b.mov(3i64);
        let mut g = epic_ir::Op::new(
            epic_ir::OpId(0),
            Opcode::Mov,
            vec![x],
            vec![Operand::Imm(4)],
        );
        g.guard = Some(p);
        b.push(g);
        b.out(x); // must NOT fold to 3
        b.ret(None);
        let mut f = b.finish();
        run(&mut f);
        let out_op = f
            .block(BlockId(0))
            .ops
            .iter()
            .find(|o| o.opcode == Opcode::Out)
            .unwrap();
        assert_eq!(out_op.srcs[0], Operand::Reg(x));
    }
}
