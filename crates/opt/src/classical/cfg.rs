//! CFG simplification: constant-branch folding, jump threading, and
//! straight-line block merging.

use epic_ir::{BlockId, Function, Opcode, Operand};

/// Run all CFG simplifications to fixpoint. Returns blocks eliminated.
pub fn run(f: &mut Function) -> usize {
    let mut total = 0;
    loop {
        let mut changed = 0;
        changed += fold_constant_branches(f);
        changed += thread_jumps(f);
        changed += merge_blocks(f);
        changed += f.remove_unreachable();
        if changed == 0 {
            return total;
        }
        total += changed;
    }
}

/// Branches whose guard LVN/gprop resolved away: a guard-free `Br` mid-block
/// makes everything after it dead; remove the trailing ops.
fn fold_constant_branches(f: &mut Function) -> usize {
    let mut changed = 0;
    let blocks: Vec<_> = f.block_ids().collect();
    for b in blocks {
        let ops = &mut f.block_mut(b).ops;
        if let Some(pos) = ops.iter().position(|o| o.is_terminator()) {
            if pos + 1 < ops.len() {
                ops.truncate(pos + 1);
                changed += 1;
            }
        }
    }
    changed
}

/// Retarget branches that jump to a block containing only an unconditional
/// branch.
fn thread_jumps(f: &mut Function) -> usize {
    let mut changed = 0;
    // trampoline: block -> final destination
    let mut dest: Vec<Option<BlockId>> = vec![None; f.blocks.len()];
    for b in f.block_ids() {
        let blk = f.block(b);
        if blk.ops.len() == 1 && blk.ops[0].opcode == Opcode::Br && blk.ops[0].guard.is_none() {
            let t = blk.ops[0].branch_target().expect("verified branch");
            if t != b {
                dest[b.index()] = Some(t);
            }
        }
    }
    // collapse chains (with cycle guard)
    let resolve = |mut b: BlockId, dest: &[Option<BlockId>]| -> BlockId {
        let mut hops = 0;
        while let Some(next) = dest[b.index()] {
            b = next;
            hops += 1;
            if hops > dest.len() {
                break; // trampoline cycle: infinite loop in source program
            }
        }
        b
    };
    let blocks: Vec<_> = f.block_ids().collect();
    for b in blocks {
        let nops = f.block(b).ops.len();
        for i in 0..nops {
            let op = &f.block(b).ops[i];
            if let Some(t) = op.branch_target() {
                let final_t = resolve(t, &dest);
                if final_t != t {
                    f.block_mut(b).ops[i].srcs[0] = Operand::Label(final_t);
                    changed += 1;
                }
            }
        }
    }
    // entry may itself be a trampoline; redirect entry
    if let Some(t) = dest[f.entry.index()] {
        let final_t = resolve(t, &dest);
        // keep entry as a real block only if targeted; simplest: leave it,
        // merge_blocks may fold it.
        let _ = final_t;
    }
    changed
}

/// Merge `b -> c` when `b` ends in an unconditional branch to `c` and `c`
/// has exactly one predecessor.
fn merge_blocks(f: &mut Function) -> usize {
    let mut changed = 0;
    loop {
        let preds = f.preds();
        let mut merged = false;
        let blocks: Vec<_> = f.block_ids().collect();
        for b in blocks {
            let blk = f.block(b);
            let Some(last) = blk.ops.last() else { continue };
            if last.opcode != Opcode::Br || last.guard.is_some() {
                continue;
            }
            let c = last.branch_target().expect("verified branch");
            if c == b || c == f.entry || preds[c.index()].len() != 1 {
                continue;
            }
            // also require no other branch in b targets c? preds counts
            // blocks, not edges; check b has a single edge to c:
            let edges_to_c = f
                .block(b)
                .ops
                .iter()
                .filter(|o| o.branch_target() == Some(c))
                .count();
            if edges_to_c != 1 {
                continue;
            }
            let mut tail = std::mem::take(&mut f.block_mut(c).ops);
            let c_origin = f.block(c).origin;
            f.block_mut(c).removed = true;
            // keep duplication provenance for I-cache attribution
            if f.block(b).origin == epic_ir::BlockOrigin::Original {
                f.block_mut(b).origin = c_origin;
            }
            let bops = &mut f.block_mut(b).ops;
            bops.pop(); // the Br
            bops.append(&mut tail);
            changed += 1;
            merged = true;
            break; // preds are stale; restart
        }
        if !merged {
            return changed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::builder::FuncBuilder;
    use epic_ir::verify::verify_function;
    use epic_ir::FuncId;

    #[test]
    fn merges_straight_line() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let b1 = b.block();
        let b2 = b.block();
        b.out(1i64);
        b.br(b1);
        b.switch_to(b1);
        b.out(2i64);
        b.br(b2);
        b.switch_to(b2);
        b.out(3i64);
        b.ret(None);
        let mut f = b.finish();
        run(&mut f);
        verify_function(&f).unwrap();
        assert_eq!(f.block_ids().count(), 1);
        let outs = f
            .block(f.entry)
            .ops
            .iter()
            .filter(|o| o.opcode == Opcode::Out)
            .count();
        assert_eq!(outs, 3);
    }

    #[test]
    fn threads_trampolines() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let tramp = b.block();
        let real = b.block();
        let p = b.param();
        b.brc(p, tramp);
        b.br(real);
        b.switch_to(tramp);
        b.br(real);
        b.switch_to(real);
        b.out(1i64);
        b.ret(None);
        let mut f = b.finish();
        run(&mut f);
        verify_function(&f).unwrap();
        // trampoline is gone
        assert!(f.blocks[tramp.index()].removed);
    }

    #[test]
    fn truncates_after_unconditional_branch() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let b1 = b.block();
        b.br(b1);
        // unreachable tail in the same block:
        b.out(9i64);
        b.br(b1);
        b.switch_to(b1);
        b.ret(None);
        let mut f = b.finish();
        run(&mut f);
        verify_function(&f).unwrap();
        assert!(f.block(f.entry).ops.iter().all(|o| o.opcode != Opcode::Out));
    }

    #[test]
    fn keeps_conditional_structure() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let t = b.block();
        let e = b.block();
        let p = b.param();
        b.brc(p, t);
        b.br(e);
        b.switch_to(t);
        b.out(1i64);
        b.ret(None);
        b.switch_to(e);
        b.out(2i64);
        b.ret(None);
        let mut f = b.finish();
        let n_before = f.block_ids().count();
        run(&mut f);
        verify_function(&f).unwrap();
        // diamond arms can merge into predecessors only where single-pred;
        // both arms have one pred (entry), but entry ends with guarded br
        // then uncond br to e: e merges into entry (e has 1 pred, entry's
        // terminator targets it once).
        assert!(f.block_ids().count() <= n_before);
    }
}
