//! Loop-invariant code motion for pure operations.
//!
//! An unguarded *pure* op may move to a loop preheader when every register
//! source is invariant (no definition inside the loop) and its destination
//! has no other definition anywhere in the function (so executing it
//! "early", even on a zero-trip path, only writes a register nobody else
//! defines — safe for pure ops).

use epic_ir::dom::DomTree;
use epic_ir::func::mk_br;
use epic_ir::loops::LoopForest;
use epic_ir::{BlockId, Function, Operand, Vreg};
use std::collections::{HashMap, HashSet};

/// Run LICM over all loops (innermost first). Returns ops hoisted.
pub fn run(f: &mut Function) -> usize {
    let mut hoisted = 0;
    // Recompute loop structure after each loop is processed (preheader
    // insertion changes block ids).
    loop {
        let dom = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dom);
        let mut did = false;
        for l in &forest.loops {
            let n = hoist_one_loop(f, &l.header, &l.body);
            if n > 0 {
                hoisted += n;
                did = true;
                break; // structures stale; restart
            }
        }
        if !did {
            return hoisted;
        }
    }
}

fn hoist_one_loop(f: &mut Function, header: &BlockId, body: &[BlockId]) -> usize {
    let in_loop: HashSet<BlockId> = body.iter().copied().collect();
    // defs inside the loop
    let mut loop_defs: HashSet<Vreg> = HashSet::new();
    // def counts across the whole function
    let mut def_counts: HashMap<Vreg, usize> = HashMap::new();
    for b in f.block_ids() {
        for op in &f.block(b).ops {
            for &d in op.defs() {
                *def_counts.entry(d).or_insert(0) += 1;
                if in_loop.contains(&b) {
                    loop_defs.insert(d);
                }
            }
        }
    }
    for &p in &f.params {
        *def_counts.entry(p).or_insert(0) += 1;
    }
    // Iterate: hoisting one op can make another invariant; collect in
    // program order per block until fixpoint within this loop.
    let mut to_hoist: Vec<epic_ir::Op> = Vec::new();
    let mut moved: HashSet<Vreg> = HashSet::new();
    loop {
        let mut found = false;
        for &b in body {
            let mut idx = 0;
            while idx < f.block(b).ops.len() {
                let op = &f.block(b).ops[idx];
                let candidate = op.guard.is_none()
                    && op.is_safely_speculable()
                    && op.dsts.len() == 1
                    && def_counts.get(&op.dsts[0]).copied().unwrap_or(0) == 1
                    && op.srcs.iter().all(|s| match s {
                        Operand::Reg(v) => !loop_defs.contains(v) || moved.contains(v),
                        _ => true,
                    });
                if candidate {
                    let op = f.block_mut(b).ops.remove(idx);
                    moved.insert(op.dsts[0]);
                    loop_defs.remove(&op.dsts[0]);
                    to_hoist.push(op);
                    found = true;
                } else {
                    idx += 1;
                }
            }
        }
        if !found {
            break;
        }
    }
    if to_hoist.is_empty() {
        return 0;
    }
    // Build (or reuse) a preheader: a new block that all *outside*
    // predecessors of the header are retargeted through.
    let n = to_hoist.len();
    let pre = f.add_block();
    f.blocks[pre.index()].origin = f.block(*header).origin;
    // weight: entries from outside
    let preds = f.preds();
    let mut outside_w = 0.0;
    for p in &preds[header.index()] {
        if !in_loop.contains(p) && *p != pre {
            outside_w += epic_ir::loops::edge_weight(f, *p, *header);
        }
    }
    // Retarget outside predecessors header -> pre.
    let pred_list = preds[header.index()].clone();
    for p in pred_list {
        if in_loop.contains(&p) {
            continue;
        }
        for op in &mut f.block_mut(p).ops {
            op.retarget(*header, pre);
        }
    }
    let mut ops = to_hoist;
    let br = mk_br(f.new_op_id(), *header);
    ops.push(br);
    let last = ops.len() - 1;
    ops[last].weight = outside_w;
    f.block_mut(pre).ops = ops;
    f.block_mut(pre).weight = outside_w;
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::builder::FuncBuilder;
    use epic_ir::verify::verify_function;
    use epic_ir::{CmpKind, FuncId, Opcode};

    /// sum += (a*b) each iteration; a*b is invariant and must leave the loop.
    #[test]
    fn hoists_invariant_multiply() {
        let mut bld = FuncBuilder::new(FuncId(0), "t");
        let a = bld.param();
        let b = bld.param();
        let body = bld.block();
        let exit = bld.block();
        let i = bld.vreg();
        let sum = bld.vreg();
        bld.mov_to(i, 0i64);
        bld.mov_to(sum, 0i64);
        bld.br(body);
        bld.switch_to(body);
        let prod = bld.binop(Opcode::Mul, a, b); // invariant
        bld.binop_to(sum, Opcode::Add, sum, prod);
        bld.binop_to(i, Opcode::Add, i, 1i64);
        let p = bld.cmp(CmpKind::SLt, i, 10i64);
        bld.brc(p, body);
        bld.br(exit);
        bld.switch_to(exit);
        bld.out(sum);
        bld.ret(None);
        let mut f = bld.finish();
        let hoisted = run(&mut f);
        assert_eq!(hoisted, 1);
        verify_function(&f).unwrap();
        // Mul no longer in the loop body
        assert!(f.block(body).ops.iter().all(|o| o.opcode != Opcode::Mul));
        // semantics preserved
        let mut prog = epic_ir::Program::new();
        prog.add_func("main");
        prog.funcs[0] = f;
        prog.funcs[0].name = "main".into();
        let r = epic_ir::interp::run(&prog, &[6, 7], Default::default()).unwrap();
        assert_eq!(r.output, vec![420]);
    }

    #[test]
    fn leaves_variant_ops() {
        let mut bld = FuncBuilder::new(FuncId(0), "t");
        let body = bld.block();
        let exit = bld.block();
        let i = bld.vreg();
        bld.mov_to(i, 0i64);
        bld.br(body);
        bld.switch_to(body);
        let sq = bld.binop(Opcode::Mul, i, i); // variant
        bld.out(sq);
        bld.binop_to(i, Opcode::Add, i, 1i64);
        let p = bld.cmp(CmpKind::SLt, i, 3i64);
        bld.brc(p, body);
        bld.br(exit);
        bld.switch_to(exit);
        bld.ret(None);
        let mut f = bld.finish();
        assert_eq!(run(&mut f), 0);
    }

    #[test]
    fn hoists_chains() {
        // t1 = a+1 (invariant); t2 = t1*2 (invariant after t1 moves)
        let mut bld = FuncBuilder::new(FuncId(0), "t");
        let a = bld.param();
        let body = bld.block();
        let exit = bld.block();
        let i = bld.vreg();
        bld.mov_to(i, 0i64);
        bld.br(body);
        bld.switch_to(body);
        let t1 = bld.binop(Opcode::Add, a, 1i64);
        let t2 = bld.binop(Opcode::Shl, t1, 1i64);
        bld.out(t2);
        bld.binop_to(i, Opcode::Add, i, 1i64);
        let p = bld.cmp(CmpKind::SLt, i, 2i64);
        bld.brc(p, body);
        bld.br(exit);
        bld.switch_to(exit);
        bld.ret(None);
        let mut f = bld.finish();
        assert_eq!(run(&mut f), 2);
        verify_function(&f).unwrap();
    }
}
