//! Property-style tests for the bundle packer, driven by the in-repo
//! seeded generator ([`epic_ir::testing::Rng`]) instead of proptest: any
//! op mix the scheduler's resource model admits must pack, every op must
//! appear exactly once, and slot order must respect branch segments.

use epic_ir::testing::Rng;
use epic_ir::{func::mk_br, BlockId, MemSize, Op, OpId, Opcode, Operand, Vreg};
use epic_mach::{try_pack_group, Slot, TEMPLATES};

/// Shrunken counterexamples saved from the original proptest runs; always
/// replayed first.
const REGRESSION_MIXES: [&[u8]; 2] = [&[5, 3, 3], &[4, 0, 0, 0, 0]];

const CASES: u64 = 256;

fn make_op(kind: u8, id: u32) -> Op {
    let mut op = match kind % 6 {
        0 => Op::new(
            OpId(id),
            Opcode::Add,
            vec![Vreg(1)],
            vec![Operand::Reg(Vreg(2)), Operand::Imm(3)],
        ),
        1 => Op::new(
            OpId(id),
            Opcode::Ld(MemSize::B8),
            vec![Vreg(1)],
            vec![Operand::Reg(Vreg(2))],
        ),
        2 => Op::new(
            OpId(id),
            Opcode::Shl,
            vec![Vreg(1)],
            vec![Operand::Reg(Vreg(2)), Operand::Imm(3)],
        ),
        3 => Op::new(
            OpId(id),
            Opcode::Mul,
            vec![Vreg(1)],
            vec![Operand::Reg(Vreg(2)), Operand::Reg(Vreg(3))],
        ),
        4 => mk_br(OpId(id), BlockId(0)),
        _ => Op::new(
            OpId(id),
            Opcode::Mov,
            vec![Vreg(1)],
            vec![Operand::Imm(1 << 40)], // long immediate
        ),
    };
    op.id = OpId(id);
    op
}

fn random_kinds(rng: &mut Rng, max_kind: u64, max_len: usize) -> Vec<u8> {
    let len = 1 + rng.pick_usize(max_len);
    (0..len).map(|_| rng.pick(max_kind) as u8).collect()
}

fn check_pack_order(kinds: &[u8]) {
    let ops: Vec<Op> = kinds
        .iter()
        .enumerate()
        .map(|(i, &k)| make_op(k, i as u32))
        .collect();
    let Some(bundles) = try_pack_group(ops.clone()) else {
        // rejection is allowed (resource-infeasible mixes); nothing to check
        return;
    };
    assert!(bundles.len() <= 2, "{kinds:?}");
    // collect emitted ops in slot order
    let mut emitted: Vec<u32> = Vec::new();
    for b in &bundles {
        assert!(b.template < TEMPLATES.len(), "{kinds:?}");
        for s in &b.slots {
            if let Slot::Op(o) = s {
                emitted.push(o.id.0);
            }
        }
    }
    let mut sorted = emitted.clone();
    sorted.sort_unstable();
    assert_eq!(
        sorted,
        (0..ops.len() as u32).collect::<Vec<_>>(),
        "each op exactly once: {kinds:?}"
    );
    // branch-relative order: ops before a branch (by original index)
    // must be emitted before it, ops after it after
    for (bi, op) in ops.iter().enumerate() {
        if !op.is_branch() {
            continue;
        }
        let bpos = emitted.iter().position(|&e| e == bi as u32).unwrap();
        for (oi, _) in ops.iter().enumerate() {
            let opos = emitted.iter().position(|&e| e == oi as u32).unwrap();
            if oi < bi {
                assert!(opos < bpos, "op {oi} must precede branch {bi}: {kinds:?}");
            }
            if oi > bi {
                assert!(opos > bpos, "op {oi} must follow branch {bi}: {kinds:?}");
            }
        }
    }
}

#[test]
fn packed_groups_contain_every_op_once_in_segment_order() {
    for mix in REGRESSION_MIXES {
        check_pack_order(mix);
    }
    let base = Rng::new(0x9ACC);
    for case in 0..CASES {
        let mut rng = base.derive(case);
        check_pack_order(&random_kinds(&mut rng, 6, 6));
    }
}

#[test]
fn single_ops_always_pack() {
    // exhaustive over all op kinds (proptest only sampled them)
    for kind in 0u8..6 {
        let bundles = try_pack_group(vec![make_op(kind, 0)]).expect("single op packs");
        assert_eq!(bundles.len(), 1, "kind {kind}");
        assert!(bundles[0].stop, "kind {kind}");
    }
}

/// The scheduler's per-cycle resource counters over-approximate what
/// the template set can encode (e.g. two F ops plus a long immediate
/// are counter-admissible but no template pair covers them); the
/// packer is the precise backstop, and scheduler progress is
/// guaranteed because a single op always packs (previous property).
/// Within the *common* region — no long immediates, no branches, at
/// most one F op — counter admission must imply packability.
#[test]
fn common_admissible_mixes_pack() {
    let check = |kinds: &[u8]| {
        let ops: Vec<Op> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| make_op(k, i as u32))
            .collect();
        let m = ops
            .iter()
            .filter(|o| matches!(o.opcode, Opcode::Ld(_)))
            .count();
        let i_strict = ops
            .iter()
            .filter(|o| matches!(o.opcode, Opcode::Shl))
            .count();
        let fl = ops
            .iter()
            .filter(|o| matches!(o.opcode, Opcode::Mul))
            .count();
        let admitted = ops.len() <= 6 && m <= 4 && i_strict <= 2 && fl <= 1;
        if admitted {
            assert!(
                try_pack_group(ops.clone()).is_some(),
                "common-region mix failed to pack: {kinds:?}"
            );
        }
    };
    // exhaustive over all mixes up to length 4 (4^4 + 4^3 + ... = 340)
    for len in 1..=4usize {
        for idx in 0..4usize.pow(len as u32) {
            let mut kinds = Vec::with_capacity(len);
            let mut x = idx;
            for _ in 0..len {
                kinds.push((x % 4) as u8);
                x /= 4;
            }
            check(&kinds);
        }
    }
    // random sampling at lengths 5..=6
    let base = Rng::new(0xC0);
    for case in 0..CASES {
        let mut rng = base.derive(case);
        let len = 5 + rng.pick_usize(2);
        let kinds: Vec<u8> = (0..len).map(|_| rng.pick(4) as u8).collect();
        check(&kinds);
    }
}
