//! Machine-program container: scheduled, register-allocated, bundled code
//! with a code layout, ready for the performance simulator.

use crate::template::{Bundle, Slot};
use epic_ir::{FuncId, Program};

/// Bytes per bundle (IA-64: 128 bits).
pub const BUNDLE_BYTES: u64 = 16;
/// Base address of the code region (for I-cache indexing).
pub const CODE_BASE: u64 = 0x0040_0000;

/// One compiled function.
#[derive(Clone, Debug)]
pub struct MachFunc {
    /// The IR function id this code implements.
    pub id: FuncId,
    /// Name (per-function attribution, Fig. 10).
    pub name: String,
    /// Bundles in layout order.
    pub bundles: Vec<Bundle>,
    /// Entry bundle index (into `bundles`).
    pub entry: usize,
    /// Map from IR block id to bundle index (branch target resolution).
    pub block_entry: Vec<Option<usize>>,
    /// General registers allocated (the RSE window size for this frame).
    pub n_gr: u32,
    /// Predicate registers allocated.
    pub n_pr: u32,
    /// Stack-frame bytes (locals + spills).
    pub frame_size: u64,
    /// Registers holding incoming parameters, in order.
    pub param_regs: Vec<u32>,
    /// Base code address (assigned by [`MachProgram::assign_addresses`]).
    pub base_addr: u64,
}

impl MachFunc {
    /// Address of bundle `i`.
    pub fn bundle_addr(&self, i: usize) -> u64 {
        self.base_addr + BUNDLE_BYTES * i as u64
    }

    /// Code size in bytes.
    pub fn code_bytes(&self) -> u64 {
        self.bundles.len() as u64 * BUNDLE_BYTES
    }

    /// Static counts: (real ops, explicit nops).
    pub fn op_counts(&self) -> (usize, usize) {
        let mut ops = 0;
        let mut nops = 0;
        for b in &self.bundles {
            ops += b.op_count();
            nops += b.nop_count();
        }
        (ops, nops)
    }
}

/// A whole compiled program plus the (post-optimization) IR program it was
/// generated from — the IR side supplies globals and entry information to
/// the simulator's memory model.
#[derive(Clone, Debug)]
pub struct MachProgram {
    /// Compiled functions, indexed by [`FuncId`].
    pub funcs: Vec<MachFunc>,
    /// The IR program (globals, layout, entry).
    pub ir: Program,
}

impl MachProgram {
    /// Assign code addresses function by function in layout order.
    pub fn assign_addresses(&mut self) {
        let mut addr = CODE_BASE;
        for f in &mut self.funcs {
            f.base_addr = addr;
            addr += f.code_bytes().max(BUNDLE_BYTES);
        }
    }

    /// The function containing code address `addr` (for attribution).
    pub fn func_at_addr(&self, addr: u64) -> Option<FuncId> {
        self.funcs
            .iter()
            .find(|f| addr >= f.base_addr && addr < f.base_addr + f.code_bytes())
            .map(|f| f.id)
    }

    /// Total code size in bytes.
    pub fn code_bytes(&self) -> u64 {
        self.funcs.iter().map(|f| f.code_bytes()).sum()
    }

    /// Program-wide (ops, nops) static counts.
    pub fn op_counts(&self) -> (usize, usize) {
        let mut t = (0, 0);
        for f in &self.funcs {
            let (o, n) = f.op_counts();
            t.0 += o;
            t.1 += n;
        }
        t
    }

    /// Static fraction of slots that are nops.
    pub fn nop_fraction(&self) -> f64 {
        let (o, n) = self.op_counts();
        if o + n == 0 {
            0.0
        } else {
            n as f64 / (o + n) as f64
        }
    }
}

/// Disassemble a function's bundles into readable text (one bundle per
/// line: address, template, slots, stop marker).
pub fn disasm(f: &MachFunc) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} @ {:#x} ({} bundles, window {} GRs):",
        f.name,
        f.base_addr,
        f.bundles.len(),
        f.n_gr
    );
    for (i, b) in f.bundles.iter().enumerate() {
        let tpl = crate::template::TEMPLATES[b.template].name;
        let entry_mark = if i == f.entry { ">" } else { " " };
        let _ = write!(out, "{entry_mark}{:#08x} {:4}", f.bundle_addr(i), tpl);
        for s in &b.slots {
            match s {
                Slot::Op(op) => {
                    let _ = write!(out, " | {op}");
                }
                Slot::Nop => {
                    let _ = write!(out, " | nop");
                }
                Slot::LContinuation => {}
            }
        }
        let _ = writeln!(out, "{}", if b.stop { " ;;" } else { "" });
    }
    out
}

/// Iterate over the real ops of a bundle slice (for static analyses).
pub fn iter_ops(bundles: &[Bundle]) -> impl Iterator<Item = &epic_ir::Op> {
    bundles.iter().flat_map(|b| {
        b.slots.iter().filter_map(|s| match s {
            Slot::Op(o) => Some(o),
            _ => None,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::pack_group;
    use epic_ir::{Op, OpId, Opcode, Operand, Vreg};

    fn mach_func(id: u32, n_bundles: usize) -> MachFunc {
        let mut bundles = Vec::new();
        for _ in 0..n_bundles {
            let add = Op::new(
                OpId(0),
                Opcode::Add,
                vec![Vreg(1)],
                vec![Operand::Reg(Vreg(2)), Operand::Imm(1)],
            );
            bundles.extend(pack_group(vec![add]));
        }
        MachFunc {
            id: FuncId(id),
            name: format!("f{id}"),
            bundles,
            entry: 0,
            block_entry: vec![Some(0)],
            n_gr: 8,
            n_pr: 2,
            frame_size: 0,
            param_regs: vec![],
            base_addr: 0,
        }
    }

    #[test]
    fn addresses_are_contiguous() {
        let mut p = MachProgram {
            funcs: vec![mach_func(0, 3), mach_func(1, 2)],
            ir: Program::new(),
        };
        p.assign_addresses();
        assert_eq!(p.funcs[0].base_addr, CODE_BASE);
        assert_eq!(p.funcs[1].base_addr, CODE_BASE + 3 * BUNDLE_BYTES);
        assert_eq!(
            p.func_at_addr(CODE_BASE + 2 * BUNDLE_BYTES),
            Some(FuncId(0))
        );
        assert_eq!(
            p.func_at_addr(CODE_BASE + 3 * BUNDLE_BYTES),
            Some(FuncId(1))
        );
        assert_eq!(p.func_at_addr(0), None);
        assert_eq!(p.code_bytes(), 5 * BUNDLE_BYTES);
    }

    #[test]
    fn disasm_is_readable() {
        let mut p = MachProgram {
            funcs: vec![mach_func(0, 2)],
            ir: Program::new(),
        };
        p.assign_addresses();
        let text = disasm(&p.funcs[0]);
        assert!(text.contains("f0 @ 0x400000"));
        assert!(text.contains("Add"));
        assert!(text.contains("nop"));
        assert!(text.contains(";;"), "stops must be marked: {text}");
    }

    #[test]
    fn iter_ops_skips_nops() {
        let f = mach_func(0, 3);
        assert_eq!(iter_ops(&f.bundles).count(), 3);
    }

    #[test]
    fn op_and_nop_counts() {
        let p = MachProgram {
            funcs: vec![mach_func(0, 2)],
            ir: Program::new(),
        };
        let (ops, nops) = p.op_counts();
        assert_eq!(ops, 2);
        assert_eq!(nops, 4);
        assert!((p.nop_fraction() - 4.0 / 6.0).abs() < 1e-12);
    }
}
