//! Functional-unit classes, slot kinds, and latencies for the modeled
//! Itanium 2 (paper Fig. 1: six-issue, 4 M + 2 I + 2 F + 3 B units, all
//! fully pipelined, in-order, no renaming).

use epic_ir::{Op, Opcode, Operand};

/// Functional-unit class an op executes on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnitKind {
    /// Memory units (4; loads on M0/M1, stores on M2/M3).
    M,
    /// Integer units (2; shifts and other I-only ops).
    I,
    /// Floating-point units (2; also integer multiply/divide, as on real
    /// IA-64 where `xmpy` runs on F).
    F,
    /// Branch units (3).
    B,
}

/// Bundle slot kinds (the L slot pairs with X to hold a long-immediate op).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SlotKind {
    M,
    I,
    F,
    B,
    /// Long-immediate pseudo-slot (occupies the L+X pair of an MLX bundle).
    L,
}

/// Per-cycle issue capacity of each unit class (Itanium 2).
pub const M_UNITS: usize = 4;
/// Integer units.
pub const I_UNITS: usize = 2;
/// Floating-point units.
pub const F_UNITS: usize = 2;
/// Branch units.
pub const B_UNITS: usize = 3;
/// Maximum operations issued per cycle (two bundles).
pub const ISSUE_WIDTH: usize = 6;

/// Does this operand require the long-immediate (L+X) encoding?
/// Addresses (globals, function pointers) and immediates beyond the
/// 22-bit `addl` range do.
pub fn operand_needs_long(o: &Operand) -> bool {
    match o {
        Operand::Imm(v) => *v >= (1 << 21) || *v < -(1 << 21),
        Operand::Global(_) | Operand::FuncAddr(_) => true,
        // frame offsets are small adds off sp
        Operand::FrameAddr(off) => *off >= (1 << 21),
        _ => false,
    }
}

/// Does the op need the L+X slot pair?
pub fn needs_long(op: &Op) -> bool {
    match op.opcode {
        // branch/call targets are IP-relative, not long immediates
        Opcode::Br | Opcode::Call | Opcode::Ret => false,
        _ => op.srcs.iter().any(operand_needs_long),
    }
}

/// Slot kinds this op may occupy, in preference order. A-type ALU ops may
/// use M or I slots (as on IA-64).
pub fn slot_kinds(op: &Op) -> &'static [SlotKind] {
    if needs_long(op) {
        return &[SlotKind::L];
    }
    match op.opcode {
        Opcode::Add
        | Opcode::Sub
        | Opcode::And
        | Opcode::Or
        | Opcode::Xor
        | Opcode::Cmp(_)
        | Opcode::Mov => &[SlotKind::I, SlotKind::M],
        Opcode::Shl | Opcode::Shr | Opcode::Sar => &[SlotKind::I],
        Opcode::Ld(_)
        | Opcode::St(_)
        | Opcode::Chk(_)
        | Opcode::ChkA(_)
        | Opcode::Alloc
        | Opcode::Out => &[SlotKind::M],
        Opcode::Mul | Opcode::Div | Opcode::Rem => &[SlotKind::F],
        Opcode::Br | Opcode::Call | Opcode::Ret => &[SlotKind::B],
        Opcode::Nop => &[SlotKind::I, SlotKind::M, SlotKind::F, SlotKind::B],
    }
}

/// Unit class charged for execution (for per-cycle unit-count limits).
pub fn unit_kind(op: &Op) -> UnitKind {
    match op.opcode {
        Opcode::Ld(_)
        | Opcode::St(_)
        | Opcode::Chk(_)
        | Opcode::ChkA(_)
        | Opcode::Alloc
        | Opcode::Out => UnitKind::M,
        Opcode::Mul | Opcode::Div | Opcode::Rem => UnitKind::F,
        Opcode::Br | Opcode::Call | Opcode::Ret => UnitKind::B,
        _ => UnitKind::I, // A-type counted against combined M+I by callers
    }
}

/// Is this an A-type op that can use either an M or I slot/unit?
pub fn is_a_type(op: &Op) -> bool {
    matches!(
        op.opcode,
        Opcode::Add
            | Opcode::Sub
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Cmp(_)
            | Opcode::Mov
    ) && !needs_long(op)
}

/// Result latency in cycles (producer issue → earliest consumer issue).
/// Loads are scheduled for the 1-cycle integer L1D hit; misses stall the
/// scoreboard at run time.
pub fn latency(op: &Op) -> u32 {
    match op.opcode {
        Opcode::Ld(_) | Opcode::Chk(_) | Opcode::ChkA(_) => 1,
        Opcode::Mul => 4,
        Opcode::Div | Opcode::Rem => 24,
        Opcode::Alloc => 2,
        Opcode::Call => 1,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::{MemSize, OpId, Vreg};

    fn op(opcode: Opcode, srcs: Vec<Operand>) -> Op {
        Op::new(OpId(0), opcode, vec![Vreg(0)], srcs)
    }

    #[test]
    fn a_type_uses_m_or_i() {
        let add = op(Opcode::Add, vec![Operand::Reg(Vreg(1)), Operand::Imm(4)]);
        assert!(is_a_type(&add));
        assert_eq!(slot_kinds(&add), &[SlotKind::I, SlotKind::M]);
    }

    #[test]
    fn long_immediates_take_l_slot() {
        let movl = op(Opcode::Mov, vec![Operand::Imm(1 << 30)]);
        assert!(needs_long(&movl));
        assert_eq!(slot_kinds(&movl), &[SlotKind::L]);
        let movg = op(Opcode::Mov, vec![Operand::Global(epic_ir::GlobalId(0))]);
        assert!(needs_long(&movg));
        let small = op(Opcode::Mov, vec![Operand::Imm(100)]);
        assert!(!needs_long(&small));
    }

    #[test]
    fn memory_ops_take_m_slots() {
        let ld = op(Opcode::Ld(MemSize::B8), vec![Operand::Reg(Vreg(1))]);
        assert_eq!(slot_kinds(&ld), &[SlotKind::M]);
        assert_eq!(unit_kind(&ld), UnitKind::M);
        assert_eq!(latency(&ld), 1);
    }

    #[test]
    fn multiply_runs_on_f() {
        let mul = op(
            Opcode::Mul,
            vec![Operand::Reg(Vreg(1)), Operand::Reg(Vreg(2))],
        );
        assert_eq!(unit_kind(&mul), UnitKind::F);
        assert_eq!(latency(&mul), 4);
    }

    #[test]
    fn branches_are_ip_relative() {
        let br = epic_ir::func::mk_br(OpId(0), epic_ir::BlockId(400000));
        assert!(!needs_long(&br));
        assert_eq!(slot_kinds(&br), &[SlotKind::B]);
    }
}
