//! Machine configuration shared by the scheduler and the simulator,
//! mirroring the paper's Fig. 1 / Table 1 platform: a 1 GHz Itanium 2 with
//! 16 KB L1I / 16 KB L1D (1 cy), 256 KB L2 (5+ cy), 3 MB L3 (12+ cy).

/// Cache geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total bytes.
    pub size: u64,
    /// Line size in bytes.
    pub line: u64,
    /// Associativity.
    pub ways: u64,
    /// Hit latency added on top of the inner level (cycles).
    pub latency: u64,
}

/// Whole-machine configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Unified L3.
    pub l3: CacheConfig,
    /// Main-memory latency (cycles).
    pub mem_latency: u64,
    /// Branch-misprediction pipeline flush (cycles).
    pub mispredict_penalty: u64,
    /// Decoupling instruction buffer capacity (operations).
    pub ib_ops: usize,
    /// Bundles fetched per cycle.
    pub fetch_bundles: usize,
    /// Physical stacked general registers backing the register stack.
    pub rse_capacity: u32,
    /// Cycles to spill/fill one register via the RSE.
    pub rse_cycle_per_reg: u64,
    /// DTLB entries.
    pub dtlb_entries: usize,
    /// Hardware page-walk (VHPT) cost on a DTLB miss (cycles).
    pub tlb_walk_cycles: u64,
    /// Kernel cost of completing a *wild* speculative load under the
    /// general speculation model: a full page-table query that cannot be
    /// cached (paper Sec. 4.3).
    pub wild_load_kernel_cycles: u64,
    /// NaT-page response for NULL-page accesses (cycles).
    pub nat_page_cycles: u64,
    /// Cost of a `chk` that detects a deferred NaT and runs recovery
    /// (sentinel model).
    pub chk_recovery_cycles: u64,
    /// Kernel cycles charged per `Out` (output syscall) and per `Alloc`.
    pub syscall_kernel_cycles: u64,
    /// Store-buffer forwarding conflict stall (micropipe) cycles.
    pub store_forward_stall: u64,
    /// Store buffer depth (entries) for forwarding-conflict detection.
    pub store_buffer: usize,
    /// ALAT entries (advanced-load address table, data speculation).
    pub alat_entries: usize,
    /// Cycles to recover from a `chk.a` ALAT miss (flush + re-execute).
    pub alat_recovery_cycles: u64,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            l1i: CacheConfig {
                size: 16 << 10,
                line: 64,
                ways: 4,
                latency: 1,
            },
            l1d: CacheConfig {
                size: 16 << 10,
                line: 64,
                ways: 4,
                latency: 1,
            },
            l2: CacheConfig {
                size: 256 << 10,
                line: 128,
                ways: 8,
                latency: 5,
            },
            l3: CacheConfig {
                size: 3 << 20,
                line: 128,
                ways: 12,
                latency: 12,
            },
            mem_latency: 140,
            mispredict_penalty: 6,
            ib_ops: 48,
            fetch_bundles: 2,
            rse_capacity: 96,
            rse_cycle_per_reg: 2,
            dtlb_entries: 128,
            tlb_walk_cycles: 25,
            wild_load_kernel_cycles: 160,
            nat_page_cycles: 2,
            chk_recovery_cycles: 40,
            syscall_kernel_cycles: 30,
            store_forward_stall: 4,
            store_buffer: 16,
            alat_entries: 32,
            alat_recovery_cycles: 30,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_platform() {
        let c = MachineConfig::default();
        assert_eq!(c.l1i.size, 16 * 1024);
        assert_eq!(c.l1d.latency, 1);
        assert_eq!(c.l2.size, 256 * 1024);
        assert_eq!(c.l3.size, 3 * 1024 * 1024);
        assert_eq!(c.ib_ops, 48);
        assert_eq!(c.rse_capacity, 96);
    }
}
