//! IA-64 bundle templates and issue-group packing.
//!
//! An issue group (ops the compiler asserts are independent) is encoded as
//! one or two 3-slot bundles chosen from the architectural template set,
//! with `nop`s filling unused slots and a stop after the final bundle.
//! Because unfilled slots burn fetch bandwidth, better-scheduled code can
//! *reduce* I-cache pressure — the paper's Sec. 3.4 observation.

use crate::units::{slot_kinds, SlotKind};
use epic_ir::{Op, OpId, Opcode};

/// One bundle template: three slot kinds. The L entry stands for the L+X
/// pair and consumes the last two slots.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Template {
    /// Template name (for disassembly / debugging).
    pub name: &'static str,
    /// The slot kinds. An `L` in position 1 means slots 1-2 hold one op.
    pub slots: [SlotKind; 3],
}

/// The supported architectural templates (a representative subset of the
/// IA-64 set; mid-bundle stops are not modeled).
pub const TEMPLATES: &[Template] = &[
    Template {
        name: "MII",
        slots: [SlotKind::M, SlotKind::I, SlotKind::I],
    },
    Template {
        name: "MMI",
        slots: [SlotKind::M, SlotKind::M, SlotKind::I],
    },
    Template {
        name: "MFI",
        slots: [SlotKind::M, SlotKind::F, SlotKind::I],
    },
    Template {
        name: "MMF",
        slots: [SlotKind::M, SlotKind::M, SlotKind::F],
    },
    Template {
        name: "MIB",
        slots: [SlotKind::M, SlotKind::I, SlotKind::B],
    },
    Template {
        name: "MMB",
        slots: [SlotKind::M, SlotKind::M, SlotKind::B],
    },
    Template {
        name: "MFB",
        slots: [SlotKind::M, SlotKind::F, SlotKind::B],
    },
    Template {
        name: "MBB",
        slots: [SlotKind::M, SlotKind::B, SlotKind::B],
    },
    Template {
        name: "BBB",
        slots: [SlotKind::B, SlotKind::B, SlotKind::B],
    },
    // MLX: M slot + L/X pair (one long-immediate op).
    Template {
        name: "MLX",
        slots: [SlotKind::M, SlotKind::L, SlotKind::L],
    },
];

/// A filled bundle slot.
#[derive(Clone, Debug)]
pub enum Slot {
    /// A real operation.
    Op(Op),
    /// An explicit `nop` (costs fetch/issue bandwidth, retires as a nop).
    Nop,
    /// Second half of an L+X pair (not separately executed or counted).
    LContinuation,
}

/// One encoded bundle.
#[derive(Clone, Debug)]
pub struct Bundle {
    /// Index into [`TEMPLATES`].
    pub template: usize,
    /// The three slots.
    pub slots: [Slot; 3],
    /// Stop (end of issue group) after this bundle.
    pub stop: bool,
}

impl Bundle {
    /// Count of real ops in the bundle.
    pub fn op_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Op(_)))
            .count()
    }

    /// Count of explicit nop slots.
    pub fn nop_count(&self) -> usize {
        self.slots.iter().filter(|s| matches!(s, Slot::Nop)).count()
    }
}

/// Pack one issue group (ops already verified independent and ordered by
/// program order) into 1–2 bundles. The final bundle carries the stop.
///
/// # Panics
/// Panics if the group cannot be packed (more than 6 ops, or an op mix no
/// template pair covers — the scheduler's capacity checks prevent this).
pub fn pack_group(ops: Vec<Op>) -> Vec<Bundle> {
    try_pack_group(ops).expect("unpackable issue group")
}

/// Non-panicking variant of [`pack_group`]; `None` when no template pair
/// covers the op mix (the scheduler uses this as its packability check).
pub fn try_pack_group(ops: Vec<Op>) -> Option<Vec<Bundle>> {
    if ops.is_empty() || ops.len() > 6 {
        return None;
    }
    // Try one bundle, then all ordered template pairs.
    let mut best: Option<Vec<Bundle>> = None;
    for t1 in 0..TEMPLATES.len() {
        if let Some(assign) = fit(&ops, &[t1]) {
            let b = build(&ops, &[t1], &assign);
            if best.as_ref().is_none_or(|c| b.len() < c.len()) {
                best = Some(b);
            }
        }
    }
    if best.is_none() {
        'outer: for t1 in 0..TEMPLATES.len() {
            for t2 in 0..TEMPLATES.len() {
                if let Some(assign) = fit(&ops, &[t1, t2]) {
                    best = Some(build(&ops, &[t1, t2], &assign));
                    break 'outer;
                }
            }
        }
    }
    best
}

/// Fit ops into the slots of the chosen templates.
///
/// Within an issue group, independent (non-branch) operations may occupy
/// slots in any order, but every op must keep its position *relative to
/// branches*: a taken branch skips the rest of the group, so ops that
/// precede a branch in program order must be slotted before it and ops
/// that follow it after. Ops are therefore partitioned into "segments"
/// separated by branches and matched by depth-first search (groups are at
/// most 6 ops, so the search is trivial).
fn fit(ops: &[Op], templates: &[usize]) -> Option<Vec<(usize, usize)>> {
    // segment number per op: bumped at each branch; the branch itself gets
    // its own segment.
    let mut seg = Vec::with_capacity(ops.len());
    let mut cur = 0u32;
    for op in ops {
        if op.is_branch() || op.is_call() || matches!(op.opcode, Opcode::Ret) {
            cur += 1;
            seg.push(cur);
            cur += 1;
        } else {
            seg.push(cur);
        }
    }
    // flattened slot list: (bundle, slot, kind); MLX's X continuation is
    // skipped (the L entry stands for the pair).
    let mut slots = Vec::new();
    for (bi, &t) in templates.iter().enumerate() {
        let tpl = &TEMPLATES[t];
        let mut si = 0;
        while si < 3 {
            let k = tpl.slots[si];
            slots.push((bi, si, k));
            si += if k == SlotKind::L { 2 } else { 1 };
        }
    }
    let mut assign = vec![usize::MAX; ops.len()]; // op -> flattened slot
    if dfs(ops, &seg, &slots, 0, &mut assign) {
        Some(assign.iter().map(|&s| (slots[s].0, slots[s].1)).collect())
    } else {
        None
    }
}

fn dfs(
    ops: &[Op],
    seg: &[u32],
    slots: &[(usize, usize, SlotKind)],
    slot_idx: usize,
    assign: &mut Vec<usize>,
) -> bool {
    if assign.iter().all(|&a| a != usize::MAX) {
        return true;
    }
    if slot_idx >= slots.len() {
        return false;
    }
    // the minimum unplaced segment: only its ops are placeable now
    let min_seg = ops
        .iter()
        .enumerate()
        .filter(|(i, _)| assign[*i] == usize::MAX)
        .map(|(i, _)| seg[i])
        .min()
        .expect("unplaced op exists");
    let kind = slots[slot_idx].2;
    for i in 0..ops.len() {
        if assign[i] != usize::MAX || seg[i] != min_seg {
            continue;
        }
        if !slot_kinds(&ops[i]).contains(&kind) {
            continue;
        }
        assign[i] = slot_idx;
        if dfs(ops, seg, slots, slot_idx + 1, assign) {
            return true;
        }
        assign[i] = usize::MAX;
    }
    // or leave this slot as a nop
    dfs(ops, seg, slots, slot_idx + 1, assign)
}

fn build(ops: &[Op], templates: &[usize], assign: &[(usize, usize)]) -> Vec<Bundle> {
    let used_bundles = assign.iter().map(|(b, _)| *b).max().unwrap_or(0) + 1;
    let mut bundles: Vec<Bundle> = (0..used_bundles)
        .map(|i| Bundle {
            template: templates[i],
            slots: [Slot::Nop, Slot::Nop, Slot::Nop],
            stop: false,
        })
        .collect();
    for (op, (b, s)) in ops.iter().zip(assign) {
        bundles[*b].slots[*s] = Slot::Op(op.clone());
        if TEMPLATES[templates[*b]].slots[*s] == SlotKind::L {
            bundles[*b].slots[*s + 1] = Slot::LContinuation;
        }
    }
    bundles.last_mut().expect("nonempty").stop = true;
    bundles
}

/// A machine `nop` op (used for padding whole bundles when needed).
pub fn nop_op() -> Op {
    Op::new(OpId(u32::MAX), Opcode::Nop, vec![], vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::{MemSize, Operand, Vreg};

    fn mk(opcode: Opcode) -> Op {
        let (d, s): (Vec<Vreg>, Vec<Operand>) = match opcode {
            Opcode::St(_) => (vec![], vec![Operand::Reg(Vreg(0)), Operand::Reg(Vreg(1))]),
            Opcode::Br => (vec![], vec![Operand::Label(epic_ir::BlockId(0))]),
            Opcode::Ld(_) => (vec![Vreg(2)], vec![Operand::Reg(Vreg(0))]),
            _ => (
                vec![Vreg(2)],
                vec![Operand::Reg(Vreg(0)), Operand::Reg(Vreg(1))],
            ),
        };
        Op::new(OpId(0), opcode, d, s)
    }

    #[test]
    fn single_alu_op_packs_one_bundle() {
        let b = pack_group(vec![mk(Opcode::Add)]);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].op_count(), 1);
        assert_eq!(b[0].nop_count(), 2);
        assert!(b[0].stop);
    }

    #[test]
    fn six_wide_group_packs_two_bundles() {
        // 2 loads, 2 adds, 1 shift, 1 branch -> e.g. MMI + MIB
        let ops = vec![
            mk(Opcode::Ld(MemSize::B8)),
            mk(Opcode::Ld(MemSize::B8)),
            mk(Opcode::Add),
            mk(Opcode::Shl),
            mk(Opcode::Add),
            mk(Opcode::Br),
        ];
        let b = pack_group(ops);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].op_count() + b[1].op_count(), 6);
        assert_eq!(b[0].nop_count() + b[1].nop_count(), 0);
        assert!(!b[0].stop && b[1].stop);
    }

    #[test]
    fn long_immediate_uses_mlx() {
        let movl = Op::new(
            OpId(0),
            Opcode::Mov,
            vec![Vreg(1)],
            vec![Operand::Imm(1 << 40)],
        );
        let b = pack_group(vec![movl]);
        assert_eq!(TEMPLATES[b[0].template].name, "MLX");
        assert!(matches!(b[0].slots[1], Slot::Op(_)));
        assert!(matches!(b[0].slots[2], Slot::LContinuation));
    }

    #[test]
    fn branch_heavy_group() {
        let ops = vec![mk(Opcode::Br), mk(Opcode::Br), mk(Opcode::Br)];
        let b = pack_group(ops);
        assert_eq!(b.len(), 1);
        assert_eq!(TEMPLATES[b[0].template].name, "BBB");
    }

    #[test]
    fn store_pair_with_branch() {
        let ops = vec![
            mk(Opcode::St(MemSize::B8)),
            mk(Opcode::St(MemSize::B8)),
            mk(Opcode::Br),
        ];
        let b = pack_group(ops);
        assert_eq!(b.len(), 1);
        assert_eq!(TEMPLATES[b[0].template].name, "MMB");
    }

    #[test]
    fn preserves_program_order_across_slots() {
        let mut o1 = mk(Opcode::Add);
        o1.id = OpId(10);
        let mut o2 = mk(Opcode::Br);
        o2.id = OpId(11);
        let mut o3 = mk(Opcode::Add);
        o3.id = OpId(12);
        let bundles = pack_group(vec![o1, o2, o3]);
        let mut seen = Vec::new();
        for b in &bundles {
            for s in &b.slots {
                if let Slot::Op(o) = s {
                    seen.push(o.id.0);
                }
            }
        }
        assert_eq!(seen, vec![10, 11, 12]);
    }
}
