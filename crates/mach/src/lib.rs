//! # epic-mach
//!
//! Itanium-2-like machine description for the IMPACT EPIC reproduction:
//! functional units and latencies ([`units`]), IA-64 bundle templates and
//! issue-group packing ([`template`]), the compiled-program container
//! ([`program`]), and the machine configuration shared by the scheduler
//! and the performance simulator ([`config`]).
//!
//! Register convention for compiled code: virtual registers in scheduled
//! ops have been renamed by the allocator so that indexes `0..n_gr` are
//! general registers of the function's own register-stack window and
//! indexes `GR_WINDOW..GR_WINDOW + n_pr` are predicate registers. Each
//! call allocates a fresh window (IA-64 register stack); spill beyond the
//! physical capacity is charged by the simulator's RSE model.

pub mod config;
pub mod program;
pub mod template;
pub mod units;

pub use config::{CacheConfig, MachineConfig};
pub use program::{MachFunc, MachProgram, BUNDLE_BYTES, CODE_BASE};
pub use template::{pack_group, try_pack_group, Bundle, Slot, Template, TEMPLATES};

/// Upper bound on general registers per window; predicate registers are
/// numbered from here in scheduled code.
pub const GR_WINDOW: u32 = 128;
/// Predicate registers per frame.
pub const PR_COUNT: u32 = 64;
