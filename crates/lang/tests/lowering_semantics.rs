//! Additional MiniC semantics tests: loop-rotation edge cases, scoping,
//! operator corners, and struct layout.

use epic_ir::interp::{run, InterpOptions};

fn out(src: &str, args: &[i64]) -> Vec<u64> {
    let prog = epic_lang::compile(src).unwrap();
    run(&prog, args, InterpOptions::default()).unwrap().output
}

#[test]
fn continue_reaches_the_bottom_test() {
    // With rotated loops, `continue` must re-evaluate the condition (jump
    // to the bottom test), not restart the body.
    assert_eq!(
        out(
            "fn main() {
                 let i = 0; let s = 0;
                 while i < 10 {
                     i = i + 1;
                     if i % 2 == 0 { continue; }
                     s = s + i;
                 }
                 out(s); out(i);
             }",
            &[]
        ),
        vec![25, 10]
    );
}

#[test]
fn zero_trip_loops_never_enter() {
    assert_eq!(
        out(
            "fn main() {
                 let n = 0;
                 while n > 0 { n = n - 1; out(99); }
                 out(1);
             }",
            &[]
        ),
        vec![1]
    );
}

#[test]
fn nested_loops_with_breaks() {
    assert_eq!(
        out(
            "fn main() {
                 let total = 0;
                 let i = 0;
                 while i < 5 {
                     let j = 0;
                     while 1 {
                         j = j + 1;
                         if j > i { break; }
                         total = total + 1;
                     }
                     i = i + 1;
                 }
                 out(total);
             }",
            &[]
        ),
        vec![10] // 0+1+2+3+4
    );
}

#[test]
fn shadowing_in_inner_scopes() {
    assert_eq!(
        out(
            "fn main() {
                 let x = 1;
                 if 1 { let x = 2; out(x); }
                 out(x);
                 let i = 0;
                 while i < 1 { let x = 3; out(x); i = i + 1; }
                 out(x);
             }",
            &[]
        ),
        vec![2, 1, 3, 1]
    );
}

#[test]
fn signed_division_semantics() {
    // C-style truncation toward zero
    assert_eq!(
        out(
            "fn main() {
                 out(-7 / 2); out(7 / -2); out(-7 % 2); out(7 % -2);
             }",
            &[]
        ),
        vec![(-3i64) as u64, (-3i64) as u64, (-1i64) as u64, 1]
    );
}

#[test]
fn struct_field_offsets_respect_alignment() {
    assert_eq!(
        out(
            "struct Mixed { b: byte, v: int, c: byte, w: int }
             global m: Mixed;
             fn main() {
                 m.b = 1; m.v = 1000; m.c = 2; m.w = 2000;
                 out(m.b); out(m.v); out(m.c); out(m.w);
                 // writes must not clobber each other
                 m.v = -1;
                 out(m.b); out(m.c); out(m.w);
             }",
            &[]
        ),
        vec![1, 1000, 2, 2000, 1, 2, 2000]
    );
}

#[test]
fn arrays_of_structs_via_pointer_arithmetic() {
    assert_eq!(
        out(
            "struct P { x: int, y: int }
             fn main() {
                 let base = alloc(160) as *P;     // 10 structs of 16 bytes
                 let i = 0;
                 while i < 10 {
                     let p = base + i;            // scales by sizeof(P)
                     p.x = i;
                     p.y = i * i;
                     i = i + 1;
                 }
                 let s = 0;
                 i = 0;
                 while i < 10 { s = s + (base + i).y; i = i + 1; }
                 out(s);
             }",
            &[]
        ),
        vec![285]
    );
}

#[test]
fn function_addresses_compare_and_dispatch() {
    assert_eq!(
        out(
            "fn a(v: int) -> int { return v + 1; }
             fn b(v: int) -> int { return v * 2; }
             fn main() {
                 let f = a;
                 out(f == a);
                 out(f == b);
                 f = b;
                 out(icall(f, 21));
             }",
            &[]
        ),
        vec![1, 0, 42]
    );
}

#[test]
fn byte_casts_mask() {
    assert_eq!(
        out("fn main() { out(511 as byte); out((-1) as byte); }", &[]),
        vec![255, 255]
    );
}

#[test]
fn while_condition_with_calls_evaluates_each_iteration() {
    assert_eq!(
        out(
            "global n: int;
             fn tick() -> int { n = n + 1; return n; }
             fn main() {
                 while tick() < 4 { }
                 out(n);
             }",
            &[]
        ),
        vec![4]
    );
}

#[test]
fn globals_zero_initialized() {
    assert_eq!(
        out(
            "global big: [int; 100];
             fn main() {
                 let s = 0; let i = 0;
                 while i < 100 { s = s + big[i]; i = i + 1; }
                 out(s);
             }",
            &[]
        ),
        vec![0]
    );
}
