//! Typed lowering from the MiniC AST to the epic-ir Lcode-like IR.
//!
//! Scalar locals that are never address-taken live in virtual registers;
//! address-taken locals, arrays, and structs live in frame slots. Pointer
//! arithmetic scales by the pointee size (C semantics); `byte` accesses use
//! 1-byte loads/stores with zero extension.

use crate::ast::*;
use crate::lexer::LangError;
use epic_ir::builder::FuncBuilder;
use epic_ir::{CmpKind, FuncId, MemSize, Opcode, Operand, Program, Vreg};
use std::collections::{HashMap, HashSet};

/// A resolved MiniC type.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Ty {
    Int,
    Byte,
    Ptr(Box<Ty>),
    Array(Box<Ty>, u64),
    Struct(usize),
}

impl Ty {
    fn is_scalar(&self) -> bool {
        matches!(self, Ty::Int | Ty::Byte | Ty::Ptr(_))
    }

    fn mem_size(&self) -> MemSize {
        match self {
            Ty::Byte => MemSize::B1,
            _ => MemSize::B8,
        }
    }
}

#[derive(Clone, Debug)]
struct StructInfo {
    fields: Vec<(String, Ty, u64)>,
    size: u64,
    align: u64,
}

#[derive(Clone, Debug)]
enum Local {
    Reg(Vreg, Ty),
    Slot(u64, Ty),
}

struct Ctx {
    structs: Vec<StructInfo>,
    struct_ids: HashMap<String, usize>,
    globals: HashMap<String, (epic_ir::GlobalId, Ty)>,
    fns: HashMap<String, (FuncId, usize, Ty)>, // id, arity, return type
}

/// Compile MiniC source into an IR [`Program`] (entry = `main`).
///
/// # Errors
/// Returns the first syntax or semantic error found.
pub fn compile(src: &str) -> Result<Program, LangError> {
    let unit = crate::parser::parse(src)?;
    let mut prog = Program::new();
    let mut ctx = Ctx {
        structs: Vec::new(),
        struct_ids: HashMap::new(),
        globals: HashMap::new(),
        fns: HashMap::new(),
    };
    // Pass 1: struct layouts (structs may reference earlier structs by
    // value, any struct by pointer).
    for s in &unit.structs {
        if ctx.struct_ids.contains_key(&s.name) {
            return Err(err(s.line, format!("duplicate struct `{}`", s.name)));
        }
        // reserve the id so pointer fields can refer to it
        let id = ctx.structs.len();
        ctx.struct_ids.insert(s.name.clone(), id);
        ctx.structs.push(StructInfo {
            fields: Vec::new(),
            size: 0,
            align: 1,
        });
        let mut fields = Vec::new();
        let mut off = 0u64;
        let mut align = 1u64;
        for (fname, fty) in &s.fields {
            let ty = resolve_ty(&ctx, fty, s.line)?;
            let (fsz, fal) = size_align(&ctx, &ty, s.line)?;
            if fsz == u64::MAX {
                return Err(err(s.line, format!("field `{fname}` has incomplete type")));
            }
            off = (off + fal - 1) & !(fal - 1);
            fields.push((fname.clone(), ty, off));
            off += fsz;
            align = align.max(fal);
        }
        let size = (off + align - 1) & !(align - 1);
        ctx.structs[id] = StructInfo {
            fields,
            size: size.max(1),
            align,
        };
    }
    // Pass 2: globals.
    for g in &unit.globals {
        let ty = resolve_ty(&ctx, &g.ty, g.line)?;
        let (size, _) = size_align(&ctx, &ty, g.line)?;
        let mut init = Vec::new();
        let elem_size = match &ty {
            Ty::Array(e, _) => size_align(&ctx, e, g.line)?.0,
            _ => size,
        };
        for v in &g.init {
            for i in 0..elem_size.min(8) {
                init.push((*v >> (8 * i)) as u8);
            }
        }
        if init.len() as u64 > size {
            return Err(err(
                g.line,
                format!("initializer too large for `{}`", g.name),
            ));
        }
        let id = prog.add_global(g.name.clone(), size, init);
        if ctx.globals.insert(g.name.clone(), (id, ty)).is_some() {
            return Err(err(g.line, format!("duplicate global `{}`", g.name)));
        }
    }
    // Pass 3: function signatures.
    for f in &unit.fns {
        let id = prog.add_func(f.name.clone());
        let ret = match &f.ret {
            Some(t) => resolve_ty(&ctx, t, f.line)?,
            None => Ty::Int,
        };
        if !ret.is_scalar() {
            return Err(err(f.line, format!("`{}` must return a scalar", f.name)));
        }
        if ctx
            .fns
            .insert(f.name.clone(), (id, f.params.len(), ret))
            .is_some()
        {
            return Err(err(f.line, format!("duplicate function `{}`", f.name)));
        }
    }
    // Pass 4: bodies.
    for f in &unit.fns {
        let id = ctx.fns[&f.name].0;
        let func = lower_fn(&ctx, f, id)?;
        prog.funcs[id.index()] = func;
    }
    let main = prog
        .func_by_name("main")
        .ok_or_else(|| err(0, "no `main` function".into()))?;
    prog.entry = main;
    prog.assign_layout();
    if let Err(errors) = epic_ir::verify::verify_program(&prog) {
        return Err(err(0, format!("internal lowering error: {}", errors[0])));
    }
    Ok(prog)
}

fn err(line: u32, msg: String) -> LangError {
    LangError { line, msg }
}

fn resolve_ty(ctx: &Ctx, t: &TypeExpr, line: u32) -> Result<Ty, LangError> {
    Ok(match t {
        TypeExpr::Int => Ty::Int,
        TypeExpr::Byte => Ty::Byte,
        TypeExpr::Ptr(inner) => Ty::Ptr(Box::new(resolve_ty(ctx, inner, line)?)),
        TypeExpr::Array(inner, n) => Ty::Array(Box::new(resolve_ty(ctx, inner, line)?), *n),
        TypeExpr::Named(name) => Ty::Struct(
            *ctx.struct_ids
                .get(name)
                .ok_or_else(|| err(line, format!("unknown struct `{name}`")))?,
        ),
    })
}

#[allow(clippy::only_used_in_recursion)]
fn size_align(ctx: &Ctx, t: &Ty, line: u32) -> Result<(u64, u64), LangError> {
    Ok(match t {
        Ty::Int | Ty::Ptr(_) => (8, 8),
        Ty::Byte => (1, 1),
        Ty::Array(e, n) => {
            let (s, a) = size_align(ctx, e, line)?;
            (s * n, a)
        }
        Ty::Struct(id) => {
            let s = &ctx.structs[*id];
            (s.size, s.align)
        }
    })
}

struct LowerFn<'a> {
    ctx: &'a Ctx,
    b: FuncBuilder,
    scopes: Vec<HashMap<String, Local>>,
    addr_taken: HashSet<String>,
    loop_stack: Vec<(epic_ir::BlockId, epic_ir::BlockId)>, // (continue, break)
    terminated: bool,
}

fn lower_fn(ctx: &Ctx, f: &FnDef, id: FuncId) -> Result<epic_ir::Function, LangError> {
    let mut addr_taken = HashSet::new();
    collect_addr_taken_stmts(&f.body, &mut addr_taken);
    let mut lf = LowerFn {
        ctx,
        b: FuncBuilder::new(id, f.name.clone()),
        scopes: vec![HashMap::new()],
        addr_taken,
        loop_stack: Vec::new(),
        terminated: false,
    };
    for (pname, pty) in &f.params {
        let ty = resolve_ty(ctx, pty, f.line)?;
        if !ty.is_scalar() {
            return Err(err(f.line, format!("parameter `{pname}` must be scalar")));
        }
        let v = lf.b.param();
        if lf.addr_taken.contains(pname) {
            let off = lf.b.frame_alloc(8);
            lf.b.store(ty.mem_size(), Operand::FrameAddr(off), v);
            lf.scopes[0].insert(pname.clone(), Local::Slot(off, ty));
        } else {
            lf.scopes[0].insert(pname.clone(), Local::Reg(v, ty));
        }
    }
    lf.stmts(&f.body)?;
    if !lf.terminated {
        lf.b.ret(Some(Operand::Imm(0)));
    }
    let mut func = lf.b.finish();
    func.remove_unreachable();
    Ok(func)
}

fn collect_addr_taken_stmts(stmts: &[Stmt], out: &mut HashSet<String>) {
    for s in stmts {
        match s {
            Stmt::Let { init, .. } => collect_addr_taken_expr(init, out),
            Stmt::Assign { lhs, rhs, .. } => {
                collect_addr_taken_expr(lhs, out);
                collect_addr_taken_expr(rhs, out);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                collect_addr_taken_expr(cond, out);
                collect_addr_taken_stmts(then_body, out);
                collect_addr_taken_stmts(else_body, out);
            }
            Stmt::While { cond, body } => {
                collect_addr_taken_expr(cond, out);
                collect_addr_taken_stmts(body, out);
            }
            Stmt::Return(Some(e), _) => collect_addr_taken_expr(e, out),
            Stmt::Expr(e) => collect_addr_taken_expr(e, out),
            _ => {}
        }
    }
}

fn collect_addr_taken_expr(e: &Expr, out: &mut HashSet<String>) {
    match &e.kind {
        ExprKind::Addr(inner) => {
            if let ExprKind::Ident(n) = &inner.kind {
                out.insert(n.clone());
            }
            collect_addr_taken_expr(inner, out);
        }
        ExprKind::Bin(_, a, b) | ExprKind::And(a, b) | ExprKind::Or(a, b) => {
            collect_addr_taken_expr(a, out);
            collect_addr_taken_expr(b, out);
        }
        ExprKind::Neg(a)
        | ExprKind::Not(a)
        | ExprKind::BitNot(a)
        | ExprKind::Deref(a)
        | ExprKind::Cast(a, _) => collect_addr_taken_expr(a, out),
        ExprKind::Index(a, i) => {
            collect_addr_taken_expr(a, out);
            collect_addr_taken_expr(i, out);
        }
        ExprKind::Field(a, _) => collect_addr_taken_expr(a, out),
        ExprKind::Call(_, args) => args.iter().for_each(|a| collect_addr_taken_expr(a, out)),
        _ => {}
    }
}

/// An lvalue: either a register-resident scalar or a memory location.
enum Place {
    Reg(Vreg, Ty),
    Mem(Operand, Ty),
}

impl<'a> LowerFn<'a> {
    fn lookup(&self, name: &str) -> Option<Local> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).cloned()
    }

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), LangError> {
        self.scopes.push(HashMap::new());
        for s in body {
            if self.terminated {
                // unreachable code after return/break: lower into a fresh
                // dead block so the builder state stays consistent.
                let dead = self.b.block();
                self.b.switch_to(dead);
                self.terminated = false;
            }
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LangError> {
        match s {
            Stmt::Let {
                name,
                ty,
                init,
                line,
            } => {
                let (val, vty) = self.rvalue(init)?;
                let ty = match ty {
                    Some(t) => resolve_ty(self.ctx, t, *line)?,
                    None => vty,
                };
                if !ty.is_scalar() {
                    // struct/array local: allocate a frame slot; init must
                    // be omitted-by-convention (we require scalar inits).
                    return Err(err(*line, "let initializer must be scalar".into()));
                }
                if self.addr_taken.contains(name) {
                    let off = self.b.frame_alloc(8);
                    self.b.store(ty.mem_size(), Operand::FrameAddr(off), val);
                    self.scopes
                        .last_mut()
                        .unwrap()
                        .insert(name.clone(), Local::Slot(off, ty));
                } else {
                    let v = self.b.mov(val);
                    self.scopes
                        .last_mut()
                        .unwrap()
                        .insert(name.clone(), Local::Reg(v, ty));
                }
                Ok(())
            }
            Stmt::Assign { lhs, rhs, line } => {
                let place = self.place(lhs)?;
                let (val, _) = self.rvalue(rhs)?;
                match place {
                    Place::Reg(v, _) => self.b.mov_to(v, val),
                    Place::Mem(addr, ty) => {
                        if !ty.is_scalar() {
                            return Err(err(*line, "cannot assign aggregate".into()));
                        }
                        self.b.store(ty.mem_size(), addr, val);
                    }
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let tb = self.b.block();
                let eb = self.b.block();
                let join = self.b.block();
                self.cond(cond, tb, eb)?;
                self.b.switch_to(tb);
                self.terminated = false;
                self.stmts(then_body)?;
                if !self.terminated {
                    self.b.br(join);
                }
                self.b.switch_to(eb);
                self.terminated = false;
                self.stmts(else_body)?;
                if !self.terminated {
                    self.b.br(join);
                }
                self.b.switch_to(join);
                self.terminated = false;
                Ok(())
            }
            Stmt::While { cond, body } => {
                // Rotated ("do-while") lowering: an entry test guards the
                // loop, and the continuation test sits at the bottom. This
                // lets CFG merging collapse hot loops into single extended
                // blocks, which superblock unrolling requires.
                let entry_test = self.b.block();
                let bodyb = self.b.block();
                let bottom_test = self.b.block();
                let exit = self.b.block();
                self.b.br(entry_test);
                self.b.switch_to(entry_test);
                self.cond(cond, bodyb, exit)?;
                self.b.switch_to(bodyb);
                self.terminated = false;
                self.loop_stack.push((bottom_test, exit));
                self.stmts(body)?;
                self.loop_stack.pop();
                if !self.terminated {
                    self.b.br(bottom_test);
                }
                self.b.switch_to(bottom_test);
                self.terminated = false;
                self.cond(cond, bodyb, exit)?;
                self.b.switch_to(exit);
                self.terminated = false;
                Ok(())
            }
            Stmt::Break(line) => {
                let (_, exit) = *self
                    .loop_stack
                    .last()
                    .ok_or_else(|| err(*line, "break outside loop".into()))?;
                self.b.br(exit);
                self.terminated = true;
                Ok(())
            }
            Stmt::Continue(line) => {
                let (head, _) = *self
                    .loop_stack
                    .last()
                    .ok_or_else(|| err(*line, "continue outside loop".into()))?;
                self.b.br(head);
                self.terminated = true;
                Ok(())
            }
            Stmt::Return(e, _) => {
                let val = match e {
                    Some(e) => Some(self.rvalue(e)?.0),
                    None => Some(Operand::Imm(0)),
                };
                self.b.ret(val);
                self.terminated = true;
                Ok(())
            }
            Stmt::Expr(e) => {
                self.rvalue(e)?;
                Ok(())
            }
        }
    }

    /// Lower `e` as a branch: jump to `tb` when true, `fb` when false.
    fn cond(
        &mut self,
        e: &Expr,
        tb: epic_ir::BlockId,
        fb: epic_ir::BlockId,
    ) -> Result<(), LangError> {
        match &e.kind {
            ExprKind::And(a, b) => {
                let mid = self.b.block();
                self.cond(a, mid, fb)?;
                self.b.switch_to(mid);
                self.cond(b, tb, fb)
            }
            ExprKind::Or(a, b) => {
                let mid = self.b.block();
                self.cond(a, tb, mid)?;
                self.b.switch_to(mid);
                self.cond(b, tb, fb)
            }
            ExprKind::Not(a) => self.cond(a, fb, tb),
            ExprKind::Bin(op, a, b) if cmp_kind(*op).is_some() => {
                let (va, ta) = self.rvalue(a)?;
                let (vb, tbt) = self.rvalue(b)?;
                let unsigned = matches!(ta, Ty::Ptr(_)) || matches!(tbt, Ty::Ptr(_));
                let kind = cmp_kind_for(*op, unsigned);
                let p = self.b.cmp(kind, va, vb);
                self.b.brc(p, tb);
                self.b.br(fb);
                Ok(())
            }
            _ => {
                let (v, _) = self.rvalue(e)?;
                let p = self.b.cmp(CmpKind::Ne, v, 0i64);
                self.b.brc(p, tb);
                self.b.br(fb);
                Ok(())
            }
        }
    }

    /// Lower `e` as an lvalue.
    fn place(&mut self, e: &Expr) -> Result<Place, LangError> {
        match &e.kind {
            ExprKind::Ident(name) => {
                if let Some(local) = self.lookup(name) {
                    return Ok(match local {
                        Local::Reg(v, ty) => Place::Reg(v, ty),
                        Local::Slot(off, ty) => Place::Mem(Operand::FrameAddr(off), ty),
                    });
                }
                if let Some((gid, ty)) = self.ctx.globals.get(name) {
                    return Ok(Place::Mem(Operand::Global(*gid), ty.clone()));
                }
                Err(err(e.line, format!("unknown variable `{name}`")))
            }
            ExprKind::Deref(inner) => {
                let (addr, ty) = self.rvalue(inner)?;
                let pointee = match ty {
                    Ty::Ptr(p) => *p,
                    Ty::Int => Ty::Int, // permissive: *int acts as *int-as-*int
                    _ => return Err(err(e.line, "cannot dereference non-pointer".into())),
                };
                Ok(Place::Mem(addr, pointee))
            }
            ExprKind::Index(base, idx) => {
                let (base_addr, elem_ty) = self.index_base(base, e.line)?;
                let (iv, _) = self.rvalue(idx)?;
                let (esz, _) = size_align(self.ctx, &elem_ty, e.line)?;
                let scaled = self.scale(iv, esz);
                let addr = self.b.binop(Opcode::Add, base_addr, scaled);
                Ok(Place::Mem(Operand::Reg(addr), elem_ty))
            }
            ExprKind::Field(base, fname) => {
                let (base_addr, sid) = self.field_base(base, e.line)?;
                let sinfo = &self.ctx.structs[sid];
                let (_, fty, off) = sinfo
                    .fields
                    .iter()
                    .find(|(n, _, _)| n == fname)
                    .ok_or_else(|| err(e.line, format!("no field `{fname}`")))?
                    .clone();
                let addr = self.b.binop(Opcode::Add, base_addr, off as i64);
                Ok(Place::Mem(Operand::Reg(addr), fty))
            }
            _ => Err(err(e.line, "expression is not an lvalue".into())),
        }
    }

    /// Base address + element type for an indexing expression.
    fn index_base(&mut self, base: &Expr, line: u32) -> Result<(Operand, Ty), LangError> {
        // Try as a place first (arrays), else as a pointer rvalue.
        if let Ok(p) = self.place(base) {
            match p {
                Place::Mem(addr, Ty::Array(e, _)) => return Ok((addr, *e)),
                Place::Mem(addr, Ty::Ptr(e)) => {
                    let v = self.b.load(MemSize::B8, addr);
                    return Ok((Operand::Reg(v), *e));
                }
                Place::Reg(v, Ty::Ptr(e)) => return Ok((Operand::Reg(v), *e)),
                Place::Reg(v, Ty::Int) => return Ok((Operand::Reg(v), Ty::Int)),
                Place::Mem(addr, Ty::Int) => {
                    let v = self.b.load(MemSize::B8, addr);
                    return Ok((Operand::Reg(v), Ty::Int));
                }
                _ => return Err(err(line, "cannot index this type".into())),
            }
        }
        let (v, ty) = self.rvalue(base)?;
        match ty {
            Ty::Ptr(e) => Ok((v, *e)),
            Ty::Int => Ok((v, Ty::Int)),
            _ => Err(err(line, "cannot index non-pointer".into())),
        }
    }

    /// Base address + struct id for a field access (auto-deref one level).
    fn field_base(&mut self, base: &Expr, line: u32) -> Result<(Operand, usize), LangError> {
        if let Ok(p) = self.place(base) {
            match p {
                Place::Mem(addr, Ty::Struct(id)) => return Ok((addr, id)),
                Place::Mem(addr, Ty::Ptr(inner)) => {
                    if let Ty::Struct(id) = *inner {
                        let v = self.b.load(MemSize::B8, addr);
                        return Ok((Operand::Reg(v), id));
                    }
                    return Err(err(line, "field access on non-struct pointer".into()));
                }
                Place::Reg(v, Ty::Ptr(inner)) => {
                    if let Ty::Struct(id) = *inner {
                        return Ok((Operand::Reg(v), id));
                    }
                    return Err(err(line, "field access on non-struct pointer".into()));
                }
                _ => return Err(err(line, "field access on non-struct".into())),
            }
        }
        let (v, ty) = self.rvalue(base)?;
        if let Ty::Ptr(inner) = ty {
            if let Ty::Struct(id) = *inner {
                return Ok((v, id));
            }
        }
        Err(err(line, "field access on non-struct".into()))
    }

    fn scale(&mut self, v: Operand, size: u64) -> Operand {
        if size == 1 {
            return v;
        }
        if size.is_power_of_two() {
            Operand::Reg(self.b.binop(Opcode::Shl, v, size.trailing_zeros() as i64))
        } else {
            Operand::Reg(self.b.binop(Opcode::Mul, v, size as i64))
        }
    }

    /// Lower `e` as an rvalue.
    fn rvalue(&mut self, e: &Expr) -> Result<(Operand, Ty), LangError> {
        match &e.kind {
            ExprKind::Int(v) => Ok((Operand::Imm(*v), Ty::Int)),
            ExprKind::Ident(name) => {
                // function reference?
                if self.lookup(name).is_none() && !self.ctx.globals.contains_key(name) {
                    if let Some((fid, _, _)) = self.ctx.fns.get(name) {
                        return Ok((Operand::FuncAddr(*fid), Ty::Int));
                    }
                }
                let p = self.place(e)?;
                self.read_place(p, e.line)
            }
            ExprKind::Deref(_) | ExprKind::Index(_, _) | ExprKind::Field(_, _) => {
                let p = self.place(e)?;
                self.read_place(p, e.line)
            }
            ExprKind::Addr(inner) => {
                let p = self.place(inner)?;
                match p {
                    Place::Mem(addr, ty) => {
                        let v = self.b.mov(addr);
                        Ok((Operand::Reg(v), Ty::Ptr(Box::new(ty))))
                    }
                    Place::Reg(_, _) => Err(err(
                        e.line,
                        "cannot take address of register variable".into(),
                    )),
                }
            }
            ExprKind::Bin(op, a, b) => self.bin(*op, a, b, e.line),
            ExprKind::And(_, _) | ExprKind::Or(_, _) => {
                // value context: materialize 0/1 via control flow
                let tb = self.b.block();
                let fb = self.b.block();
                let join = self.b.block();
                let r = self.b.vreg();
                self.cond(e, tb, fb)?;
                self.b.switch_to(tb);
                self.b.mov_to(r, 1i64);
                self.b.br(join);
                self.b.switch_to(fb);
                self.b.mov_to(r, 0i64);
                self.b.br(join);
                self.b.switch_to(join);
                Ok((Operand::Reg(r), Ty::Int))
            }
            ExprKind::Neg(a) => {
                let (v, _) = self.rvalue(a)?;
                Ok((Operand::Reg(self.b.binop(Opcode::Sub, 0i64, v)), Ty::Int))
            }
            ExprKind::Not(a) => {
                let (v, _) = self.rvalue(a)?;
                Ok((Operand::Reg(self.b.cmp(CmpKind::Eq, v, 0i64)), Ty::Int))
            }
            ExprKind::BitNot(a) => {
                let (v, _) = self.rvalue(a)?;
                Ok((Operand::Reg(self.b.binop(Opcode::Xor, v, -1i64)), Ty::Int))
            }
            ExprKind::Call(name, args) => self.call(name, args, e.line),
            ExprKind::Cast(a, ty) => {
                let (v, _) = self.rvalue(a)?;
                let to = resolve_ty(self.ctx, ty, e.line)?;
                match to {
                    Ty::Byte => Ok((
                        Operand::Reg(self.b.binop(Opcode::And, v, 0xFFi64)),
                        Ty::Byte,
                    )),
                    other => Ok((v, other)),
                }
            }
        }
    }

    fn read_place(&mut self, p: Place, line: u32) -> Result<(Operand, Ty), LangError> {
        match p {
            Place::Reg(v, ty) => Ok((Operand::Reg(v), ty)),
            Place::Mem(addr, ty) => {
                if ty.is_scalar() {
                    let v = self.b.load(ty.mem_size(), addr);
                    Ok((Operand::Reg(v), ty))
                } else {
                    // aggregate rvalue decays to its address
                    let decayed = match &ty {
                        Ty::Array(e, _) => Ty::Ptr(e.clone()),
                        other => Ty::Ptr(Box::new(other.clone())),
                    };
                    let v = self.b.mov(addr);
                    let _ = line;
                    Ok((Operand::Reg(v), decayed))
                }
            }
        }
    }

    fn bin(
        &mut self,
        op: BinOp,
        a: &Expr,
        b: &Expr,
        line: u32,
    ) -> Result<(Operand, Ty), LangError> {
        let (va, ta) = self.rvalue(a)?;
        let (vb, tb) = self.rvalue(b)?;
        if cmp_kind(op).is_some() {
            let unsigned = matches!(ta, Ty::Ptr(_)) || matches!(tb, Ty::Ptr(_));
            let kind = cmp_kind_for(op, unsigned);
            return Ok((Operand::Reg(self.b.cmp(kind, va, vb)), Ty::Int));
        }
        // pointer arithmetic scaling
        if let (BinOp::Add | BinOp::Sub, Ty::Ptr(elem)) = (op, &ta) {
            if !matches!(tb, Ty::Ptr(_)) {
                let (esz, _) = size_align(self.ctx, elem, line)?;
                let scaled = self.scale(vb, esz);
                let opc = if op == BinOp::Add {
                    Opcode::Add
                } else {
                    Opcode::Sub
                };
                return Ok((Operand::Reg(self.b.binop(opc, va, scaled)), ta.clone()));
            }
            // ptr - ptr: element difference
            if op == BinOp::Sub {
                let (esz, _) = size_align(self.ctx, elem, line)?;
                let diff = self.b.binop(Opcode::Sub, va, vb);
                let v = if esz == 1 {
                    diff
                } else if esz.is_power_of_two() {
                    self.b.binop(Opcode::Sar, diff, esz.trailing_zeros() as i64)
                } else {
                    self.b.binop(Opcode::Div, diff, esz as i64)
                };
                return Ok((Operand::Reg(v), Ty::Int));
            }
        }
        let opc = match op {
            BinOp::Add => Opcode::Add,
            BinOp::Sub => Opcode::Sub,
            BinOp::Mul => Opcode::Mul,
            BinOp::Div => Opcode::Div,
            BinOp::Rem => Opcode::Rem,
            BinOp::And => Opcode::And,
            BinOp::Or => Opcode::Or,
            BinOp::Xor => Opcode::Xor,
            BinOp::Shl => Opcode::Shl,
            BinOp::Shr => Opcode::Shr,
            _ => unreachable!("comparisons handled above"),
        };
        let ty = if matches!(ta, Ty::Ptr(_)) {
            ta.clone()
        } else {
            Ty::Int
        };
        Ok((Operand::Reg(self.b.binop(opc, va, vb)), ty))
    }

    fn call(&mut self, name: &str, args: &[Expr], line: u32) -> Result<(Operand, Ty), LangError> {
        // builtins
        match name {
            "out" => {
                if args.len() != 1 {
                    return Err(err(line, "out() takes one argument".into()));
                }
                let (v, _) = self.rvalue(&args[0])?;
                self.b.out(v);
                return Ok((Operand::Imm(0), Ty::Int));
            }
            "alloc" => {
                if args.len() != 1 {
                    return Err(err(line, "alloc() takes one argument".into()));
                }
                let (v, _) = self.rvalue(&args[0])?;
                let r = self.b.alloc(v);
                return Ok((Operand::Reg(r), Ty::Int));
            }
            "icall" => {
                if args.is_empty() {
                    return Err(err(line, "icall() needs a target".into()));
                }
                let (fp, _) = self.rvalue(&args[0])?;
                let mut ops = Vec::new();
                for a in &args[1..] {
                    ops.push(self.rvalue(a)?.0);
                }
                let r = self.b.call(fp, &ops);
                return Ok((Operand::Reg(r), Ty::Int));
            }
            _ => {}
        }
        let (fid, arity, ret_ty) = self
            .ctx
            .fns
            .get(name)
            .cloned()
            .ok_or_else(|| err(line, format!("unknown function `{name}`")))?;
        if args.len() != arity {
            return Err(err(
                line,
                format!("`{name}` expects {arity} arguments, got {}", args.len()),
            ));
        }
        let mut ops = Vec::new();
        for a in args {
            ops.push(self.rvalue(a)?.0);
        }
        let r = self.b.call(Operand::FuncAddr(fid), &ops);
        Ok((Operand::Reg(r), ret_ty))
    }
}

fn cmp_kind(op: BinOp) -> Option<CmpKind> {
    Some(match op {
        BinOp::Eq => CmpKind::Eq,
        BinOp::Ne => CmpKind::Ne,
        BinOp::Lt => CmpKind::SLt,
        BinOp::Le => CmpKind::SLe,
        BinOp::Gt => CmpKind::SGt,
        BinOp::Ge => CmpKind::SGe,
        _ => return None,
    })
}

fn cmp_kind_for(op: BinOp, unsigned: bool) -> CmpKind {
    match (op, unsigned) {
        (BinOp::Eq, _) => CmpKind::Eq,
        (BinOp::Ne, _) => CmpKind::Ne,
        (BinOp::Lt, false) => CmpKind::SLt,
        (BinOp::Le, false) => CmpKind::SLe,
        (BinOp::Gt, false) => CmpKind::SGt,
        (BinOp::Ge, false) => CmpKind::SGe,
        (BinOp::Lt, true) => CmpKind::ULt,
        (BinOp::Le, true) => CmpKind::ULe,
        (BinOp::Gt, true) => CmpKind::UGt,
        (BinOp::Ge, true) => CmpKind::UGe,
        _ => unreachable!("not a comparison"),
    }
}
