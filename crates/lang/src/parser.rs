//! MiniC recursive-descent parser.

use crate::ast::*;
use crate::lexer::{lex, LangError, SpannedTok, Tok};

/// Parse a MiniC translation unit.
///
/// # Errors
/// Returns the first syntax error with its line number.
pub fn parse(src: &str) -> Result<Unit, LangError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.unit()
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), LangError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn err(&self, msg: String) -> LangError {
        LangError {
            line: self.line(),
            msg,
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(LangError {
                line: self.toks[self.pos.saturating_sub(1)].line,
                msg: format!("expected identifier, found {other}"),
            }),
        }
    }

    fn unit(&mut self) -> Result<Unit, LangError> {
        let mut u = Unit::default();
        loop {
            match self.peek() {
                Tok::Eof => return Ok(u),
                Tok::Struct => u.structs.push(self.struct_def()?),
                Tok::Global => u.globals.push(self.global_def()?),
                Tok::Fn => u.fns.push(self.fn_def()?),
                other => return Err(self.err(format!("expected item, found {other}"))),
            }
        }
    }

    fn struct_def(&mut self) -> Result<StructDef, LangError> {
        let line = self.line();
        self.expect(&Tok::Struct)?;
        let name = self.ident()?;
        self.expect(&Tok::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(&Tok::RBrace) {
            let fname = self.ident()?;
            self.expect(&Tok::Colon)?;
            let ty = self.type_expr()?;
            fields.push((fname, ty));
            if !self.eat(&Tok::Comma) {
                self.expect(&Tok::RBrace)?;
                break;
            }
        }
        Ok(StructDef { name, fields, line })
    }

    fn global_def(&mut self) -> Result<GlobalDef, LangError> {
        let line = self.line();
        self.expect(&Tok::Global)?;
        let name = self.ident()?;
        self.expect(&Tok::Colon)?;
        let ty = self.type_expr()?;
        let mut init = Vec::new();
        if self.eat(&Tok::Assign) {
            if self.eat(&Tok::LBracket) {
                while !self.eat(&Tok::RBracket) {
                    init.push(self.const_int()?);
                    if !self.eat(&Tok::Comma) {
                        self.expect(&Tok::RBracket)?;
                        break;
                    }
                }
            } else {
                init.push(self.const_int()?);
            }
        }
        self.expect(&Tok::Semi)?;
        Ok(GlobalDef {
            name,
            ty,
            init,
            line,
        })
    }

    fn const_int(&mut self) -> Result<i64, LangError> {
        let neg = self.eat(&Tok::Minus);
        match self.bump() {
            Tok::Int(v) => Ok(if neg { v.wrapping_neg() } else { v }),
            other => Err(self.err(format!("expected integer, found {other}"))),
        }
    }

    fn fn_def(&mut self) -> Result<FnDef, LangError> {
        let line = self.line();
        self.expect(&Tok::Fn)?;
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        while !self.eat(&Tok::RParen) {
            let pname = self.ident()?;
            self.expect(&Tok::Colon)?;
            let ty = self.type_expr()?;
            params.push((pname, ty));
            if !self.eat(&Tok::Comma) {
                self.expect(&Tok::RParen)?;
                break;
            }
        }
        let ret = if self.eat(&Tok::Arrow) {
            Some(self.type_expr()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(FnDef {
            name,
            params,
            ret,
            body,
            line,
        })
    }

    fn type_expr(&mut self) -> Result<TypeExpr, LangError> {
        match self.bump() {
            Tok::Star => Ok(TypeExpr::Ptr(Box::new(self.type_expr()?))),
            Tok::LBracket => {
                let elem = self.type_expr()?;
                self.expect(&Tok::Semi)?;
                let n = self.const_int()?;
                if n < 0 {
                    return Err(self.err("negative array length".into()));
                }
                self.expect(&Tok::RBracket)?;
                Ok(TypeExpr::Array(Box::new(elem), n as u64))
            }
            Tok::Ident(s) => match s.as_str() {
                "int" => Ok(TypeExpr::Int),
                "byte" => Ok(TypeExpr::Byte),
                _ => Ok(TypeExpr::Named(s)),
            },
            other => Err(self.err(format!("expected type, found {other}"))),
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let line = self.line();
        match self.peek() {
            Tok::Let => {
                self.bump();
                let name = self.ident()?;
                let ty = if self.eat(&Tok::Colon) {
                    Some(self.type_expr()?)
                } else {
                    None
                };
                self.expect(&Tok::Assign)?;
                let init = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Let {
                    name,
                    ty,
                    init,
                    line,
                })
            }
            Tok::If => self.if_stmt(),
            Tok::While => {
                self.bump();
                let cond = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::Break => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Break(line))
            }
            Tok::Continue => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Continue(line))
            }
            Tok::Return => {
                self.bump();
                let e = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Return(e, line))
            }
            _ => {
                let e = self.expr()?;
                if self.eat(&Tok::Assign) {
                    let rhs = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Assign { lhs: e, rhs, line })
                } else {
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Expr(e))
                }
            }
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, LangError> {
        self.expect(&Tok::If)?;
        let cond = self.expr()?;
        let then_body = self.block()?;
        let else_body = if self.eat(&Tok::Else) {
            if self.peek() == &Tok::If {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
        })
    }

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut e = self.and_expr()?;
        while self.peek() == &Tok::OrOr {
            let line = self.line();
            self.bump();
            let r = self.and_expr()?;
            e = Expr {
                kind: ExprKind::Or(Box::new(e), Box::new(r)),
                line,
            };
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut e = self.bin_expr(0)?;
        while self.peek() == &Tok::AndAnd {
            let line = self.line();
            self.bump();
            let r = self.bin_expr(0)?;
            e = Expr {
                kind: ExprKind::And(Box::new(e), Box::new(r)),
                line,
            };
        }
        Ok(e)
    }

    /// Precedence-climbing over the non-short-circuit binary operators.
    fn bin_expr(&mut self, min_prec: u8) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::Pipe => (BinOp::Or, 1),
                Tok::Caret => (BinOp::Xor, 2),
                Tok::Amp => (BinOp::And, 3),
                Tok::Eq => (BinOp::Eq, 4),
                Tok::Ne => (BinOp::Ne, 4),
                Tok::Lt => (BinOp::Lt, 5),
                Tok::Le => (BinOp::Le, 5),
                Tok::Gt => (BinOp::Gt, 5),
                Tok::Ge => (BinOp::Ge, 5),
                Tok::Shl => (BinOp::Shl, 6),
                Tok::Shr => (BinOp::Shr, 6),
                Tok::Plus => (BinOp::Add, 7),
                Tok::Minus => (BinOp::Sub, 7),
                Tok::Star => (BinOp::Mul, 8),
                Tok::Slash => (BinOp::Div, 8),
                Tok::Percent => (BinOp::Rem, 8),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.bin_expr(prec + 1)?;
            lhs = Expr {
                kind: ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)),
                line,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        let line = self.line();
        let kind = match self.peek() {
            Tok::Minus => {
                self.bump();
                ExprKind::Neg(Box::new(self.unary()?))
            }
            Tok::Bang => {
                self.bump();
                ExprKind::Not(Box::new(self.unary()?))
            }
            Tok::Tilde => {
                self.bump();
                ExprKind::BitNot(Box::new(self.unary()?))
            }
            Tok::Star => {
                self.bump();
                ExprKind::Deref(Box::new(self.unary()?))
            }
            Tok::Amp => {
                self.bump();
                ExprKind::Addr(Box::new(self.unary()?))
            }
            _ => return self.postfix(),
        };
        Ok(Expr { kind, line })
    }

    fn postfix(&mut self) -> Result<Expr, LangError> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            match self.peek() {
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    e = Expr {
                        kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                        line,
                    };
                }
                Tok::Dot => {
                    self.bump();
                    let f = self.ident()?;
                    e = Expr {
                        kind: ExprKind::Field(Box::new(e), f),
                        line,
                    };
                }
                Tok::As => {
                    self.bump();
                    let ty = self.type_expr()?;
                    e = Expr {
                        kind: ExprKind::Cast(Box::new(e), ty),
                        line,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(Expr {
                kind: ExprKind::Int(v),
                line,
            }),
            Tok::Ident(name) => {
                if self.peek() == &Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    while !self.eat(&Tok::RParen) {
                        args.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            self.expect(&Tok::RParen)?;
                            break;
                        }
                    }
                    Ok(Expr {
                        kind: ExprKind::Call(name, args),
                        line,
                    })
                } else {
                    Ok(Expr {
                        kind: ExprKind::Ident(name),
                        line,
                    })
                }
            }
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            other => Err(LangError {
                line,
                msg: format!("expected expression, found {other}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_with_control_flow() {
        let u = parse(
            "fn max(a: int, b: int) -> int {
                if a > b { return a; } else { return b; }
            }",
        )
        .unwrap();
        assert_eq!(u.fns.len(), 1);
        assert_eq!(u.fns[0].params.len(), 2);
        assert!(matches!(u.fns[0].body[0], Stmt::If { .. }));
    }

    #[test]
    fn parses_struct_and_global() {
        let u = parse(
            "struct Node { next: *Node, val: int }
             global table: [int; 64] = [1, 2, -3];
             global count: int = 5;",
        )
        .unwrap();
        assert_eq!(u.structs[0].fields.len(), 2);
        assert_eq!(u.globals[0].init, vec![1, 2, -3]);
        assert_eq!(u.globals[1].init, vec![5]);
        assert_eq!(
            u.globals[0].ty,
            TypeExpr::Array(Box::new(TypeExpr::Int), 64)
        );
    }

    #[test]
    fn precedence_mul_over_add_over_cmp() {
        let u = parse("fn f() -> int { return 1 + 2 * 3 < 4; }").unwrap();
        let Stmt::Return(Some(e), _) = &u.fns[0].body[0] else {
            panic!()
        };
        let ExprKind::Bin(BinOp::Lt, l, _) = &e.kind else {
            panic!("expected < at top, got {:?}", e.kind)
        };
        let ExprKind::Bin(BinOp::Add, _, r) = &l.kind else {
            panic!()
        };
        assert!(matches!(r.kind, ExprKind::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn parses_postfix_chains() {
        let u = parse("fn f(p: *Node) -> int { return p.next.val + a[i+1] as int; }").unwrap();
        assert_eq!(u.fns.len(), 1);
    }

    #[test]
    fn parses_while_break_continue() {
        let u = parse(
            "fn f() { let i = 0; while i < 10 { i = i + 1; if i == 5 { continue; } if i == 8 { break; } } }",
        )
        .unwrap();
        assert!(matches!(u.fns[0].body[1], Stmt::While { .. }));
    }

    #[test]
    fn error_has_line() {
        let e = parse("fn f() {\n let x = ;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn else_if_chains() {
        let u = parse("fn f(x: int) -> int { if x == 1 { return 1; } else if x == 2 { return 2; } else { return 3; } }").unwrap();
        let Stmt::If { else_body, .. } = &u.fns[0].body[0] else {
            panic!()
        };
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn short_circuit_nodes() {
        let u = parse("fn f(a: int, b: int) -> int { return a && b || !a; }").unwrap();
        let Stmt::Return(Some(e), _) = &u.fns[0].body[0] else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Or(_, _)));
    }
}
