//! # epic-lang
//!
//! MiniC: the small C-like language the IMPACT EPIC reproduction compiles,
//! standing in for the paper's C frontend (Pcode generation + lowering in
//! Fig. 4 of the paper). The twelve SPECint2000 stand-in workloads are
//! written in MiniC; see `epic-workloads`.
//!
//! ## Language summary
//!
//! * Types: `int` (i64), `byte` (u8, zero-extending), `*T`, `[T; N]`,
//!   named structs. Pointer arithmetic scales by the pointee size.
//! * Items: `fn name(a: int, p: *Node) -> int { .. }`,
//!   `struct Node { next: *Node, val: int }`,
//!   `global table: [int; 64] = [1, 2, 3];`
//! * Statements: `let`, assignment to lvalues (`x`, `*p`, `a[i]`, `p.f`),
//!   `if`/`else`, `while`, `break`, `continue`, `return`.
//! * Builtins: `out(v)` (observable output stream), `alloc(nbytes)` (heap
//!   bump allocation, returns an address as `int`), `icall(fp, args...)`
//!   (indirect call through a function value; a bare function name
//!   evaluates to its address).
//! * Aggregate locals are not supported: use globals or `alloc`.
//!
//! ## Example
//!
//! ```
//! let prog = epic_lang::compile(
//!     "fn main() -> int {
//!          let s = 0;
//!          let i = 0;
//!          while i < 10 { s = s + i; i = i + 1; }
//!          out(s);
//!          return s;
//!      }",
//! ).unwrap();
//! let r = epic_ir::interp::run(&prog, &[], Default::default()).unwrap();
//! assert_eq!(r.output, vec![45]);
//! ```

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use lexer::LangError;
pub use lower::compile;

#[cfg(test)]
mod tests {
    use epic_ir::interp::{run, InterpOptions};

    fn run_src(src: &str, args: &[i64]) -> Vec<u64> {
        let prog = super::compile(src).unwrap();
        run(&prog, args, InterpOptions::default()).unwrap().output
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(
            run_src(
                "fn main() { out(1 + 2 * 3); out(10 % 4); out(7 / 2); out(-5 / 2); }",
                &[]
            ),
            vec![7, 2, 3, (-2i64) as u64]
        );
    }

    #[test]
    fn bitwise_and_shifts() {
        assert_eq!(
            run_src(
                "fn main() { out(6 & 3); out(6 | 3); out(6 ^ 3); out(1 << 10); out(-8 >> 1); out(~0); }",
                &[]
            ),
            vec![
                2,
                7,
                5,
                1024,
                ((-8i64 as u64) >> 1),
                u64::MAX
            ]
        );
    }

    #[test]
    fn comparisons_yield_01() {
        assert_eq!(
            run_src(
                "fn main() { out(3 < 4); out(4 <= 3); out(-1 < 1); out(!0); out(!7); }",
                &[]
            ),
            vec![1, 0, 1, 1, 0]
        );
    }

    #[test]
    fn short_circuit_evaluation() {
        // boom() would trap via wild deref if called; && must skip it.
        let out = run_src(
            "fn boom() -> int { let p = 16 as *int; return *p; }
             fn main() {
                 let x = 0;
                 if x != 0 && boom() != 0 { out(1); } else { out(2); }
                 if x == 0 || boom() != 0 { out(3); }
                 out(x != 0 && 1 == 1);
             }",
            &[],
        );
        assert_eq!(out, vec![2, 3, 0]);
    }

    #[test]
    fn while_with_break_continue() {
        assert_eq!(
            run_src(
                "fn main() {
                     let i = 0; let s = 0;
                     while 1 {
                         i = i + 1;
                         if i > 10 { break; }
                         if i % 2 == 0 { continue; }
                         s = s + i;
                     }
                     out(s);
                 }",
                &[]
            ),
            vec![25]
        );
    }

    #[test]
    fn functions_recursion() {
        assert_eq!(
            run_src(
                "fn fib(n: int) -> int {
                     if n < 2 { return n; }
                     return fib(n - 1) + fib(n - 2);
                 }
                 fn main() { out(fib(15)); }",
                &[]
            ),
            vec![610]
        );
    }

    #[test]
    fn globals_arrays_and_init() {
        assert_eq!(
            run_src(
                "global tab: [int; 8] = [5, 10, 15];
                 global sum: int;
                 fn main() {
                     let i = 0;
                     while i < 8 { sum = sum + tab[i]; i = i + 1; }
                     out(sum);
                     tab[7] = 100;
                     out(tab[7]);
                 }",
                &[]
            ),
            vec![30, 100]
        );
    }

    #[test]
    fn byte_arrays_zero_extend() {
        assert_eq!(
            run_src(
                "global buf: [byte; 16];
                 fn main() {
                     buf[0] = 300;     // truncates to 44
                     out(buf[0]);
                     buf[1] = 255;
                     out(buf[1] + 1);  // zero-extended
                 }",
                &[]
            ),
            vec![44, 256]
        );
    }

    #[test]
    fn structs_pointers_heap() {
        assert_eq!(
            run_src(
                "struct Node { next: *Node, val: int }
                 fn main() {
                     let a = alloc(16) as *Node;
                     let b = alloc(16) as *Node;
                     a.val = 1; a.next = b;
                     b.val = 2; b.next = 0 as *Node;
                     let p = a;
                     let s = 0;
                     while p as int != 0 { s = s + p.val; p = p.next; }
                     out(s);
                 }",
                &[]
            ),
            vec![3]
        );
    }

    #[test]
    fn pointer_arithmetic_scales() {
        assert_eq!(
            run_src(
                "global arr: [int; 4] = [10, 20, 30, 40];
                 fn main() {
                     let p = &arr[0];
                     out(*(p + 2));
                     let q = p + 3;
                     out(q - p);
                 }",
                &[]
            ),
            vec![30, 3]
        );
    }

    #[test]
    fn address_of_local_and_call_by_pointer() {
        assert_eq!(
            run_src(
                "fn bump(p: *int) { *p = *p + 1; }
                 fn main() {
                     let x = 41;
                     bump(&x);
                     out(x);
                 }",
                &[]
            ),
            vec![42]
        );
    }

    #[test]
    fn indirect_calls() {
        assert_eq!(
            run_src(
                "fn double(x: int) -> int { return 2 * x; }
                 fn triple(x: int) -> int { return 3 * x; }
                 fn main() {
                     let fp = double;
                     out(icall(fp, 21));
                     fp = triple;
                     out(icall(fp, 5));
                 }",
                &[]
            ),
            vec![42, 15]
        );
    }

    #[test]
    fn main_receives_args() {
        let prog = super::compile("fn main(a: int, b: int) { out(a * b); }").unwrap();
        let r = run(&prog, &[6, 7], InterpOptions::default()).unwrap();
        assert_eq!(r.output, vec![42]);
    }

    #[test]
    fn nested_field_chains() {
        assert_eq!(
            run_src(
                "struct Inner { v: int }
                 struct Outer { in_: Inner, p: *Inner }
                 global o: Outer;
                 global i2: Inner;
                 fn main() {
                     o.in_.v = 5;
                     o.p = &i2;
                     o.p.v = 7;
                     out(o.in_.v + i2.v);
                 }",
                &[]
            ),
            vec![12]
        );
    }

    #[test]
    fn semantic_errors_reported() {
        assert!(super::compile("fn main() { out(nosuch); }").is_err());
        assert!(super::compile("fn main() { nosuchfn(); }").is_err());
        assert!(super::compile("fn f() {}").is_err()); // no main
        assert!(super::compile("fn main() { break; }").is_err());
    }

    #[test]
    fn unreachable_code_after_return_is_tolerated() {
        assert_eq!(
            run_src("fn main() { out(1); return; out(2); }", &[]),
            vec![1]
        );
    }
}
