//! MiniC abstract syntax tree.

/// A surface type expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TypeExpr {
    /// `int` — 64-bit signed integer (also used for raw addresses).
    Int,
    /// `byte` — 8-bit unsigned; loads zero-extend.
    Byte,
    /// `*T`.
    Ptr(Box<TypeExpr>),
    /// `[T; N]`.
    Array(Box<TypeExpr>, u64),
    /// A named struct.
    Named(String),
}

/// Binary operators (short-circuit `&&`/`||` are desugared in the parser to
/// [`Expr::And`] / [`Expr::Or`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// An expression, tagged with the source line for diagnostics.
#[derive(Clone, Debug)]
pub struct Expr {
    pub kind: ExprKind,
    pub line: u32,
}

/// Expression kinds.
#[derive(Clone, Debug)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Variable / global / function reference.
    Ident(String),
    /// `a <op> b`.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Short-circuit `a && b`.
    And(Box<Expr>, Box<Expr>),
    /// Short-circuit `a || b`.
    Or(Box<Expr>, Box<Expr>),
    /// `-a`.
    Neg(Box<Expr>),
    /// `!a` (logical not, yields 0/1).
    Not(Box<Expr>),
    /// `~a` (bitwise not).
    BitNot(Box<Expr>),
    /// `*a` (load through pointer).
    Deref(Box<Expr>),
    /// `&lvalue`.
    Addr(Box<Expr>),
    /// `a[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// `a.f` (auto-derefs one pointer level).
    Field(Box<Expr>, String),
    /// Direct call `f(args)`; `f` must name a function or builtin.
    Call(String, Vec<Expr>),
    /// `e as T` (reinterpret; `as byte` masks to 8 bits).
    Cast(Box<Expr>, TypeExpr),
}

/// A statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `let x: T = e;` (type optional when inferable from `e`).
    Let {
        name: String,
        ty: Option<TypeExpr>,
        init: Expr,
        line: u32,
    },
    /// `lvalue = e;`
    Assign {
        lhs: Expr,
        rhs: Expr,
        line: u32,
    },
    /// `if c { .. } else { .. }`.
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    /// `while c { .. }`.
    While {
        cond: Expr,
        body: Vec<Stmt>,
    },
    Break(u32),
    Continue(u32),
    /// `return e?;`
    Return(Option<Expr>, u32),
    /// Expression statement (calls).
    Expr(Expr),
}

/// A function definition.
#[derive(Clone, Debug)]
pub struct FnDef {
    pub name: String,
    pub params: Vec<(String, TypeExpr)>,
    pub ret: Option<TypeExpr>,
    pub body: Vec<Stmt>,
    pub line: u32,
}

/// A struct definition.
#[derive(Clone, Debug)]
pub struct StructDef {
    pub name: String,
    pub fields: Vec<(String, TypeExpr)>,
    pub line: u32,
}

/// A global definition with optional initializer (an int, or an array of
/// ints filling the leading elements).
#[derive(Clone, Debug)]
pub struct GlobalDef {
    pub name: String,
    pub ty: TypeExpr,
    pub init: Vec<i64>,
    pub line: u32,
}

/// A whole MiniC translation unit.
#[derive(Clone, Debug, Default)]
pub struct Unit {
    pub structs: Vec<StructDef>,
    pub globals: Vec<GlobalDef>,
    pub fns: Vec<FnDef>,
}
