//! MiniC lexer.

use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    Ident(String),
    Int(i64),
    // keywords
    Fn,
    Struct,
    Global,
    Let,
    If,
    Else,
    While,
    Break,
    Continue,
    Return,
    As,
    // punctuation / operators
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Arrow,
    Dot,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    AndAnd,
    OrOr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(i) => write!(f, "integer `{i}`"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token plus its source line (1-based), for diagnostics.
#[derive(Clone, Debug)]
pub struct SpannedTok {
    pub tok: Tok,
    pub line: u32,
}

/// A frontend error with a source line.
#[derive(Clone, Debug, PartialEq)]
pub struct LangError {
    pub line: u32,
    pub msg: String,
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LangError {}

/// Tokenize MiniC source.
///
/// # Errors
/// Returns an error for unterminated comments, bad characters, or malformed
/// literals.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LangError> {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Vec::new();
    let err = |line: u32, msg: String| LangError { line, msg };
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = line;
                i += 2;
                loop {
                    if i + 1 >= b.len() {
                        return Err(err(start, "unterminated block comment".into()));
                    }
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    if b[i] == b'*' && b[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                let v = if c == b'0' && i + 1 < b.len() && (b[i + 1] | 32) == b'x' {
                    i += 2;
                    let hs = i;
                    while i < b.len() && (b[i].is_ascii_hexdigit() || b[i] == b'_') {
                        i += 1;
                    }
                    let text: String = src[hs..i].chars().filter(|c| *c != '_').collect();
                    i64::from_str_radix(&text, 16)
                        .or_else(|_| u64::from_str_radix(&text, 16).map(|u| u as i64))
                        .map_err(|_| err(line, format!("bad hex literal `{}`", &src[start..i])))?
                } else {
                    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                        i += 1;
                    }
                    let text: String = src[start..i].chars().filter(|c| *c != '_').collect();
                    text.parse::<i64>()
                        .map_err(|_| err(line, format!("bad integer literal `{text}`")))?
                };
                out.push(SpannedTok {
                    tok: Tok::Int(v),
                    line,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match word {
                    "fn" => Tok::Fn,
                    "struct" => Tok::Struct,
                    "global" => Tok::Global,
                    "let" => Tok::Let,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "break" => Tok::Break,
                    "continue" => Tok::Continue,
                    "return" => Tok::Return,
                    "as" => Tok::As,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(SpannedTok { tok, line });
            }
            b'\'' => {
                // char literal (value = byte)
                if i + 2 < b.len() && b[i + 1] != b'\\' && b[i + 2] == b'\'' {
                    out.push(SpannedTok {
                        tok: Tok::Int(b[i + 1] as i64),
                        line,
                    });
                    i += 3;
                } else if i + 3 < b.len() && b[i + 1] == b'\\' && b[i + 3] == b'\'' {
                    let v = match b[i + 2] {
                        b'n' => b'\n',
                        b't' => b'\t',
                        b'0' => 0,
                        b'\\' => b'\\',
                        b'\'' => b'\'',
                        other => {
                            return Err(err(line, format!("bad escape `\\{}`", other as char)))
                        }
                    };
                    out.push(SpannedTok {
                        tok: Tok::Int(v as i64),
                        line,
                    });
                    i += 4;
                } else {
                    return Err(err(line, "bad char literal".into()));
                }
            }
            _ => {
                let two = |a: u8, b2: u8| i + 1 < b.len() && c == a && b[i + 1] == b2;
                let (tok, len) = if two(b'-', b'>') {
                    (Tok::Arrow, 2)
                } else if two(b'<', b'<') {
                    (Tok::Shl, 2)
                } else if two(b'>', b'>') {
                    (Tok::Shr, 2)
                } else if two(b'&', b'&') {
                    (Tok::AndAnd, 2)
                } else if two(b'|', b'|') {
                    (Tok::OrOr, 2)
                } else if two(b'=', b'=') {
                    (Tok::Eq, 2)
                } else if two(b'!', b'=') {
                    (Tok::Ne, 2)
                } else if two(b'<', b'=') {
                    (Tok::Le, 2)
                } else if two(b'>', b'=') {
                    (Tok::Ge, 2)
                } else {
                    let t = match c {
                        b'(' => Tok::LParen,
                        b')' => Tok::RParen,
                        b'{' => Tok::LBrace,
                        b'}' => Tok::RBrace,
                        b'[' => Tok::LBracket,
                        b']' => Tok::RBracket,
                        b',' => Tok::Comma,
                        b';' => Tok::Semi,
                        b':' => Tok::Colon,
                        b'.' => Tok::Dot,
                        b'=' => Tok::Assign,
                        b'+' => Tok::Plus,
                        b'-' => Tok::Minus,
                        b'*' => Tok::Star,
                        b'/' => Tok::Slash,
                        b'%' => Tok::Percent,
                        b'&' => Tok::Amp,
                        b'|' => Tok::Pipe,
                        b'^' => Tok::Caret,
                        b'~' => Tok::Tilde,
                        b'!' => Tok::Bang,
                        b'<' => Tok::Lt,
                        b'>' => Tok::Gt,
                        other => {
                            return Err(err(
                                line,
                                format!("unexpected character `{}`", other as char),
                            ))
                        }
                    };
                    (t, 1)
                };
                out.push(SpannedTok { tok, line });
                i += len;
            }
        }
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("fn foo while whilex"),
            vec![
                Tok::Fn,
                Tok::Ident("foo".into()),
                Tok::While,
                Tok::Ident("whilex".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers_hex_and_char() {
        assert_eq!(
            toks("42 0xFF 1_000 'A' '\\n'"),
            vec![
                Tok::Int(42),
                Tok::Int(255),
                Tok::Int(1000),
                Tok::Int(65),
                Tok::Int(10),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_two_char() {
        assert_eq!(
            toks("-> << >> && || == != <= >= < >"),
            vec![
                Tok::Arrow,
                Tok::Shl,
                Tok::Shr,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Eq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let ts = lex("a // comment\nb /* c\nd */ e").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 3);
        assert_eq!(
            ts.iter().map(|t| t.tok.clone()).collect::<Vec<_>>(),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("e".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn errors_on_junk() {
        assert!(lex("a $ b").is_err());
        assert!(lex("/* unterminated").is_err());
    }
}
