//! Back-end driver: layout → register allocation → scheduling → bundle
//! packing, producing a [`MachProgram`] for the simulator.

use crate::layout::layout;
use crate::regalloc::allocate;
use crate::schedule::{schedule_function, SchedOptions};
use epic_ir::Program;
use epic_mach::{pack_group, MachFunc, MachProgram};

/// Per-program planned (static, profile-weighted) statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlanStats {
    /// Σ block weight × schedule length: the compiler's anticipated cycles.
    pub planned_cycles: f64,
    /// Σ block weight × ops: anticipated useful operation issues.
    pub planned_ops: f64,
    /// Registers allocated (max over functions) — pressure indicator.
    pub max_window: u32,
    /// Spilled virtual registers.
    pub spills: usize,
}

impl PlanStats {
    /// The compiler's anticipated (planned) IPC.
    pub fn planned_ipc(&self) -> f64 {
        if self.planned_cycles > 0.0 {
            self.planned_ops / self.planned_cycles
        } else {
            0.0
        }
    }
}

/// Compile a whole (optimized, profiled) IR program to machine code.
///
/// The input program is cloned and mutated (register allocation rewrites
/// operands; scheduling marks hoisted loads speculative).
pub fn compile_program(prog: &Program, opts: &SchedOptions) -> (MachProgram, PlanStats) {
    let mut prog = prog.clone();
    let mut stats = PlanStats::default();
    let mut funcs = Vec::with_capacity(prog.funcs.len());
    for fi in 0..prog.funcs.len() {
        let mut f = prog.funcs[fi].clone();
        let order = layout(&f);
        let ra = allocate(&mut f, &order, &mut prog);
        stats.max_window = stats.max_window.max(ra.n_gr);
        stats.spills += ra.spills;
        let schedules = schedule_function(&f, &prog, opts);
        // apply speculation marks before packing
        for (&b, bs) in &schedules {
            for &idx in &bs.speculated {
                f.block_mut(b).ops[idx].spec = true;
            }
        }
        // pack, in layout order
        let mut bundles = Vec::new();
        let mut block_entry: Vec<Option<usize>> = vec![None; f.blocks.len()];
        for &b in &order {
            block_entry[b.index()] = Some(bundles.len());
            let bs = &schedules[&b];
            let blk_w = f.block(b).weight;
            for group in &bs.groups {
                let ops: Vec<epic_ir::Op> =
                    group.iter().map(|&i| f.block(b).ops[i].clone()).collect();
                stats.planned_ops += blk_w * ops.len() as f64;
                bundles.extend(pack_group(ops));
            }
            stats.planned_cycles += blk_w * bs.cycles as f64;
        }
        funcs.push(MachFunc {
            id: f.id,
            name: f.name.clone(),
            bundles,
            entry: block_entry[f.entry.index()].expect("entry laid out"),
            block_entry,
            n_gr: ra.n_gr.max(1),
            n_pr: ra.n_pr,
            frame_size: f.frame_size,
            param_regs: ra.param_regs,
            base_addr: 0,
        });
        // store the rewritten function back (the simulator resolves
        // branch targets through block ids and reads nothing else, but
        // keeping the IR consistent helps debugging)
        prog.funcs[fi] = f;
    }
    let mut mp = MachProgram { funcs, ir: prog };
    mp.assign_addresses();
    (mp, stats)
}

/// Sanity checks on emitted code (used by tests and the driver):
/// every branch target has a bundle, entries exist, register indexes are
/// within the physical file.
///
/// # Errors
/// Returns a description of the first violation.
pub fn check_machine_program(mp: &MachProgram) -> Result<(), String> {
    for f in &mp.funcs {
        for (bi, bundle) in f.bundles.iter().enumerate() {
            for slot in &bundle.slots {
                if let epic_mach::Slot::Op(op) = slot {
                    for s in &op.srcs {
                        if let epic_ir::Operand::Label(t) = s {
                            let ok = f.block_entry.get(t.index()).copied().flatten().is_some();
                            if !ok {
                                return Err(format!(
                                    "{}: bundle {bi}: branch to unlaid block {t}",
                                    f.name
                                ));
                            }
                        }
                    }
                    for d in op.defs() {
                        if d.0 >= epic_mach::GR_WINDOW + epic_mach::PR_COUNT {
                            return Err(format!("{}: register {d} out of range", f.name));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compiled(src: &str, opts: &SchedOptions) -> (MachProgram, PlanStats) {
        let mut prog = epic_lang::compile(src).unwrap();
        epic_opt::profile::profile_program(&mut prog, &[], 50_000_000).unwrap();
        epic_opt::alias::run(&mut prog);
        let (mp, stats) = compile_program(&prog, opts);
        check_machine_program(&mp).unwrap();
        (mp, stats)
    }

    const SRC: &str = "
        global data: [int; 128];
        fn main() {
            let i = 0;
            while i < 128 { data[i] = i * 3 + 1; i = i + 1; }
            let s = 0;
            i = 0;
            while i < 128 { s = s + data[i] ^ (s >> 3); i = i + 1; }
            out(s);
        }";

    #[test]
    fn produces_well_formed_code() {
        let (mp, stats) = compiled(SRC, &SchedOptions::ilp_ns());
        assert!(mp.code_bytes() > 0);
        assert!(stats.planned_cycles > 0.0);
        assert!(stats.planned_ipc() > 0.5, "ipc {}", stats.planned_ipc());
        let (ops, _nops) = mp.op_counts();
        assert!(ops > 10);
    }

    #[test]
    fn better_scheduling_means_fewer_nops_or_cycles() {
        let (_mp_gcc, s_gcc) = compiled(SRC, &SchedOptions::gcc());
        let (_mp_ilp, s_ilp) = compiled(SRC, &SchedOptions::ilp_ns());
        assert!(
            s_ilp.planned_cycles <= s_gcc.planned_cycles,
            "ILP {} vs GCC {}",
            s_ilp.planned_cycles,
            s_gcc.planned_cycles
        );
    }

    #[test]
    fn branch_targets_resolve_after_layout() {
        let (mp, _) = compiled(
            "fn main() {
                let i = 0; let s = 0;
                while i < 50 {
                    if i % 3 == 0 { s = s + 2; } else { s = s - 1; }
                    i = i + 1;
                }
                out(s);
            }",
            &SchedOptions::o_ns(),
        );
        // every function entry bundle index is valid
        for f in &mp.funcs {
            assert!(f.entry < f.bundles.len().max(1));
        }
    }
}
