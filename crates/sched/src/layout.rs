//! Profile-guided code layout: hot paths fall through contiguously, cold
//! duplicates (remainder loops, tail copies) sink to the bottom of the
//! function — the paper's "untouched excess code can be placed harmlessly
//! in a cold location" (Sec. 2.4).

use epic_ir::loops::edge_weight;
use epic_ir::{BlockId, Function};

/// Cold threshold: blocks executed fewer times go last.
const COLD: f64 = 1.0;

/// Compute a code layout order for the live blocks of `f`.
///
/// Greedy chaining: starting from the entry, repeatedly follow the
/// hottest not-yet-placed successor; when stuck, restart from the hottest
/// unplaced block. Cold blocks are collected at the end.
pub fn layout(f: &Function) -> Vec<BlockId> {
    let n = f.blocks.len();
    let mut placed = vec![false; n];
    let mut hot = Vec::new();
    let mut cold = Vec::new();
    // chain starting points: entry first, then blocks by descending weight
    let mut seeds: Vec<BlockId> = f.block_ids().collect();
    seeds.sort_by(|a, b| f.block(*b).weight.partial_cmp(&f.block(*a).weight).unwrap());
    seeds.retain(|b| *b != f.entry);
    seeds.insert(0, f.entry);
    for seed in seeds {
        if placed[seed.index()] {
            continue;
        }
        let mut cur = seed;
        loop {
            placed[cur.index()] = true;
            if f.block(cur).weight >= COLD {
                hot.push(cur);
            } else {
                cold.push(cur);
            }
            let next = f
                .block(cur)
                .succs()
                .into_iter()
                .filter(|s| !placed[s.index()])
                .map(|s| (s, edge_weight(f, cur, s)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            match next {
                Some((s, _)) => cur = s,
                None => break,
            }
        }
    }
    hot.extend(cold);
    hot
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::builder::FuncBuilder;
    use epic_ir::{CmpKind, FuncId, Opcode, Operand};

    #[test]
    fn entry_first_hot_chain_cold_last() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let hot1 = b.block();
        let coldb = b.block();
        let exit = b.block();
        let p = b.param();
        b.brc(p, coldb);
        b.br(hot1);
        b.switch_to(hot1);
        b.br(exit);
        b.switch_to(coldb);
        b.br(exit);
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.finish();
        f.block_mut(epic_ir::BlockId(0)).weight = 100.0;
        f.block_mut(hot1).weight = 99.0;
        f.block_mut(coldb).weight = 0.5;
        f.block_mut(exit).weight = 100.0;
        // edge weights
        f.block_mut(epic_ir::BlockId(0)).ops[1].weight = 99.0;
        f.block_mut(epic_ir::BlockId(0)).ops[0].weight = 0.5;
        let order = layout(&f);
        assert_eq!(order[0], epic_ir::BlockId(0));
        assert_eq!(*order.last().unwrap(), coldb);
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn covers_every_live_block_once() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let l1 = b.block();
        let l2 = b.block();
        let done = b.block();
        let i = b.vreg();
        b.mov_to(i, 0i64);
        b.br(l1);
        b.switch_to(l1);
        b.binop_to(i, Opcode::Add, i, 1i64);
        let p = b.cmp(CmpKind::SLt, i, 10i64);
        b.brc(p, l1);
        b.br(l2);
        b.switch_to(l2);
        b.out(Operand::Reg(i));
        b.br(done);
        b.switch_to(done);
        b.ret(None);
        let f = b.finish();
        let order = layout(&f);
        let mut sorted: Vec<_> = order.iter().map(|b| b.index()).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }
}
