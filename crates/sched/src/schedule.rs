//! Region dependence graphs and cycle-driven list scheduling.
//!
//! Scheduling operates on extended blocks (superblocks/hyperblocks): ops
//! may move freely subject to data, memory, and control dependences. The
//! configuration ladder mirrors the paper's:
//!
//! * **no speculation** (GCC / O-NS): nothing crosses a branch;
//! * **safe speculation** (ILP-NS): pure ops whose destinations are dead
//!   at a branch's target may hoist above it;
//! * **control speculation** (ILP-CS): loads may hoist too, becoming
//!   `ld.s` with NaT deferral.
//!
//! Memory dependences are drawn only between ops whose pointer-analysis
//! alias tags conflict (the GCC configuration disables this and draws
//! them conservatively).

use epic_ir::liveness::Liveness;
use epic_ir::{BlockId, Function, Op, Opcode, Program, Vreg};
use epic_mach::units::{is_a_type, latency, needs_long, unit_kind, SlotKind, UnitKind};
use std::collections::HashMap;

/// Scheduler configuration.
#[derive(Clone, Copy, Debug)]
pub struct SchedOptions {
    /// Allow pure ops to move above branches (dst-liveness checked).
    pub allow_safe_spec: bool,
    /// Allow loads to move above branches, marking them speculative.
    pub allow_control_spec: bool,
    /// Use pointer-analysis tags for memory disambiguation.
    pub use_alias: bool,
    /// Bundles an issue group may span (2 = full 6-wide Itanium 2 issue;
    /// 1 models GCC 3.2's poor bundle packing on IA-64).
    pub max_group_bundles: usize,
}

impl SchedOptions {
    /// GCC-like: no cross-branch motion, conservative memory dependences,
    /// one bundle per issue group (GCC 3.2 "is not equipped to deliver
    /// even minimal levels of ILP on IA-64", paper Sec. 2.1).
    pub fn gcc() -> SchedOptions {
        SchedOptions {
            allow_safe_spec: false,
            allow_control_spec: false,
            use_alias: false,
            max_group_bundles: 1,
        }
    }

    /// O-NS: alias analysis, but no cross-branch motion of any kind.
    pub fn o_ns() -> SchedOptions {
        SchedOptions {
            allow_safe_spec: false,
            allow_control_spec: false,
            use_alias: true,
            max_group_bundles: 2,
        }
    }

    /// ILP-NS: safe speculation only.
    pub fn ilp_ns() -> SchedOptions {
        SchedOptions {
            allow_safe_spec: true,
            allow_control_spec: false,
            use_alias: true,
            max_group_bundles: 2,
        }
    }

    /// ILP-CS: control speculation of loads.
    pub fn ilp_cs() -> SchedOptions {
        SchedOptions {
            allow_safe_spec: true,
            allow_control_spec: true,
            use_alias: true,
            max_group_bundles: 2,
        }
    }
}

/// The schedule of one block: op indexes grouped by issue cycle, in cycle
/// order. Ops within a group are listed in original program order.
#[derive(Clone, Debug, Default)]
pub struct BlockSchedule {
    /// Issue groups (non-empty), each a set of op indexes.
    pub groups: Vec<Vec<usize>>,
    /// Schedule length in cycles (including latency-induced empty cycles).
    pub cycles: u32,
    /// Op indexes that were hoisted above at least one branch and must be
    /// marked speculative (loads only).
    pub speculated: Vec<usize>,
}

/// Schedule every block of `f`; returns per-block schedules indexed by
/// block id, plus aggregate planned statistics.
pub fn schedule_function(
    f: &Function,
    prog: &Program,
    opts: &SchedOptions,
) -> HashMap<BlockId, BlockSchedule> {
    let live = Liveness::compute(f);
    let mut out = HashMap::new();
    for b in f.block_ids() {
        let sched = schedule_block(f, b, prog, &live, opts);
        out.insert(b, sched);
    }
    out
}

struct Dep {
    to: usize,
    lat: u32,
}

/// Build the DDG and list-schedule one block.
fn schedule_block(
    f: &Function,
    b: BlockId,
    prog: &Program,
    live: &Liveness,
    opts: &SchedOptions,
) -> BlockSchedule {
    let ops = &f.block(b).ops;
    let n = ops.len();
    let mut succs: Vec<Vec<Dep>> = (0..n).map(|_| Vec::new()).collect();
    let mut n_preds = vec![0u32; n];
    let add_edge =
        |from: usize, to: usize, lat: u32, succs: &mut Vec<Vec<Dep>>, n_preds: &mut Vec<u32>| {
            succs[from].push(Dep { to, lat });
            n_preds[to] += 1;
        };

    // --- predicate relations (a small stand-in for IMPACT's BDD-based
    // predicate analysis, the paper's [27]): the two destinations of one
    // single-def compare are complementary, so operations guarded by them
    // are mutually exclusive and need no dependences between them. This
    // is what lets a hyperblock's two arms overlap in one issue group. ---
    let mut def_count: HashMap<Vreg, u32> = HashMap::new();
    for op in ops.iter() {
        for &d in op.defs() {
            *def_count.entry(d).or_insert(0) += 1;
        }
    }
    // value -> (complement, defining cmp's index): the relation only holds
    // for ops *after* the compare (earlier guards read an older value in
    // the same physical register).
    let mut complement_of: HashMap<Vreg, (Vreg, usize)> = HashMap::new();
    for (ci, op) in ops.iter().enumerate() {
        if let (Opcode::Cmp(_), [d0, d1]) = (op.opcode, op.dsts.as_slice()) {
            if def_count.get(d0) == Some(&1) && def_count.get(d1) == Some(&1) {
                complement_of.insert(*d0, (*d1, ci));
                complement_of.insert(*d1, (*d0, ci));
            }
        }
    }
    let disjoint = |i: usize, j: usize, a: Option<Vreg>, b: Option<Vreg>| -> bool {
        match (a, b) {
            (Some(p), Some(q)) => match complement_of.get(&p) {
                Some(&(c, ci)) => c == q && i > ci && j > ci,
                None => false,
            },
            _ => false,
        }
    };

    // --- register dependences ---
    let mut last_defs: HashMap<Vreg, Vec<usize>> = HashMap::new();
    let mut uses_since_def: HashMap<Vreg, Vec<usize>> = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        // flow: all reaching (may-)defs -> this use
        for u in op.uses() {
            if let Some(defs) = last_defs.get(&u) {
                for &d in defs {
                    if disjoint(d, i, ops[d].guard, op.guard) {
                        continue; // mutually exclusive: no value can flow
                    }
                    // cmp feeding a branch guard may share the group
                    let lat = if ops[i].is_branch() && ops[i].guard == Some(u) {
                        0
                    } else {
                        latency(&ops[d])
                    };
                    add_edge(d, i, lat, &mut succs, &mut n_preds);
                }
            }
            uses_since_def.entry(u).or_default().push(i);
        }
        for &d in op.defs() {
            // output: previous defs -> this def (cannot share a group,
            // unless the guards are complementary)
            if let Some(defs) = last_defs.get(&d) {
                for &j in defs {
                    if disjoint(j, i, ops[j].guard, op.guard) {
                        continue;
                    }
                    add_edge(j, i, 1, &mut succs, &mut n_preds);
                }
            }
            // anti: previous uses -> this def (same group is fine: group
            // reads see pre-group state)
            if let Some(us) = uses_since_def.get(&d) {
                for &j in us {
                    if j != i {
                        add_edge(j, i, 0, &mut succs, &mut n_preds);
                    }
                }
            }
            if op.guard.is_none() {
                last_defs.insert(d, vec![i]);
                uses_since_def.insert(d, Vec::new());
            } else {
                last_defs.entry(d).or_default().push(i);
            }
        }
    }

    // --- memory and pinned-op dependences ---
    let conflict = |ai: usize, ci: usize, a: &Op, c: &Op| -> bool {
        if disjoint(ai, ci, a.guard, c.guard) {
            return false; // mutually exclusive predicates never both run
        }
        if !opts.use_alias {
            return true;
        }
        prog.tags_conflict(a.mem_tag, c.mem_tag)
    };
    let mut prev_stores: Vec<usize> = Vec::new();
    let mut prev_loads: Vec<usize> = Vec::new();
    let mut prev_pinned: Option<usize> = None;
    for (i, op) in ops.iter().enumerate() {
        match op.opcode {
            Opcode::Ld(_) | Opcode::Chk(_) | Opcode::ChkA(_) => {
                // an advanced load (ld.a) may pass conflicting stores:
                // the ALAT + its chk.a carry the dependence instead
                let advanced = op.adv;
                for &s in &prev_stores {
                    if !advanced && conflict(s, i, &ops[s], op) {
                        add_edge(s, i, 1, &mut succs, &mut n_preds);
                    }
                }
                if let Some(p) = prev_pinned {
                    if !ops[p].is_call() || conflict(p, i, &ops[p], op) {
                        add_edge(p, i, 1, &mut succs, &mut n_preds);
                    }
                }
                prev_loads.push(i);
            }
            Opcode::St(_) => {
                for &s in &prev_stores {
                    if conflict(s, i, &ops[s], op) {
                        add_edge(s, i, 1, &mut succs, &mut n_preds);
                    }
                }
                for &l in &prev_loads {
                    if conflict(l, i, &ops[l], op) {
                        add_edge(l, i, 1, &mut succs, &mut n_preds);
                    }
                }
                if let Some(p) = prev_pinned {
                    if !ops[p].is_call() || conflict(p, i, &ops[p], op) {
                        add_edge(p, i, 1, &mut succs, &mut n_preds);
                    }
                }
                prev_stores.push(i);
            }
            Opcode::Call => {
                // calls conflict with memory ops per their effect tags and
                // form a chain with other pinned ops
                for &s in prev_stores.iter().chain(&prev_loads) {
                    if conflict(s, i, &ops[s], op) {
                        add_edge(s, i, 1, &mut succs, &mut n_preds);
                    }
                }
                if let Some(p) = prev_pinned {
                    add_edge(p, i, 1, &mut succs, &mut n_preds);
                }
                prev_pinned = Some(i);
            }
            Opcode::Out | Opcode::Alloc | Opcode::Ret => {
                if let Some(p) = prev_pinned {
                    add_edge(p, i, 1, &mut succs, &mut n_preds);
                }
                prev_pinned = Some(i);
            }
            _ => {}
        }
    }

    // --- control dependences ---
    let branch_idxs: Vec<usize> = ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.is_branch() || matches!(o.opcode, Opcode::Ret))
        .map(|(i, _)| i)
        .collect();
    let mut spec_candidates: Vec<usize> = Vec::new();
    for &bi in &branch_idxs {
        // everything before a branch stays at or before it
        for i in 0..bi {
            add_edge(i, bi, 0, &mut succs, &mut n_preds);
        }
        // ops after the branch need its permission to hoist
        let target_live = ops[bi].branch_target().map(|t| live.live_in(t));
        for (i, op) in ops.iter().enumerate().skip(bi + 1) {
            let hoistable = match op.opcode {
                _ if op.has_side_effects() => false,
                Opcode::Chk(_) | Opcode::ChkA(_) => false,
                Opcode::Ld(_) => opts.allow_control_spec,
                _ if op.opcode.is_pure() => opts.allow_safe_spec,
                _ => false, // Div/Rem and anything else: never hoisted
            } && target_live
                .map(|tl| op.defs().iter().all(|d| !tl.contains(d.index())))
                .unwrap_or(false);
            if !hoistable {
                add_edge(bi, i, 0, &mut succs, &mut n_preds);
            } else if matches!(op.opcode, Opcode::Ld(_)) {
                spec_candidates.push(i);
            }
        }
    }
    // calls pin everything around them
    for (ci, op) in ops.iter().enumerate() {
        if op.is_call() {
            for i in 0..ci {
                add_edge(i, ci, 0, &mut succs, &mut n_preds);
            }
            for i in ci + 1..n {
                add_edge(ci, i, 1, &mut succs, &mut n_preds);
            }
        }
    }

    // --- priorities: critical-path height ---
    let mut height = vec![0u32; n];
    for i in (0..n).rev() {
        let mut h = 0;
        for d in &succs[i] {
            h = h.max(d.lat + height[d.to]);
        }
        height[i] = h;
    }

    // --- list scheduling ---
    // Template feasibility depends only on the ordered sequence of slot
    // classes in a trial group, so cache the packer's verdicts (the DFS
    // packer is far too slow to run per candidate per cycle).
    let op_class: Vec<u8> = ops
        .iter()
        .map(|op| {
            if needs_long(op) {
                5
            } else if is_a_type(op) {
                4
            } else {
                match unit_kind(op) {
                    UnitKind::M => 0,
                    UnitKind::I => 1,
                    UnitKind::F => 2,
                    UnitKind::B => 3,
                }
            }
        })
        .collect();
    let mut pack_memo: HashMap<Vec<u8>, u8> = HashMap::new();
    let mut remaining_preds = n_preds.clone();
    let mut earliest = vec![0u32; n];
    let mut cycle_of = vec![u32::MAX; n];
    let mut ready: Vec<usize> = (0..n).filter(|&i| remaining_preds[i] == 0).collect();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut cycle = 0u32;
    let mut scheduled = 0usize;
    while scheduled < n {
        let mut group: Vec<usize> = Vec::new();
        let mut res = Resources::default();
        let mut has_callish = false;
        // Iterate within the cycle: scheduling an op can make a 0-latency
        // successor (e.g. a branch consuming this group's compare) ready
        // in the same cycle.
        loop {
            let mut cands: Vec<usize> = ready
                .iter()
                .copied()
                .filter(|&i| earliest[i] <= cycle && !group.contains(&i))
                .collect();
            cands.sort_by(|&a, &b| height[b].cmp(&height[a]).then(a.cmp(&b)));
            let mut added = false;
            for i in cands {
                let op = &ops[i];
                let callish = op.is_call() || matches!(op.opcode, Opcode::Ret);
                if (callish && !group.is_empty()) || has_callish {
                    continue;
                }
                if !res.admit(op) {
                    continue;
                }
                // template feasibility (ops sorted by original index)
                let mut trial = group.clone();
                trial.push(i);
                trial.sort_unstable();
                let sig: Vec<u8> = trial.iter().map(|&k| op_class[k]).collect();
                let nbundles = *pack_memo.entry(sig).or_insert_with(|| {
                    let trial_ops: Vec<Op> = trial.iter().map(|&k| ops[k].clone()).collect();
                    epic_mach::try_pack_group(trial_ops)
                        .map(|b| b.len() as u8)
                        .unwrap_or(u8::MAX)
                });
                if nbundles as usize > opts.max_group_bundles && !group.is_empty() {
                    // over the issue-width cap (a lone op is always allowed
                    // so scheduling can make progress)
                    res.retract(op);
                    continue;
                }
                if nbundles == u8::MAX {
                    res.retract(op);
                    continue;
                }
                group = trial;
                has_callish |= callish;
                // commit: release successors now so 0-latency deps can
                // join this same group
                cycle_of[i] = cycle;
                scheduled += 1;
                ready.retain(|&r| r != i);
                for d in &succs[i] {
                    remaining_preds[d.to] -= 1;
                    earliest[d.to] = earliest[d.to].max(cycle + d.lat);
                    if remaining_preds[d.to] == 0 {
                        ready.push(d.to);
                    }
                }
                added = true;
            }
            if !added {
                break;
            }
        }
        if !group.is_empty() {
            groups.push(group);
        }
        cycle += 1;
    }

    // speculation marking: a load scheduled strictly before a branch that
    // originally preceded it has been hoisted
    let mut speculated = Vec::new();
    for &i in &spec_candidates {
        let hoisted = branch_idxs
            .iter()
            .any(|&bi| bi < i && cycle_of[bi] != u32::MAX && cycle_of[bi] > cycle_of[i]);
        if hoisted {
            speculated.push(i);
        }
    }
    BlockSchedule {
        groups,
        cycles: cycle,
        speculated,
    }
}

/// Per-cycle resource counters (Itanium 2 issue rules).
#[derive(Default)]
struct Resources {
    m: usize,
    i_strict: usize,
    f: usize,
    b: usize,
    a: usize,
    l: usize,
    slots: usize,
}

impl Resources {
    fn admit(&mut self, op: &Op) -> bool {
        let long = needs_long(op);
        let slots = if long { 2 } else { 1 };
        if self.slots + slots > 6 {
            return false;
        }
        if long {
            if self.l >= 2 {
                return false;
            }
            self.l += 1;
            self.slots += slots;
            return true;
        }
        if is_a_type(op) {
            // A-type ops run on any of the 6 ALUs (M or I slots)
            if self.m + self.i_strict + self.a >= 6 {
                return false;
            }
            self.a += 1;
            self.slots += 1;
            return true;
        }
        let ok = match unit_kind(op) {
            UnitKind::M => {
                if self.m >= 4 {
                    false
                } else {
                    self.m += 1;
                    true
                }
            }
            UnitKind::I => {
                if self.i_strict >= 2 {
                    false
                } else {
                    self.i_strict += 1;
                    true
                }
            }
            UnitKind::F => {
                if self.f >= 2 {
                    false
                } else {
                    self.f += 1;
                    true
                }
            }
            UnitKind::B => {
                if self.b >= 3 {
                    false
                } else {
                    self.b += 1;
                    true
                }
            }
        };
        if ok {
            self.slots += 1;
        }
        ok
    }

    fn retract(&mut self, op: &Op) {
        let long = needs_long(op);
        if long {
            self.l -= 1;
            self.slots -= 2;
            return;
        }
        if is_a_type(op) {
            self.a -= 1;
            self.slots -= 1;
            return;
        }
        match unit_kind(op) {
            UnitKind::M => self.m -= 1,
            UnitKind::I => self.i_strict -= 1,
            UnitKind::F => self.f -= 1,
            UnitKind::B => self.b -= 1,
        }
        self.slots -= 1;
    }
}

/// `SlotKind` is re-exported for emitters that inspect schedules.
pub use epic_mach::units::SlotKind as _SlotKind;
const _: &[SlotKind] = &[];

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::builder::FuncBuilder;
    use epic_ir::{CmpKind, FuncId, MemSize, Operand};

    fn sched(f: &Function, opts: &SchedOptions) -> HashMap<BlockId, BlockSchedule> {
        let prog = Program::new();
        schedule_function(f, &prog, opts)
    }

    #[test]
    fn independent_ops_share_a_cycle() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let p = b.param();
        let q = b.param();
        let _a = b.binop(Opcode::Add, p, 1i64);
        let _c = b.binop(Opcode::Sub, q, 1i64);
        let _d = b.binop(Opcode::Xor, p, q);
        b.ret(None);
        let f = b.finish();
        let s = sched(&f, &SchedOptions::ilp_ns());
        let bs = &s[&BlockId(0)];
        // three ALU ops + ret; the ALUs share a group
        assert_eq!(bs.groups[0].len(), 3, "groups: {:?}", bs.groups);
    }

    #[test]
    fn flow_dependences_serialize() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let p = b.param();
        let x = b.binop(Opcode::Add, p, 1i64);
        let y = b.binop(Opcode::Add, x, 1i64);
        let _z = b.binop(Opcode::Add, y, 1i64);
        b.ret(None);
        let f = b.finish();
        let s = sched(&f, &SchedOptions::ilp_ns());
        let bs = &s[&BlockId(0)];
        assert!(bs.groups.len() >= 3, "chain must take 3+ groups");
    }

    #[test]
    fn no_spec_blocks_motion_above_branch() {
        // block: ld after a side exit; O-NS must keep it below
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let t = b.block();
        let p = b.param();
        let c = b.cmp(CmpKind::SGt, p, 0i64);
        b.brc(c, t);
        let v = b.load(MemSize::B8, p);
        b.out(v);
        b.ret(None);
        b.switch_to(t);
        b.ret(None);
        let f = b.finish();
        let s_ons = sched(&f, &SchedOptions::o_ns());
        let bs = &s_ons[&BlockId(0)];
        // find cycles of branch (idx 1) and load (idx 2)
        let cyc = |bs: &BlockSchedule, idx: usize| {
            bs.groups
                .iter()
                .position(|g| g.contains(&idx))
                .expect("scheduled")
        };
        assert!(cyc(bs, 2) >= cyc(bs, 1));
        assert!(bs.speculated.is_empty());
        // ILP-CS may hoist it (dst dead at target)
        let s_cs = sched(&f, &SchedOptions::ilp_cs());
        let bs = &s_cs[&BlockId(0)];
        if cyc(bs, 2) < cyc(bs, 1) {
            assert_eq!(bs.speculated, vec![2]);
        }
    }

    #[test]
    fn store_load_conflicts_respected_without_alias() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let p = b.param();
        let q = b.param();
        b.store(MemSize::B8, p, 1i64);
        let v = b.load(MemSize::B8, q);
        b.out(v);
        b.ret(None);
        let f = b.finish();
        let s = sched(&f, &SchedOptions::gcc());
        let bs = &s[&BlockId(0)];
        let cyc = |idx: usize| bs.groups.iter().position(|g| g.contains(&idx)).unwrap();
        assert!(cyc(1) > cyc(0), "load must follow conflicting store");
    }

    #[test]
    fn disjoint_alias_tags_allow_reordering() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let p = b.param();
        let q = b.param();
        b.store(MemSize::B8, p, 1i64);
        let v = b.load(MemSize::B8, q);
        b.out(v);
        b.ret(None);
        let mut f = b.finish();
        let mut prog = Program::new();
        let t1 = prog.add_alias_set(vec![1]);
        let t2 = prog.add_alias_set(vec![2]);
        f.block_mut(BlockId(0)).ops[0].mem_tag = t1;
        f.block_mut(BlockId(0)).ops[1].mem_tag = t2;
        let s = schedule_function(&f, &prog, &SchedOptions::o_ns());
        let bs = &s[&BlockId(0)];
        // store and load may now share the first group
        assert!(bs.groups[0].contains(&0) && bs.groups[0].contains(&1));
    }

    #[test]
    fn cmp_and_dependent_branch_share_group() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let t = b.block();
        let p = b.param();
        let c = b.cmp(CmpKind::SGt, p, 0i64);
        b.brc(c, t);
        b.ret(None);
        b.switch_to(t);
        b.ret(None);
        let f = b.finish();
        let s = sched(&f, &SchedOptions::o_ns());
        let bs = &s[&BlockId(0)];
        assert!(bs.groups[0].contains(&0) && bs.groups[0].contains(&1));
    }

    #[test]
    fn calls_schedule_alone() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let p = b.param();
        let _x = b.binop(Opcode::Add, p, 1i64);
        let _r = b.call(Operand::FuncAddr(FuncId(0)), &[Operand::Reg(p)]);
        let _y = b.binop(Opcode::Add, p, 2i64);
        b.ret(None);
        let f = b.finish();
        let s = sched(&f, &SchedOptions::ilp_cs());
        let bs = &s[&BlockId(0)];
        let call_group = bs.groups.iter().find(|g| g.contains(&1)).unwrap();
        assert_eq!(call_group.len(), 1, "call shares a group: {:?}", bs.groups);
    }

    #[test]
    fn resource_limits_split_wide_groups() {
        // 8 independent adds cannot fit one 6-wide cycle
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let p = b.param();
        for k in 0..8i64 {
            b.binop(Opcode::Add, p, k);
        }
        b.ret(None);
        let f = b.finish();
        let s = sched(&f, &SchedOptions::ilp_ns());
        let bs = &s[&BlockId(0)];
        assert!(bs.groups[0].len() <= 6);
        assert!(bs.groups.len() >= 2);
    }
}
