//! # epic-sched
//!
//! The back end of the IMPACT EPIC reproduction: profile-guided code
//! layout ([`layout`]), linear-scan register allocation onto the windowed
//! IA-64-style register file ([`regalloc`]), dependence-graph list
//! scheduling with the paper's speculation ladder ([`schedule`]), and
//! bundle emission ([`emit`]).
//!
//! The four scheduler configurations map to the paper's compiler
//! configurations:
//!
//! | Config | memory disambiguation | pure-op motion over branches | load speculation |
//! |--------|----------------------|------------------------------|------------------|
//! | [`schedule::SchedOptions::gcc`]    | conservative | no  | no  |
//! | [`schedule::SchedOptions::o_ns`]   | alias tags   | no  | no  |
//! | [`schedule::SchedOptions::ilp_ns`] | alias tags   | yes | no  |
//! | [`schedule::SchedOptions::ilp_cs`] | alias tags   | yes | yes (`ld.s`) |

pub mod emit;
pub mod layout;
pub mod regalloc;
pub mod schedule;

pub use emit::{check_machine_program, compile_program, PlanStats};
pub use schedule::SchedOptions;
