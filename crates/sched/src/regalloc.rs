//! Linear-scan register allocation onto the IA-64-style windowed register
//! file.
//!
//! Virtual registers used as qualifying predicates are assigned to the
//! predicate file (indexes [`epic_mach::GR_WINDOW`]`..`); all others to
//! general registers of the function's own register-stack window. Because
//! each call allocates a fresh window, no caller/callee-save discipline is
//! needed — instead the *size* of the window (`n_gr`) is what costs at run
//! time, through register stack engine spills when the physical stack
//! overflows (paper Sec. 4.4). Registers are handed out round-robin, so
//! ILP-transformed code with many overlapping live ranges consumes many
//! register names, exactly the paper's crafty/parser pressure story.
//!
//! Allocation runs *before* scheduling (as on an in-order machine with no
//! renaming, reuse-induced anti-dependences constrain the scheduler).

use epic_ir::liveness::Liveness;
use epic_ir::{BlockId, Function, MemSize, Op, Opcode, Operand, Vreg};
use epic_mach::GR_WINDOW;
use std::collections::{BTreeSet, HashMap};

/// Allocatable general registers (the rest of the window is reserved for
/// spill temporaries).
const GR_POOL: u32 = 90;
/// Reserved spill temporaries.
const SPILL_TEMPS: u32 = 6;
/// Predicate registers available.
const PR_POOL: u32 = 60;

/// Result of allocation.
#[derive(Clone, Debug, Default)]
pub struct RegallocResult {
    /// General registers used (window size; drives RSE cost).
    pub n_gr: u32,
    /// Predicate registers used.
    pub n_pr: u32,
    /// Virtual registers spilled to the stack frame.
    pub spills: usize,
    /// Physical registers holding incoming parameters, in order.
    pub param_regs: Vec<u32>,
}

#[derive(Clone, Copy, Debug)]
struct Interval {
    v: Vreg,
    start: u32,
    end: u32,
    is_pred: bool,
}

/// Allocate `f` in place (rewrites all register operands to physical
/// indexes). Must be called on laid-out code; `order` is the block layout.
/// `prog` receives fresh alias sets for spill slots (compiler-private
/// locations that conflict with nothing else).
pub fn allocate(
    f: &mut Function,
    order: &[BlockId],
    prog: &mut epic_ir::Program,
) -> RegallocResult {
    let live = Liveness::compute(f);
    // --- positions ---
    let mut pos_of_block: HashMap<BlockId, (u32, u32)> = HashMap::new(); // (start, end)
    let mut pos = 1u32;
    for &b in order {
        let start = pos;
        pos += 2 * f.block(b).ops.len() as u32 + 2;
        pos_of_block.insert(b, (start, pos - 1));
    }
    // --- predicate classification ---
    let nv = f.vreg_count();
    let mut is_pred = vec![false; nv];
    for &b in order {
        for op in &f.block(b).ops {
            if let Some(g) = op.guard {
                is_pred[g.index()] = true;
            }
        }
    }
    // --- intervals ---
    let mut start = vec![u32::MAX; nv];
    let mut end = vec![0u32; nv];
    let extend = |v: Vreg, p: u32, start: &mut Vec<u32>, end: &mut Vec<u32>| {
        start[v.index()] = start[v.index()].min(p);
        end[v.index()] = end[v.index()].max(p);
    };
    for &p in &f.params {
        extend(p, 0, &mut start, &mut end);
    }
    for &b in order {
        let (bs, be) = pos_of_block[&b];
        for v in live.live_in(b).iter() {
            extend(Vreg(v as u32), bs, &mut start, &mut end);
        }
        for v in live.live_out(b).iter() {
            extend(Vreg(v as u32), be, &mut start, &mut end);
        }
        let mut p = bs + 1;
        for op in &f.block(b).ops {
            for u in op.uses() {
                extend(u, p, &mut start, &mut end);
            }
            for &d in op.defs() {
                extend(d, p + 1, &mut start, &mut end);
            }
            p += 2;
        }
    }
    let mut intervals: Vec<Interval> = (0..nv)
        .filter(|i| start[*i] != u32::MAX)
        .map(|i| Interval {
            v: Vreg(i as u32),
            start: start[i],
            end: end[i],
            is_pred: is_pred[i],
        })
        .collect();
    intervals.sort_by_key(|iv| iv.start);

    // --- scan ---
    // Lowest-index-first allocation: the register-stack window a function
    // requests (n_gr) is its true simultaneous-pressure high-water mark,
    // which is what the RSE spills on overflow (paper Sec. 4.4). ILP code
    // with many overlapping live ranges genuinely widens the window;
    // low-pressure code keeps calls cheap.
    let mut gr_free: BTreeSet<u32> = (0..GR_POOL).collect();
    let mut pr_free: BTreeSet<u32> = (0..PR_POOL).map(|i| GR_WINDOW + i).collect();
    let mut assignment: HashMap<Vreg, u32> = HashMap::new();
    let mut spilled: Vec<Vreg> = Vec::new();
    // params get the first GRs, in order
    let mut param_regs = Vec::new();
    for &p in f.params.clone().iter() {
        let r = gr_free.pop_first().expect("params fit");
        assignment.insert(p, r);
        param_regs.push(r);
    }
    let mut active: Vec<Interval> = intervals
        .iter()
        .filter(|iv| f.params.contains(&iv.v))
        .copied()
        .collect();
    let mut max_gr = param_regs.len() as u32;
    let mut max_pr = 0u32;
    for iv in intervals.iter().filter(|iv| !f.params.contains(&iv.v)) {
        // expire
        active.retain(|a| {
            if a.end < iv.start {
                if let Some(&r) = assignment.get(&a.v) {
                    if r >= GR_WINDOW {
                        pr_free.insert(r);
                    } else {
                        gr_free.insert(r);
                    }
                }
                false
            } else {
                true
            }
        });
        if iv.is_pred {
            let r = pr_free
                .pop_first()
                .expect("predicate register file exhausted");
            assignment.insert(iv.v, r);
            max_pr = max_pr.max(r - GR_WINDOW + 1);
            active.push(*iv);
            continue;
        }
        match gr_free.pop_first() {
            Some(r) => {
                assignment.insert(iv.v, r);
                max_gr = max_gr.max(r + 1);
                active.push(*iv);
            }
            None => {
                // spill the active GR interval ending furthest away
                let victim = active
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| !a.is_pred && !f.params.contains(&a.v))
                    .max_by_key(|(_, a)| a.end)
                    .map(|(i, a)| (i, *a));
                match victim {
                    Some((vi, va)) if va.end > iv.end => {
                        let r = assignment.remove(&va.v).expect("active assigned");
                        spilled.push(va.v);
                        active.swap_remove(vi);
                        assignment.insert(iv.v, r);
                        active.push(*iv);
                    }
                    _ => spilled.push(iv.v),
                }
            }
        }
    }

    // --- spill rewriting ---
    // Each spill slot becomes its own abstract alias location (never
    // visible to the program), so spill code only conflicts with itself.
    let mut spill_slots: HashMap<Vreg, (u64, u32)> = HashMap::new();
    for &v in &spilled {
        let off = f.frame_size;
        f.frame_size += 8;
        let loc = 2_000_000 + (f.id.0 << 8) + spill_slots.len() as u32;
        let tag = prog.add_alias_set(vec![loc]);
        spill_slots.insert(v, (off, tag));
    }
    let n_spills = spilled.len();
    if !spill_slots.is_empty() {
        rewrite_spills(f, order, &spill_slots);
    }

    // --- rewrite to physical registers ---
    for &b in order {
        for op in &mut f.block_mut(b).ops {
            for d in &mut op.dsts {
                if let Some(&r) = assignment.get(d) {
                    *d = Vreg(r);
                }
            }
            for s in &mut op.srcs {
                if let Operand::Reg(v) = s {
                    if let Some(&r) = assignment.get(v) {
                        *s = Operand::Reg(Vreg(r));
                    }
                }
            }
            if let Some(g) = op.guard {
                if let Some(&r) = assignment.get(&g) {
                    op.guard = Some(Vreg(r));
                }
            }
        }
    }
    for p in &mut f.params {
        if let Some(&r) = assignment.get(p) {
            *p = Vreg(r);
        }
    }
    // dense per-frame register tables must cover the whole physical space
    f.reserve_vregs(GR_WINDOW + PR_POOL);
    RegallocResult {
        n_gr: if n_spills > 0 {
            GR_POOL + SPILL_TEMPS
        } else {
            max_gr
        },
        n_pr: max_pr,
        spills: n_spills,
        param_regs,
    }
}

/// Insert reloads before uses and stores after defs of spilled vregs,
/// rewriting them to reserved temporaries.
fn rewrite_spills(f: &mut Function, order: &[BlockId], slots: &HashMap<Vreg, (u64, u32)>) {
    for &b in order {
        let ops = std::mem::take(&mut f.block_mut(b).ops);
        let mut out = Vec::with_capacity(ops.len() * 2);
        for mut op in ops {
            let mut temp_next = GR_POOL;
            let mut temp_map: HashMap<Vreg, Vreg> = HashMap::new();
            // reloads
            let used: Vec<Vreg> = op.uses().filter(|u| slots.contains_key(u)).collect();
            for u in used {
                let t = *temp_map.entry(u).or_insert_with(|| {
                    let t = Vreg(temp_next);
                    temp_next += 1;
                    t
                });
                assert!(temp_next <= GR_POOL + SPILL_TEMPS, "spill temps exhausted");
                let (off, tag) = slots[&u];
                let mut ld = Op::new(
                    epic_ir::OpId(u32::MAX - 1),
                    Opcode::Ld(MemSize::B8),
                    vec![t],
                    vec![Operand::FrameAddr(off)],
                );
                ld.weight = op.weight;
                ld.mem_tag = tag;
                out.push(ld);
                op.replace_use(u, t);
            }
            // stores after defs
            let defs: Vec<Vreg> = op
                .defs()
                .iter()
                .copied()
                .filter(|d| slots.contains_key(d))
                .collect();
            let guard = op.guard;
            let mut stores = Vec::new();
            for d in defs {
                let t = *temp_map.entry(d).or_insert_with(|| {
                    let t = Vreg(temp_next);
                    temp_next += 1;
                    t
                });
                assert!(temp_next <= GR_POOL + SPILL_TEMPS, "spill temps exhausted");
                for dd in &mut op.dsts {
                    if *dd == d {
                        *dd = t;
                    }
                }
                let (off, tag) = slots[&d];
                let mut st = Op::new(
                    epic_ir::OpId(u32::MAX - 1),
                    Opcode::St(MemSize::B8),
                    vec![],
                    vec![Operand::FrameAddr(off), Operand::Reg(t)],
                );
                st.guard = guard;
                st.weight = op.weight;
                st.mem_tag = tag;
                stores.push(st);
            }
            out.push(op);
            out.extend(stores);
        }
        f.block_mut(b).ops = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::layout;
    use epic_ir::builder::FuncBuilder;
    use epic_ir::FuncId;

    #[test]
    fn allocates_disjoint_lifetimes_and_reports_window() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let p = b.param();
        let x = b.binop(Opcode::Add, p, 1i64);
        let y = b.binop(Opcode::Add, x, 2i64);
        b.out(y);
        b.ret(None);
        let mut f = b.finish();
        let order = layout(&f);
        let mut prog_t = epic_ir::Program::new();
        let r = allocate(&mut f, &order, &mut prog_t);
        assert_eq!(r.spills, 0);
        assert!(r.n_gr >= 1 && r.n_gr <= 4, "window {}", r.n_gr);
        assert_eq!(r.param_regs, vec![0]);
        // all operands are now physical (< GR_WINDOW + PR range)
        for blk in f.block_ids() {
            for op in &f.block(blk).ops {
                for d in op.defs() {
                    assert!(d.0 < GR_WINDOW + PR_POOL);
                }
            }
        }
    }

    #[test]
    fn guards_land_in_predicate_file() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let tgt = b.block();
        let p = b.param();
        let c = b.cmp(epic_ir::CmpKind::SGt, p, 0i64);
        b.brc(c, tgt);
        b.br(tgt);
        b.switch_to(tgt);
        b.ret(None);
        let mut f = b.finish();
        let order = layout(&f);
        let mut prog_t = epic_ir::Program::new();
        let r = allocate(&mut f, &order, &mut prog_t);
        assert_eq!(r.n_pr, 1);
        let guard = f.block(epic_ir::BlockId(0)).ops[1].guard.unwrap();
        assert!(guard.0 >= GR_WINDOW);
        // the cmp's dst is the same predicate register
        assert_eq!(f.block(epic_ir::BlockId(0)).ops[0].dsts[0], guard);
    }

    #[test]
    fn high_pressure_spills_and_stays_correct() {
        // build > GR_POOL simultaneously-live values, then consume them
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let mut vals = Vec::new();
        for i in 0..(GR_POOL + 8) as i64 {
            vals.push(b.mov(i));
        }
        let mut acc = b.mov(0i64);
        for v in vals {
            acc = b.binop(Opcode::Add, acc, v);
        }
        b.out(acc);
        b.ret(None);
        let mut f = b.finish();
        let order = layout(&f);
        let mut prog_t = epic_ir::Program::new();
        let r = allocate(&mut f, &order, &mut prog_t);
        assert!(r.spills > 0);
        // executable result must still be the arithmetic series sum
        let mut prog = epic_ir::Program::new();
        prog.add_func("main");
        f.name = "main".into();
        prog.funcs[0] = f;
        let got = epic_ir::interp::run(&prog, &[], Default::default()).unwrap();
        let n = (GR_POOL + 8) as u64;
        assert_eq!(got.output, vec![n * (n - 1) / 2]);
    }

    #[test]
    fn loop_carried_values_keep_registers_across_backedge() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let body = b.block();
        let exit = b.block();
        let i = b.vreg();
        let acc = b.vreg();
        b.mov_to(i, 0i64);
        b.mov_to(acc, 0i64);
        b.br(body);
        b.switch_to(body);
        // use acc early, def late (wrap-around liveness)
        let t = b.binop(Opcode::Add, acc, i);
        b.mov_to(acc, t);
        b.binop_to(i, Opcode::Add, i, 1i64);
        let p = b.cmp(epic_ir::CmpKind::SLt, i, 10i64);
        b.brc(p, body);
        b.br(exit);
        b.switch_to(exit);
        b.out(acc);
        b.ret(None);
        let mut f = b.finish();
        let order = layout(&f);
        let mut prog_t = epic_ir::Program::new();
        allocate(&mut f, &order, &mut prog_t);
        let mut prog = epic_ir::Program::new();
        prog.add_func("main");
        f.name = "main".into();
        prog.funcs[0] = f;
        let got = epic_ir::interp::run(&prog, &[], Default::default()).unwrap();
        assert_eq!(got.output, vec![45]);
    }
}
