//! Rebalance-plan properties under random membership churn.
//!
//! The gateway's warm-before-cutover machinery rests on one claim: for
//! any membership change, [`plan_moves`] relocates **exactly** the keys
//! whose primary shard changes, and replaying the plan (idempotent
//! `put`s of each moved key onto its new primary) leaves every key
//! resident on its new-ring primary — i.e. the fleet is exactly as
//! warm as if it had been built on the new ring from scratch.
//!
//! This test drives that claim through random join/leave sequences
//! over the real matrix key population, maintaining a model of
//! per-shard key holdings (copies are added by moves, never deleted —
//! matching the store, where `put` writes and drain deletes nothing).

use epic_cluster::{plan_moves, Ring};
use epic_driver::OptLevel;
use epic_serve::key::{CacheKey, JobSpec};
use std::collections::{BTreeMap, BTreeSet};

/// Matrix keys plus `sim_fuel` variants, as in `ring_props`: 768
/// distinct job keys.
fn matrix_keys() -> Vec<CacheKey> {
    let mut keys = Vec::new();
    for w in epic_workloads::all() {
        for level in OptLevel::ALL {
            let base = JobSpec::for_workload(&w, level);
            for v in 0..16u64 {
                let mut spec = base.clone();
                spec.sim_fuel = 1_000_000 + v * 250_000;
                keys.push(spec.job_key());
            }
        }
    }
    keys.sort_unstable_by_key(|k| (k.hi, k.lo));
    keys.dedup();
    keys
}

/// Deterministic splitmix64 — membership choices must be reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

type KeyBits = (u64, u64);

fn bits(k: CacheKey) -> KeyBits {
    (k.hi, k.lo)
}

#[test]
fn random_churn_plans_exact_diffs_and_replay_rewarms_every_primary() {
    let keys = matrix_keys();
    assert!(keys.len() >= 500, "population too small");
    let mut rng = Rng(0x5eed_cafe);
    for trial in 0..6u64 {
        let mut ring = Ring::new(&[1, 2, 3]);
        // Fresh-ring placement: every key on its primary, nothing else.
        let mut holdings: BTreeMap<u64, BTreeSet<KeyBits>> = BTreeMap::new();
        for &k in &keys {
            holdings
                .entry(ring.primary(k).unwrap())
                .or_default()
                .insert(bits(k));
        }
        let mut next_id = 4u64;
        for step in 0..10u64 {
            // Random membership change; drains stop at a 1-shard ring,
            // exactly as the gateway refuses to drain the last shard.
            let join = ring.len() <= 1 || rng.next() % 2 == 0;
            let mut new_ring = ring.clone();
            if join {
                new_ring.join(next_id);
                next_id += 1;
            } else {
                let ids = ring.shard_ids();
                new_ring.leave(ids[rng.next() as usize % ids.len()]);
            }

            // Census exactly what the gateway censuses: the holdings of
            // old-ring members (a long-drained shard is not consulted).
            let census: Vec<(u64, Vec<CacheKey>)> = ring
                .shard_ids()
                .iter()
                .map(|id| {
                    (
                        *id,
                        holdings
                            .get(id)
                            .into_iter()
                            .flatten()
                            .map(|&(hi, lo)| CacheKey { hi, lo })
                            .collect(),
                    )
                })
                .collect();
            let plan = plan_moves(&census, &ring, &new_ring);

            // Property 1: the plan is the exact primary diff — every
            // key whose primary changed, and nothing else.
            let changed: BTreeSet<KeyBits> = keys
                .iter()
                .filter(|&&k| ring.primary(k) != new_ring.primary(k))
                .map(|&k| bits(k))
                .collect();
            let planned: BTreeSet<KeyBits> = plan.iter().map(|m| bits(m.key)).collect();
            assert_eq!(
                planned,
                changed,
                "trial {trial} step {step}: plan is not the exact primary diff \
                 ({} planned vs {} changed)",
                planned.len(),
                changed.len()
            );
            assert_eq!(plan.len(), planned.len(), "duplicate moves in plan");

            // Property 2: every move is executable — the source really
            // holds the key, the destination is the new primary.
            for m in &plan {
                assert!(
                    holdings
                        .get(&m.from)
                        .is_some_and(|h| h.contains(&bits(m.key))),
                    "trial {trial} step {step}: source {} does not hold the key",
                    m.from
                );
                assert_eq!(new_ring.primary(m.key), Some(m.to));
            }

            // Replay: each move is an idempotent put onto the new
            // primary; nobody deletes anything.
            for m in &plan {
                holdings.entry(m.to).or_default().insert(bits(m.key));
            }
            ring = new_ring;

            // Property 3: post-cutover the fleet is as warm as a fresh
            // ring — every key resident on its new primary.
            for &k in &keys {
                let p = ring.primary(k).unwrap();
                assert!(
                    holdings.get(&p).is_some_and(|h| h.contains(&bits(k))),
                    "trial {trial} step {step}: key {:016x}{:016x} cold on new primary {p}",
                    k.hi,
                    k.lo
                );
            }
        }
    }
}
