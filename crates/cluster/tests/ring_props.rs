//! Consistent-hash properties over the keys the fleet actually serves:
//! the 12-workload × 4-level matrix, widened by realistic simulation
//! variants (`sim_fuel` sweeps) to a population large enough for
//! balance statements to be statistical rather than anecdotal.
//!
//! Two families of properties:
//!
//! * **Balance** — on 3-, 5-, and 8-shard fleets, every shard owns
//!   within ±15% of its fair share of the matrix keys.
//! * **Minimal disruption** — a leave moves exactly the keys the
//!   departed shard owned (each to its old replica); a join moves only
//!   keys the new shard wins; either way the moved fraction is about
//!   `K/N`, never a reshuffle.

use epic_cluster::Ring;
use epic_driver::OptLevel;
use epic_serve::key::{CacheKey, JobSpec};
use std::collections::HashMap;

/// Matrix keys plus `sim_fuel` variants: 12 workloads × 4 levels × 16
/// fuel settings = 768 distinct job keys.
fn matrix_keys() -> Vec<CacheKey> {
    let mut keys = Vec::new();
    for w in epic_workloads::all() {
        for level in OptLevel::ALL {
            let base = JobSpec::for_workload(&w, level);
            for v in 0..16u64 {
                let mut spec = base.clone();
                spec.sim_fuel = 1_000_000 + v * 250_000;
                keys.push(spec.job_key());
            }
        }
    }
    keys.sort_unstable_by_key(|k| (k.hi, k.lo));
    keys.dedup();
    keys
}

fn load(ring: &Ring, keys: &[CacheKey]) -> HashMap<u64, usize> {
    let mut counts: HashMap<u64, usize> = ring.shard_ids().iter().map(|&id| (id, 0)).collect();
    for &k in keys {
        *counts.get_mut(&ring.primary(k).unwrap()).unwrap() += 1;
    }
    counts
}

#[test]
fn matrix_keys_balance_within_15_percent_on_3_5_and_8_shards() {
    let keys = matrix_keys();
    assert!(keys.len() >= 500, "population too small to test balance");
    for n in [3usize, 5, 8] {
        let ring = Ring::new(&(1..=n as u64).collect::<Vec<_>>());
        let fair = keys.len() as f64 / n as f64;
        for (shard, count) in load(&ring, &keys) {
            let skew = (count as f64 - fair).abs() / fair;
            assert!(
                skew <= 0.15,
                "{n} shards: shard {shard} owns {count} of {} (fair {fair:.0}, skew {:.1}%)",
                keys.len(),
                skew * 100.0
            );
        }
    }
}

#[test]
fn a_leave_moves_exactly_the_departed_shards_keys_to_their_replicas() {
    let keys = matrix_keys();
    let ring = Ring::new(&[1, 2, 3, 4, 5]);
    let departed = 3u64;
    let mut after = ring.clone();
    after.leave(departed);
    let mut moved = 0usize;
    for &k in &keys {
        let before = ring.route(k).unwrap();
        let now = after.primary(k).unwrap();
        if before.primary == departed {
            // orphaned keys land on their old replica — the shard warm
            // replication has been feeding all along
            moved += 1;
            assert_eq!(Some(now), before.replica);
        } else {
            // everyone else's argmax is untouched
            assert_eq!(now, before.primary);
        }
    }
    // the moved set is one shard's load: its fair share, within the
    // balance tolerance established above
    let fair = keys.len() as f64 / ring.len() as f64;
    assert!(
        (moved as f64) <= fair * 1.15,
        "leave moved {moved} keys, fair share is {fair:.0}"
    );
    assert!(moved > 0, "shard {departed} owned nothing?");
}

#[test]
fn a_join_moves_only_keys_the_new_shard_wins() {
    let keys = matrix_keys();
    let ring = Ring::new(&[1, 2, 3, 4, 5]);
    let joiner = 6u64;
    let mut after = ring.clone();
    after.join(joiner);
    let mut moved = 0usize;
    for &k in &keys {
        let before = ring.primary(k).unwrap();
        let now = after.primary(k).unwrap();
        if now != before {
            moved += 1;
            assert_eq!(
                now, joiner,
                "a join must never shuffle keys between old shards"
            );
        }
    }
    // the joiner picks up about a 1/(N+1) share and nothing more
    let fair = keys.len() as f64 / after.len() as f64;
    assert!(
        (moved as f64) <= fair * 1.15,
        "join moved {moved} keys, fair share is {fair:.0}"
    );
    assert!(moved > 0, "joiner won nothing from {} keys", keys.len());
}
