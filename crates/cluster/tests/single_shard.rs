//! The `replica: None` path end-to-end: a 1-shard ring (at boot or
//! after draining down to one) must skip hedging and warm replication
//! entirely — there is no replica, and hedging against the primary
//! itself would just double every submit.
//!
//! Lives in its own test binary: the assertions read the process-wide
//! `gateway.cluster.*` counters, which other e2e tests would pollute.

use epic_cluster::{gate, GatewayConfig};
use epic_serve::testutil::InstantRunner;
use epic_serve::{serve_with, ArtifactStore, Client, JobSpec, Priority, Scheduler};
use epic_serve::{ServerConfig, ServerHandle};
use epic_trace::MetricValue;
use std::sync::Arc;
use std::time::Duration;

fn instant_shard(shard_id: u64) -> ServerHandle {
    let store = Arc::new(ArtifactStore::in_memory());
    let sched = Arc::new(Scheduler::with_runner(
        store,
        Box::new(InstantRunner::default()),
        4,
        64,
    ));
    let cfg = ServerConfig {
        shard_id,
        ..ServerConfig::default()
    };
    serve_with("127.0.0.1:0", sched, cfg).unwrap()
}

fn matrix_specs() -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for w in epic_workloads::all() {
        for level in epic_driver::OptLevel::ALL {
            specs.push(JobSpec::for_workload(&w, level));
        }
    }
    specs
}

fn counter(client: &mut Client, name: &str) -> u64 {
    match client.metrics().unwrap().get(name) {
        Some(MetricValue::Counter(v)) => *v,
        None => 0,
        other => panic!("{name} is not a counter: {other:?}"),
    }
}

#[test]
fn a_single_shard_fleet_never_hedges_or_replicates() {
    let mut s = instant_shard(7);
    let shards = vec![(7, s.addr().to_string())];
    // an absurdly eager hedge budget: if the gateway were willing to
    // hedge a 1-shard ring, this would force it to
    let cfg = GatewayConfig {
        hedge_after: Duration::from_millis(1),
        poll_park: Duration::from_millis(1),
        ..GatewayConfig::default()
    };
    let mut gw = gate("127.0.0.1:0", &shards, cfg).unwrap();
    let mut client = Client::connect(&gw.addr().to_string()).unwrap();

    let specs = matrix_specs();
    for spec in &specs {
        let served = client.submit(spec, Priority::Normal, 0).unwrap();
        assert!(!served.cache_hit);
    }
    // give a (buggy) hedge or replicate every chance to fire
    std::thread::sleep(Duration::from_millis(50));
    for spec in &specs {
        let served = client.submit(spec, Priority::Normal, 0).unwrap();
        assert!(served.cache_hit, "resubmit must hit the lone shard's cache");
    }

    assert_eq!(
        counter(&mut client, "gateway.cluster.hedged"),
        0,
        "a 1-shard ring has no replica to hedge to"
    );
    assert_eq!(
        counter(&mut client, "gateway.cluster.replicated"),
        0,
        "a 1-shard ring has no replica to warm"
    );
    assert_eq!(s.stats().sched.jobs_run, 48);

    // drain-to-1 behaves the same: grow to two shards, drain back down,
    // and a fresh submit on the lone survivor stays hedge/replica-free
    let s8 = instant_shard(8);
    client.cluster_join(8, &s8.addr().to_string()).unwrap();
    client.cluster_drain(8).unwrap();
    let hedged_before = counter(&mut client, "gateway.cluster.hedged");
    let replicated_before = counter(&mut client, "gateway.cluster.replicated");

    let mut fresh = specs[0].clone();
    fresh.sim_fuel += 12_345; // a key nobody has computed yet
    let served = client.submit(&fresh, Priority::Normal, 0).unwrap();
    assert!(!served.cache_hit);
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(
        counter(&mut client, "gateway.cluster.hedged"),
        hedged_before
    );
    assert_eq!(
        counter(&mut client, "gateway.cluster.replicated"),
        replicated_before
    );

    // protocol shutdown still reaches the drained shard
    client.shutdown().unwrap();
    s.wait();
    let mut s8 = s8;
    s8.wait();
    gw.wait();
}
