//! End-to-end fleet tests over real loopback TCP: an `epicg` gateway in
//! front of in-process `epicd` shards. Covers the tentpole behaviours —
//! hedged submits beating a stuck shard without duplicate side effects,
//! warm-cache replication surviving the primary's death, fleet
//! stats/metrics merging, and protocol-level fleet shutdown.

use epic_cluster::{gate, GatewayConfig, Ring};
use epic_serve::testutil::{dummy_measurement, gated_scheduler, InstantRunner};
use epic_serve::{digest, serve_with, ArtifactStore, Client, JobSpec, Priority, Scheduler};
use epic_serve::{ServerConfig, ServerHandle};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An in-process instant shard: `(handle, its store)`.
fn instant_shard(shard_id: u64) -> (ServerHandle, Arc<ArtifactStore>) {
    let store = Arc::new(ArtifactStore::in_memory());
    let sched = Arc::new(Scheduler::with_runner(
        Arc::clone(&store),
        Box::new(InstantRunner::default()),
        4,
        64,
    ));
    let cfg = ServerConfig {
        shard_id,
        ..ServerConfig::default()
    };
    let handle = serve_with("127.0.0.1:0", sched, cfg).unwrap();
    (handle, store)
}

/// The full 12×4 matrix as job specs.
fn matrix_specs() -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for w in epic_workloads::all() {
        for level in epic_driver::OptLevel::ALL {
            specs.push(JobSpec::for_workload(&w, level));
        }
    }
    specs
}

#[test]
fn hedged_submits_beat_a_stuck_shard_without_duplicate_work() {
    // shard 1 accepts jobs but never finishes one (its gate stays shut
    // until teardown); shard 2 answers instantly
    let (stuck_sched, release) = gated_scheduler(4, 64);
    let stuck_cfg = ServerConfig {
        shard_id: 1,
        ..ServerConfig::default()
    };
    let mut stuck = serve_with("127.0.0.1:0", Arc::clone(&stuck_sched), stuck_cfg).unwrap();
    let (mut fast, _fast_store) = instant_shard(2);

    let shards = vec![(1, stuck.addr().to_string()), (2, fast.addr().to_string())];
    let cfg = GatewayConfig {
        hedge_after: Duration::from_millis(50),
        ..GatewayConfig::default()
    };
    let mut gw = gate("127.0.0.1:0", &shards, cfg).unwrap();
    let mut client = Client::connect(&gw.addr().to_string()).unwrap();

    let specs = matrix_specs();
    assert_eq!(specs.len(), 48);
    for spec in &specs {
        let t0 = Instant::now();
        let served = client.submit(spec, Priority::Normal, 0).unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "a hedged submit must not wait on the stuck shard"
        );
        // results are byte-identical to what any healthy shard computes
        assert_eq!(
            digest(&served.measurement),
            digest(&dummy_measurement(spec.source.len() as u64)),
            "wrong bytes for {}",
            spec.source.len()
        );
    }

    // exactly-once side effects: every cell ran once on the fast shard
    // (whether it was primary or the hedge target), and the stuck shard
    // completed nothing
    assert_eq!(fast.stats().sched.jobs_run, 48);
    assert_eq!(stuck.stats().sched.jobs_run, 0);

    // teardown: open the gate so the stuck shard's parked workers can
    // drain before scheduler shutdown
    drop(release);
    gw.stop();
    stuck.stop();
    fast.stop();
}

#[test]
fn fresh_results_replicate_and_failover_serves_them_warm() {
    let (s1, store1) = instant_shard(1);
    let (s2, store2) = instant_shard(2);
    let shards = vec![(1, s1.addr().to_string()), (2, s2.addr().to_string())];
    // hedging off (huge budget): this test is about replication
    let cfg = GatewayConfig {
        hedge_after: Duration::from_secs(600),
        connect_timeout: Duration::from_millis(200),
        ..GatewayConfig::default()
    };
    let mut gw = gate("127.0.0.1:0", &shards, cfg).unwrap();
    let mut client = Client::connect(&gw.addr().to_string()).unwrap();

    let spec = matrix_specs().into_iter().next().unwrap();
    let key = spec.job_key();
    let route = Ring::new(&[1, 2]).route(key).unwrap();
    let (primary_store, replica_store) = if route.primary == 1 {
        (&store1, &store2)
    } else {
        (&store2, &store1)
    };

    let served = client.submit(&spec, Priority::Normal, 0).unwrap();
    assert!(!served.cache_hit, "first submit must be fresh");
    assert!(primary_store.lookup(key).is_some());

    // replication is fire-and-forget; give it a moment to land
    let t0 = Instant::now();
    while replica_store.lookup(key).is_none() {
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "replica store never received the warm copy"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        digest(&replica_store.lookup(key).unwrap()),
        digest(&served.measurement),
        "replicated bytes differ from the served result"
    );

    // resubmission is a cache hit on the primary
    let again = client.submit(&spec, Priority::Normal, 0).unwrap();
    assert!(again.cache_hit);

    // kill the primary: the gateway fails over and the replica answers
    // from its warm cache — no lost cell, no re-run, identical bytes
    let (mut dead, mut alive) = if route.primary == 1 {
        (s1, s2)
    } else {
        (s2, s1)
    };
    dead.stop();
    let replica_runs_before = alive.stats().sched.jobs_run;
    let after = client.submit(&spec, Priority::Normal, 0).unwrap();
    assert!(
        after.cache_hit,
        "failover answer must come from the warm replica cache"
    );
    assert_eq!(digest(&after.measurement), digest(&served.measurement));
    assert_eq!(alive.stats().sched.jobs_run, replica_runs_before);

    // the result verb fails over the same way
    let fetched = client
        .result(key)
        .unwrap()
        .expect("replica holds the result");
    assert_eq!(digest(&fetched), digest(&served.measurement));

    gw.stop();
    alive.stop();
}

#[test]
fn fleet_stats_and_metrics_merge_through_the_gateway() {
    let (mut s1, _st1) = instant_shard(1);
    let (mut s2, _st2) = instant_shard(2);
    let shards = vec![(1, s1.addr().to_string()), (2, s2.addr().to_string())];
    let mut gw = gate("127.0.0.1:0", &shards, GatewayConfig::default()).unwrap();
    let mut client = Client::connect(&gw.addr().to_string()).unwrap();

    let specs: Vec<JobSpec> = matrix_specs().into_iter().take(8).collect();
    for spec in &specs {
        client.submit(spec, Priority::Normal, 0).unwrap();
    }

    // stats fan out and sum; the aggregate speaks for no single shard
    let merged = client.stats().unwrap();
    assert_eq!(merged.shard_id, 0);
    assert_eq!(
        merged.sched.jobs_run,
        s1.stats().sched.jobs_run + s2.stats().sched.jobs_run
    );
    assert_eq!(merged.sched.jobs_run, 8);
    assert!(
        s1.stats().sched.jobs_run > 0 && s2.stats().sched.jobs_run > 0,
        "8 matrix cells should spread across both shards"
    );

    // metrics merge into shard<id>. / fleet. / gateway. sections
    let snap = client.metrics().unwrap();
    for prefix in ["shard1.", "shard2.", "fleet.", "gateway.cluster."] {
        assert!(
            snap.entries.iter().any(|e| e.name.starts_with(prefix)),
            "merged snapshot is missing a {prefix} section"
        );
    }
    let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted, "merged snapshot must stay name-sorted");

    gw.stop();
    s1.stop();
    s2.stop();
}

/// An address that refuses connections: bind an ephemeral port, note
/// the address, drop the listener.
fn dead_addr() -> String {
    let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    l.local_addr().unwrap().to_string()
}

#[test]
fn fanouts_and_shutdown_survive_a_dead_shard() {
    // regression: a fan-out leg that fails to *connect* fails while the
    // requesting client is checked out of the event loop's slab and
    // before the other legs are issued — handled inline it dropped the
    // merged answer on the floor and the client hung forever
    let (mut s2, _st2) = instant_shard(2);
    let (mut s3, _st3) = instant_shard(3);
    let shards = vec![
        (1, dead_addr()),
        (2, s2.addr().to_string()),
        (3, s3.addr().to_string()),
    ];
    let mut gw = gate("127.0.0.1:0", &shards, GatewayConfig::default()).unwrap();
    let mut client = Client::connect(&gw.addr().to_string()).unwrap();

    // stats and metrics still merge from the shards that are up
    let merged = client.stats().unwrap();
    assert_eq!(merged.shard_id, 0);
    let snap = client.metrics().unwrap();
    assert!(snap.entries.iter().any(|e| e.name.starts_with("shard2.")));

    // shutdown still reaches the live shards and acks the client
    client.shutdown().unwrap();
    s2.wait();
    s3.wait();
    gw.wait();
}

#[test]
fn a_submit_with_every_shard_dead_errors_instead_of_hanging() {
    let shards = vec![(1, dead_addr()), (2, dead_addr())];
    let cfg = GatewayConfig {
        connect_timeout: Duration::from_millis(200),
        ..GatewayConfig::default()
    };
    let mut gw = gate("127.0.0.1:0", &shards, cfg).unwrap();
    let mut client = Client::connect(&gw.addr().to_string()).unwrap();

    let spec = matrix_specs().into_iter().next().unwrap();
    let err = match client.submit(&spec, Priority::Normal, 0) {
        Ok(_) => panic!("a submit with no live shard must not succeed"),
        Err(e) => e,
    };
    assert!(
        err.to_string().contains("unreachable"),
        "expected an unreachable-shard error, got: {err}"
    );
    gw.stop();
}

#[test]
fn drain_and_join_cut_over_warm_under_concurrent_traffic() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let (mut s1, _st1) = instant_shard(1);
    let (mut s2, _st2) = instant_shard(2);
    let (mut s3, _st3) = instant_shard(3);
    let shards = vec![
        (1, s1.addr().to_string()),
        (2, s2.addr().to_string()),
        (3, s3.addr().to_string()),
    ];
    // hedging off: this test is about membership cutover, and warm-hit
    // accounting must not be muddied by duplicate attempts
    let cfg = GatewayConfig {
        hedge_after: Duration::from_secs(600),
        ..GatewayConfig::default()
    };
    let mut gw = gate("127.0.0.1:0", &shards, cfg).unwrap();
    let gw_addr = gw.addr().to_string();
    let mut client = Client::connect(&gw_addr).unwrap();

    // warm the full matrix through the gateway and pin every cell's bytes
    let specs = matrix_specs();
    let mut digests = Vec::new();
    for spec in &specs {
        let served = client.submit(spec, Priority::Normal, 0).unwrap();
        digests.push(digest(&served.measurement));
    }

    // a second client sweeps the matrix continuously across both
    // cutovers; any error or changed byte is a test failure
    let stop = Arc::new(AtomicBool::new(false));
    let sweeps = Arc::new(AtomicU64::new(0));
    let sweeper = {
        let (stop, sweeps) = (Arc::clone(&stop), Arc::clone(&sweeps));
        let (specs, digests, addr) = (specs.clone(), digests.clone(), gw_addr.clone());
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            while !stop.load(Ordering::Relaxed) {
                for (spec, d) in specs.iter().zip(&digests) {
                    let served = c
                        .submit(spec, Priority::Normal, 0)
                        .expect("cutover must be invisible to concurrent traffic");
                    assert_eq!(digest(&served.measurement), *d, "bytes changed mid-cutover");
                }
                sweeps.fetch_add(1, Ordering::Relaxed);
            }
        })
    };

    // drain shard 1: its keys must be pushed to their new primaries
    // before the ring swaps
    let old_ring = Ring::new(&[1, 2, 3]);
    let report = client.cluster_drain(1).unwrap();
    assert_eq!(report.ring, vec![2, 3]);
    let shard1_keys = specs
        .iter()
        .filter(|s| old_ring.primary(s.job_key()) == Some(1))
        .count() as u64;
    assert_eq!(
        report.keys_moved, shard1_keys,
        "a drain moves exactly the drained shard's primaries"
    );
    assert_eq!(report.skipped, 0, "every shard is alive; nothing may skip");

    // the typed fleet view reflects the cutover: shard 1 is out of the
    // ring but still reachable (old-ring traffic, shutdown fanout)
    let fs = client.fleet_status().unwrap();
    assert_eq!(fs.version, 2);
    let info1 = fs.shards.iter().find(|s| s.id == 1).unwrap();
    assert!(!info1.in_ring && info1.reachable);
    let in_ring: Vec<u64> = fs
        .shards
        .iter()
        .filter(|s| s.in_ring)
        .map(|s| s.id)
        .collect();
    assert_eq!(in_ring, vec![2, 3]);

    // join a cold shard 4: it must come up warm
    let (mut s4, store4) = instant_shard(4);
    let report = client.cluster_join(4, &s4.addr().to_string()).unwrap();
    assert_eq!(report.ring, vec![2, 3, 4]);
    let (ring23, ring234) = (Ring::new(&[2, 3]), Ring::new(&[2, 3, 4]));
    let expected_moves = specs
        .iter()
        .filter(|s| ring23.primary(s.job_key()) != ring234.primary(s.job_key()))
        .count() as u64;
    assert_eq!(report.keys_moved, expected_moves);
    assert!(
        report.keys_moved > 0,
        "the joiner won nothing from 48 cells"
    );
    assert!(report.bytes > 0);
    for spec in &specs {
        let key = spec.job_key();
        if ring234.primary(key) == Some(4) {
            assert!(
                store4.lookup(key).is_some(),
                "joined shard must hold its keys before the cutover"
            );
        }
    }

    // make sure at least one full sweep ran strictly after the drain
    // started, then stop the sweeper; a panic inside it fails the join
    let t0 = Instant::now();
    let target = sweeps.load(Ordering::Relaxed) + 1;
    while sweeps.load(Ordering::Relaxed) < target {
        assert!(t0.elapsed() < Duration::from_secs(30), "sweeper stalled");
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::Relaxed);
    sweeper
        .join()
        .expect("concurrent sweeper saw an error or wrong bytes");

    // zero warm-cache loss: the post-cutover sweep is 48/48 cache hits
    // with byte-identical cells, and nothing anywhere re-ran
    for (spec, d) in specs.iter().zip(&digests) {
        let served = client.submit(spec, Priority::Normal, 0).unwrap();
        assert!(served.cache_hit, "cell went cold across the cutover");
        assert_eq!(digest(&served.measurement), *d);
    }
    let total_runs = s1.stats().sched.jobs_run
        + s2.stats().sched.jobs_run
        + s3.stats().sched.jobs_run
        + s4.stats().sched.jobs_run;
    assert_eq!(total_runs, 48, "a warm cutover must not recompute cells");

    // protocol shutdown reaches the whole fleet — the drained shard too
    client.shutdown().unwrap();
    s1.wait();
    s2.wait();
    s3.wait();
    s4.wait();
    gw.wait();
}

#[test]
fn admin_verbs_validate_membership_and_refuse_bad_ops() {
    let (mut s1, _st1) = instant_shard(1);
    let (mut s2, _st2) = instant_shard(2);
    let shards = vec![(1, s1.addr().to_string()), (2, s2.addr().to_string())];
    let mut gw = gate("127.0.0.1:0", &shards, GatewayConfig::default()).unwrap();
    let mut client = Client::connect(&gw.addr().to_string()).unwrap();

    // joining an existing member is refused
    let err = client.cluster_join(1, &s1.addr().to_string()).unwrap_err();
    assert!(err.to_string().contains("already in the ring"), "{err}");
    // draining a stranger is refused
    let err = client.cluster_drain(9).unwrap_err();
    assert!(err.to_string().contains("not in the ring"), "{err}");
    // the fleet must never drain to nothing
    client.cluster_drain(1).unwrap();
    let err = client.cluster_drain(2).unwrap_err();
    assert!(err.to_string().contains("last shard"), "{err}");
    // the ring survived every refusal
    let fs = client.fleet_status().unwrap();
    let in_ring: Vec<u64> = fs
        .shards
        .iter()
        .filter(|s| s.in_ring)
        .map(|s| s.id)
        .collect();
    assert_eq!(in_ring, vec![2]);

    gw.stop();
    s1.stop();
    s2.stop();
}

#[test]
fn shutdown_through_the_gateway_stops_the_whole_fleet() {
    let (mut s1, _st1) = instant_shard(1);
    let (mut s2, _st2) = instant_shard(2);
    let shards = vec![(1, s1.addr().to_string()), (2, s2.addr().to_string())];
    let mut gw = gate("127.0.0.1:0", &shards, GatewayConfig::default()).unwrap();

    let mut client = Client::connect(&gw.addr().to_string()).unwrap();
    client.shutdown().unwrap();

    // every shard's loop exits (the fan-out delivered the verb), then
    // the gateway's own loop exits after acknowledging
    s1.wait();
    s2.wait();
    gw.wait();
}
