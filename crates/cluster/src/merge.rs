//! Fleet-wide views: summing per-shard [`ServeStats`] and merging
//! per-shard metrics-registry snapshots into one snapshot that carries
//! per-shard, fleet-aggregate, and gateway-local sections.
//!
//! The merged snapshot uses name prefixes rather than a new wire type,
//! so `epicc top` renders a cluster exactly the way it renders one
//! daemon:
//!
//! * `shard<id>.<name>` — that shard's entry, verbatim.
//! * `fleet.<name>` — the cross-shard aggregate: counters and gauges
//!   sum; histograms merge bucket-wise (log2 buckets are positional, so
//!   merging is exact, not an approximation).
//! * `gateway.<name>` — the gateway process's own registry (hedges,
//!   failovers, replication pushes).

use epic_serve::proto::ServeStats;
use epic_trace::{HistogramSnapshot, MetricEntry, MetricValue, MetricsSnapshot};
use std::collections::BTreeMap;

/// Field-wise sum of per-shard stats (the gateway's `stats` verb
/// answer). `shard_id` is 0: the aggregate speaks for no single shard.
pub fn merge_stats(per_shard: &[ServeStats]) -> ServeStats {
    let mut out = ServeStats::default();
    for s in per_shard {
        out.store.hits += s.store.hits;
        out.store.misses += s.store.misses;
        out.store.evictions += s.store.evictions;
        out.store.disk_hits += s.store.disk_hits;
        out.store.disk_writes += s.store.disk_writes;
        out.store.mach_hits += s.store.mach_hits;
        out.store.mem_entries += s.store.mem_entries;
        out.sched.submitted += s.sched.submitted;
        out.sched.cache_hits += s.sched.cache_hits;
        out.sched.coalesced += s.sched.coalesced;
        out.sched.shed += s.sched.shed;
        out.sched.jobs_run += s.sched.jobs_run;
        out.sched.expired += s.sched.expired;
        out.sched.queue_depth += s.sched.queue_depth;
        out.sched.in_flight += s.sched.in_flight;
        out.compiles += s.compiles;
        out.sims += s.sims;
    }
    out
}

/// Two same-named metric values merged; mismatched kinds keep the first
/// (cannot happen for snapshots produced by one binary, but a merged
/// view must not panic on a heterogeneous fleet).
fn merge_value(a: &MetricValue, b: &MetricValue) -> MetricValue {
    match (a, b) {
        (MetricValue::Counter(x), MetricValue::Counter(y)) => MetricValue::Counter(x + y),
        (MetricValue::Gauge(x), MetricValue::Gauge(y)) => MetricValue::Gauge(x + y),
        (MetricValue::Histogram(x), MetricValue::Histogram(y)) => {
            let mut buckets: BTreeMap<u8, u64> = BTreeMap::new();
            for &(bucket, n) in x.buckets.iter().chain(&y.buckets) {
                *buckets.entry(bucket).or_default() += n;
            }
            MetricValue::Histogram(HistogramSnapshot {
                count: x.count + y.count,
                sum: x.sum + y.sum,
                buckets: buckets.into_iter().collect(),
            })
        }
        (other, _) => other.clone(),
    }
}

/// Merge per-shard snapshots (shard id, snapshot) plus the gateway's own
/// registry into one name-sorted snapshot (see the module docs for the
/// prefix scheme).
pub fn merge_metrics(
    per_shard: &[(u64, MetricsSnapshot)],
    gateway: &MetricsSnapshot,
) -> MetricsSnapshot {
    let mut entries: Vec<MetricEntry> = Vec::new();
    let mut fleet: BTreeMap<&str, MetricValue> = BTreeMap::new();
    for (id, snap) in per_shard {
        for e in &snap.entries {
            entries.push(MetricEntry {
                name: format!("shard{id}.{}", e.name),
                value: e.value.clone(),
            });
            fleet
                .entry(e.name.as_str())
                .and_modify(|v| *v = merge_value(v, &e.value))
                .or_insert_with(|| e.value.clone());
        }
    }
    entries.extend(fleet.into_iter().map(|(name, value)| MetricEntry {
        name: format!("fleet.{name}"),
        value,
    }));
    entries.extend(gateway.entries.iter().map(|e| MetricEntry {
        name: format!("gateway.{}", e.name),
        value: e.value.clone(),
    }));
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    MetricsSnapshot { entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(name: &str, v: u64) -> MetricEntry {
        MetricEntry {
            name: name.to_string(),
            value: MetricValue::Counter(v),
        }
    }

    #[test]
    fn stats_merge_sums_every_field() {
        let mut a = ServeStats::default();
        a.compiles = 10;
        a.sims = 11;
        a.sched.jobs_run = 10;
        a.sched.cache_hits = 2;
        a.store.hits = 2;
        a.shard_id = 1;
        let mut b = ServeStats::default();
        b.compiles = 38;
        b.sims = 37;
        b.sched.jobs_run = 38;
        b.store.hits = 9;
        b.shard_id = 2;
        let m = merge_stats(&[a, b]);
        assert_eq!(m.compiles, 48);
        assert_eq!(m.sims, 48);
        assert_eq!(m.sched.jobs_run, 48);
        assert_eq!(m.sched.cache_hits, 2);
        assert_eq!(m.store.hits, 11);
        assert_eq!(m.shard_id, 0, "an aggregate speaks for no shard");
    }

    #[test]
    fn metrics_merge_prefixes_shards_and_aggregates_the_fleet() {
        let s1 = MetricsSnapshot {
            entries: vec![
                counter("serve.jobs_run", 10),
                MetricEntry {
                    name: "serve.queue_depth".to_string(),
                    value: MetricValue::Gauge(3),
                },
            ],
        };
        let s2 = MetricsSnapshot {
            entries: vec![
                counter("serve.jobs_run", 38),
                MetricEntry {
                    name: "serve.queue_depth".to_string(),
                    value: MetricValue::Gauge(-1),
                },
            ],
        };
        let gw = MetricsSnapshot {
            entries: vec![counter("cluster.hedged", 4)],
        };
        let m = merge_metrics(&[(1, s1), (2, s2)], &gw);
        assert_eq!(
            m.get("fleet.serve.jobs_run"),
            Some(&MetricValue::Counter(48))
        );
        assert_eq!(
            m.get("fleet.serve.queue_depth"),
            Some(&MetricValue::Gauge(2))
        );
        assert_eq!(
            m.get("shard1.serve.jobs_run"),
            Some(&MetricValue::Counter(10))
        );
        assert_eq!(
            m.get("shard2.serve.jobs_run"),
            Some(&MetricValue::Counter(38))
        );
        assert_eq!(
            m.get("gateway.cluster.hedged"),
            Some(&MetricValue::Counter(4))
        );
        // name-sorted, same contract as a single daemon's snapshot
        let names: Vec<&str> = m.entries.iter().map(|e| e.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn histograms_merge_bucket_wise() {
        let h = |buckets: Vec<(u8, u64)>, count, sum| {
            MetricValue::Histogram(HistogramSnapshot {
                count,
                sum,
                buckets,
            })
        };
        let merged = merge_value(
            &h(vec![(3, 2), (7, 1)], 3, 700),
            &h(vec![(3, 5), (9, 4)], 9, 1300),
        );
        match merged {
            MetricValue::Histogram(hs) => {
                assert_eq!(hs.count, 12);
                assert_eq!(hs.sum, 2000);
                assert_eq!(hs.buckets, vec![(3, 7), (7, 1), (9, 4)]);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
