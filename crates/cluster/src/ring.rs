//! Consistent routing of 128-bit job keys onto a fleet of shards via
//! rendezvous (highest-random-weight) hashing.
//!
//! Every shard has a stable `u64` identity. A key's score against a
//! shard is a strong mix of the key lanes with the shard id; the shard
//! with the highest score owns the key, the runner-up is its replica.
//! This
//! gives the two properties the fleet needs, both by construction:
//!
//! * **Determinism** — routing is a pure function of (key, membership).
//!   Gateways never need to agree on anything beyond the shard list.
//! * **Minimal disruption** — when a shard leaves, the only keys that
//!   move are the ones it owned (every other key's argmax is unchanged);
//!   when a shard joins, the only keys that move are the ones the new
//!   shard now wins. No vnode table, no resharding sweep.
//!
//! Rendezvous beats a vnode ring here because the fleet is small (ones
//! to tens of shards): scoring is O(shards) per route, and balance comes
//! from the hash itself instead of from tuning vnode counts.

use epic_serve::key::CacheKey;

/// Where a key lives: the owning shard and (fleet size permitting) the
/// runner-up that hedged requests and warm replicas go to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Route {
    /// The shard that owns the key.
    pub primary: u64,
    /// Second-highest scorer; `None` on a single-shard fleet.
    pub replica: Option<u64>,
}

/// A fleet membership view: the sorted set of shard ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Ring {
    shards: Vec<u64>,
}

impl Ring {
    /// A ring over `ids` (duplicates collapse, order is irrelevant).
    pub fn new(ids: &[u64]) -> Ring {
        let mut shards = ids.to_vec();
        shards.sort_unstable();
        shards.dedup();
        Ring { shards }
    }

    /// Current membership, sorted.
    pub fn shard_ids(&self) -> &[u64] {
        &self.shards
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when no shards are registered.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Add a shard; false if it was already present.
    pub fn join(&mut self, id: u64) -> bool {
        match self.shards.binary_search(&id) {
            Ok(_) => false,
            Err(at) => {
                self.shards.insert(at, id);
                true
            }
        }
    }

    /// Remove a shard; false if it was not present.
    pub fn leave(&mut self, id: u64) -> bool {
        match self.shards.binary_search(&id) {
            Ok(at) => {
                self.shards.remove(at);
                true
            }
            Err(_) => false,
        }
    }

    /// The rendezvous score of `key` on `shard`. Pure and stable across
    /// processes — every gateway computes the same placement.
    ///
    /// The key lanes are already uniform (FNV over canonical job
    /// bytes), but the shard id is small and sequential, and argmax
    /// selection is merciless about weak avalanche: byte-at-a-time FNV
    /// over `key ++ shard` leaves adjacent ids correlated enough to
    /// skew placement by >25% on real matrix keys. A splitmix64-style
    /// finalizer over both mixes every id bit through every score bit.
    pub fn score(key: CacheKey, shard: u64) -> u64 {
        fn mix(mut x: u64) -> u64 {
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            x
        }
        mix(key.hi ^ key.lo.rotate_left(32) ^ mix(shard ^ 0x9e37_79b9_7f4a_7c15))
    }

    /// The shard owning `key` (`None` on an empty ring).
    pub fn primary(&self, key: CacheKey) -> Option<u64> {
        self.route(key).map(|r| r.primary)
    }

    /// Owner and replica for `key`. Ties (vanishingly rare with 64-bit
    /// scores) break toward the lower shard id, keeping the choice
    /// deterministic.
    pub fn route(&self, key: CacheKey) -> Option<Route> {
        let mut best: Option<(u64, u64)> = None; // (score, id)
        let mut second: Option<(u64, u64)> = None;
        for &id in &self.shards {
            let s = Ring::score(key, id);
            // strict ordering on (score, Reverse(id)): ids are unique,
            // so equal scores rank the lower id higher
            let rank = (s, u64::MAX - id);
            match best {
                Some(b) if rank < b => {
                    if second.is_none_or(|r| rank > r) {
                        second = Some(rank);
                    }
                }
                _ => {
                    second = best;
                    best = Some(rank);
                }
            }
        }
        best.map(|(_, rid)| Route {
            primary: u64::MAX - rid,
            replica: second.map(|(_, rid)| u64::MAX - rid),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_serve::key::hash_bytes;

    fn key(i: u64) -> CacheKey {
        hash_bytes(&i.to_be_bytes())
    }

    #[test]
    fn routing_is_deterministic_and_membership_order_free() {
        let a = Ring::new(&[3, 1, 2]);
        let b = Ring::new(&[1, 2, 3, 2]);
        assert_eq!(a, b);
        for i in 0..256 {
            assert_eq!(a.route(key(i)), b.route(key(i)));
        }
    }

    #[test]
    fn replica_differs_from_primary_and_single_shard_has_none() {
        let ring = Ring::new(&[1, 2, 3]);
        for i in 0..256 {
            let r = ring.route(key(i)).unwrap();
            assert_ne!(Some(r.primary), r.replica, "key {i}");
            assert!(ring.shard_ids().contains(&r.primary));
            assert!(ring.shard_ids().contains(&r.replica.unwrap()));
        }
        let solo = Ring::new(&[7]);
        assert_eq!(
            solo.route(key(0)),
            Some(Route {
                primary: 7,
                replica: None
            })
        );
        assert_eq!(Ring::default().route(key(0)), None);
    }

    #[test]
    fn join_and_leave_maintain_the_sorted_member_set() {
        let mut ring = Ring::new(&[5, 1]);
        assert!(ring.join(3));
        assert!(!ring.join(3));
        assert_eq!(ring.shard_ids(), &[1, 3, 5]);
        assert!(ring.leave(1));
        assert!(!ring.leave(1));
        assert_eq!(ring.shard_ids(), &[3, 5]);
    }

    #[test]
    fn replica_is_the_primary_after_the_primary_leaves() {
        // the runner-up definition that makes warm replication correct:
        // remove the owner and the replica is exactly who takes over
        let ring = Ring::new(&[1, 2, 3, 4, 5]);
        for i in 0..512 {
            let r = ring.route(key(i)).unwrap();
            let mut without = ring.clone();
            without.leave(r.primary);
            assert_eq!(without.primary(key(i)), r.replica, "key {i}");
        }
    }
}
