//! Fleet serving for the IMPACT EPIC reproduction: scale the `epicd`
//! compile/sim service from one daemon to N shards behind an `epicg`
//! gateway, without changing a single client.
//!
//! The pieces, bottom-up:
//!
//! * [`ring`] — rendezvous (highest-random-weight) hashing of 128-bit
//!   job keys onto shard ids: deterministic placement, minimal key
//!   movement on membership change, and a well-defined replica (the
//!   runner-up shard) for hedging and warm replication.
//! * [`merge`] — fleet views: per-shard [`ServeStats`] summed, metrics
//!   snapshots merged into `shard<id>.` / `fleet.` / `gateway.`
//!   sections that `epicc top --cluster` renders directly.
//! * [`rebalance`] — membership-change planning: given a census of
//!   which shards hold which keys, the exact set of [`KeyMove`]s that
//!   makes a new ring as warm as the old one.
//! * [`gateway`] — the `epicg` event loop: routes by key, hedges slow
//!   submits to the replica, fails over past dead shards, replicates
//!   fresh results, fans out `stats`/`metrics`/`shutdown`, and runs
//!   the typed admin control plane (`fleet-status`/`join`/`drain`)
//!   with warm-before-cutover rebalancing.
//!
//! Everything speaks the existing length-prefixed frame protocol
//! ([`epic_serve::proto`]) on both faces, so a gateway is
//! indistinguishable from a big `epicd` to clients and from an
//! ordinary client to shards. See DESIGN.md §14 for the architecture
//! discussion and EXPERIMENTS.md for fleet recipes.
//!
//! [`ServeStats`]: epic_serve::proto::ServeStats

pub mod gateway;
pub mod merge;
pub mod rebalance;
pub mod ring;

pub use gateway::{gate, GatewayConfig, GatewayHandle};
pub use merge::{merge_metrics, merge_stats};
pub use rebalance::{plan_moves, KeyMove};
pub use ring::{Ring, Route};
