//! `epicg` — the fleet gateway daemon.
//!
//! ```text
//! epicg --shard [ID=]ADDR [--shard [ID=]ADDR ...]
//!       [--listen ADDR] [--hedge-ms MS] [--connect-timeout-ms MS]
//!       [--max-conns N]
//! ```
//!
//! Binds ADDR (default `127.0.0.1:0`), prints `epicg listening on
//! <addr>` on stdout (scripts parse this line to find the ephemeral
//! port), and gates the given `epicd` shards until a client sends the
//! `shutdown` verb (which shuts the shards down first, then the
//! gateway). Shards without an explicit `ID=` get ids 1, 2, ... in
//! argument order; ids must be stable across restarts or keys will
//! re-route.

use epic_cluster::{gate, GatewayConfig};
use std::time::Duration;

struct Args {
    listen: String,
    shards: Vec<(u64, String)>,
    cfg: GatewayConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:0".to_string(),
        shards: Vec::new(),
        cfg: GatewayConfig::default(),
    };
    let mut next_auto_id = 1u64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--listen" => args.listen = val("--listen")?,
            "--shard" => {
                let v = val("--shard")?;
                let (id, addr) = match v.split_once('=') {
                    Some((id, addr)) => {
                        let id = id.parse().map_err(|e| format!("--shard id: {e}"))?;
                        (id, addr.to_string())
                    }
                    None => (next_auto_id, v),
                };
                next_auto_id = next_auto_id.max(id + 1);
                args.shards.push((id, addr));
            }
            "--hedge-ms" => {
                let ms: u64 = val("--hedge-ms")?
                    .parse()
                    .map_err(|e| format!("--hedge-ms: {e}"))?;
                args.cfg.hedge_after = Duration::from_millis(ms);
            }
            "--connect-timeout-ms" => {
                let ms: u64 = val("--connect-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--connect-timeout-ms: {e}"))?;
                args.cfg.connect_timeout = Duration::from_millis(ms);
            }
            "--max-conns" => {
                args.cfg.max_conns = val("--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: epicg --shard [ID=]ADDR [--shard [ID=]ADDR ...] [--listen ADDR] [--hedge-ms MS] [--connect-timeout-ms MS] [--max-conns N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.shards.is_empty() {
        return Err("at least one --shard is required".to_string());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("epicg: {e}");
            std::process::exit(2);
        }
    };
    let mut handle = match gate(&args.listen, &args.shards, args.cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("epicg: bind {}: {e}", args.listen);
            std::process::exit(1);
        }
    };
    println!("epicg listening on {}", handle.addr());
    for (id, addr) in &args.shards {
        eprintln!("epicg: shard {id} at {addr}");
    }
    handle.wait();
    let snap = epic_trace::global().snapshot();
    eprintln!(
        "epicg: {} hedged ({} hedge wins), {} failovers, {} replications, {} upstream errors",
        snap.counter("cluster.hedged"),
        snap.counter("cluster.hedge_wins"),
        snap.counter("cluster.failover"),
        snap.counter("cluster.replicated"),
        snap.counter("cluster.upstream.errors"),
    );
}
