//! `epicg`: the fleet gateway as a single-threaded event loop.
//!
//! The gateway speaks the exact `epicd` frame protocol on both faces —
//! clients point `epicc` at it unchanged, and it talks to each shard as
//! an ordinary client — and adds the fleet behaviours on top:
//!
//! * **Routing** — a submit's 128-bit job key picks its shard through
//!   the rendezvous [`Ring`](crate::ring::Ring); status/result/put
//!   queries route by their key the same way. Routing is pure, so any
//!   number of gateways agree without coordination.
//! * **Hedged requests** — a submit stuck past
//!   [`hedge_after`](GatewayConfig::hedge_after) is re-issued to the
//!   key's replica shard; the first completion wins and the loser is
//!   ignored. Because jobs are content-addressed, the duplicate is
//!   harmless: both shards compute the same bytes, and the late result
//!   merely warms the loser's cache.
//! * **Failover** — a dead shard (connect refused, connection dropped
//!   mid-request) fails the *attempt*, not the request: the gateway
//!   re-issues to the next untried candidate (primary, then replica)
//!   and only errors to the client when every candidate is gone.
//! * **Warm-cache replication** — a fresh (non-cache-hit) submit result
//!   is pushed to the replica shard with the `put` verb, so the shard
//!   that would take over on failover already holds the measurement.
//! * **Fleet views** — `stats`, `metrics`, and `shutdown` fan out to
//!   every shard. Stats sum ([`merge_stats`]); metrics merge into
//!   `shard<id>.` / `fleet.` / `gateway.` sections ([`merge_metrics`]);
//!   shutdown stops the shards, then the gateway itself.
//! * **Dynamic membership** — the typed `admin` verb drives runtime
//!   `join`/`drain`/`fleet-status`. A membership change runs the
//!   warm-before-cutover state machine: census every shard's key
//!   holdings (`keys` verb), plan the exact diff between the old and
//!   new ring ([`plan_moves`]), fetch each moved key from a holder and
//!   `put` it to its new primary, and only then atomically swap the
//!   routing ring. In-flight requests issued against the old ring
//!   resolve against it (drained shards keep their addresses), so a
//!   cutover is invisible to concurrent traffic. See DESIGN.md §15.
//!
//! Like the `epicd` loop, one thread owns every socket and multiplexes
//! them with a nonblocking readiness sweep. Unlike it there is no
//! cross-thread completion source, so the loop parks in a plain sleep
//! ([`poll_park`](GatewayConfig::poll_park)) instead of a self-pipe;
//! the hedge timer inherits that granularity, which is noise against
//! any realistic hedge budget. Upstream connections are opened per
//! attempt and closed after one response — an attempt is the unit of
//! failover, and a connection that never outlives its attempt can
//! never be stale.

use crate::merge::{merge_metrics, merge_stats};
use crate::rebalance::{plan_moves, KeyMove};
use crate::ring::Ring;
use epic_serve::key::CacheKey;
use epic_serve::proto::{
    self, AdminRequest, AdminResponse, FleetStatus, FrameError, FrameEvent, RebalanceReport,
    Request, Response, ShardInfo,
};
use epic_trace::{Counter, Gauge};
use std::collections::HashMap;
use std::io::{IoSlice, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning for the gateway loop.
#[derive(Clone, Copy, Debug)]
pub struct GatewayConfig {
    /// How long a submit may sit unanswered before it is hedged to the
    /// replica shard.
    pub hedge_after: Duration,
    /// Per-attempt upstream connect timeout.
    pub connect_timeout: Duration,
    /// Longest the loop sleeps between readiness sweeps; also the
    /// hedge-timer granularity.
    pub poll_park: Duration,
    /// Client admission cap, as in `epicd`.
    pub max_conns: usize,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            hedge_after: Duration::from_millis(250),
            connect_timeout: Duration::from_secs(1),
            poll_park: Duration::from_millis(5),
            max_conns: 1024,
        }
    }
}

/// A running gateway; dropping it (or calling [`stop`](GatewayHandle::stop))
/// shuts the loop down. Stopping the gateway does **not** stop the
/// shards — only the `shutdown` verb does that, deliberately.
pub struct GatewayHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    loop_thread: Option<std::thread::JoinHandle<()>>,
}

impl GatewayHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop the loop and close every connection.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.loop_thread.take() {
            let _ = h.join();
        }
    }

    /// Block until the loop exits (a client sent `shutdown`).
    pub fn wait(&mut self) {
        if let Some(h) = self.loop_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for GatewayHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind `listen_addr` and gate the fleet `shards` (stable shard id,
/// reachable address) behind it.
///
/// # Errors
/// Bind failures, an empty or duplicate-id shard list.
pub fn gate(
    listen_addr: &str,
    shards: &[(u64, String)],
    cfg: GatewayConfig,
) -> std::io::Result<GatewayHandle> {
    let ring = Ring::new(&shards.iter().map(|(id, _)| *id).collect::<Vec<_>>());
    if ring.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "gateway needs at least one shard",
        ));
    }
    if ring.len() != shards.len() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "duplicate shard ids",
        ));
    }
    let listener = TcpListener::bind(listen_addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut gl = GatewayLoop {
        listener,
        stop: Arc::clone(&stop),
        cfg,
        ring,
        addrs: shards.iter().cloned().collect(),
        metrics: GatewayMetrics::new(),
        clients: Vec::new(),
        client_free: Vec::new(),
        live: 0,
        next_gen: 0,
        ups: Vec::new(),
        up_free: Vec::new(),
        pendings: Vec::new(),
        pending_free: Vec::new(),
        failed: Vec::new(),
        ring_version: 1,
        drained: Vec::new(),
        admin: None,
    };
    let loop_thread = std::thread::Builder::new()
        .name("epicg-loop".to_string())
        .spawn(move || gl.run())
        .expect("spawn gateway loop");
    Ok(GatewayHandle {
        addr,
        stop,
        loop_thread: Some(loop_thread),
    })
}

/// Gateway-side handles into the process-wide metrics registry; these
/// surface under the `gateway.` prefix of a merged `metrics` answer.
struct GatewayMetrics {
    conns: Gauge,
    hedged: Counter,
    hedge_wins: Counter,
    failover: Counter,
    replicated: Counter,
    upstream_errors: Counter,
    rebalance_keys_moved: Counter,
    rebalance_bytes: Counter,
    rebalance_ms: Counter,
}

impl GatewayMetrics {
    fn new() -> GatewayMetrics {
        let g = epic_trace::global();
        GatewayMetrics {
            conns: g.gauge("cluster.conns"),
            hedged: g.counter("cluster.hedged"),
            hedge_wins: g.counter("cluster.hedge_wins"),
            failover: g.counter("cluster.failover"),
            replicated: g.counter("cluster.replicated"),
            upstream_errors: g.counter("cluster.upstream.errors"),
            // merge_metrics prefixes the gateway registry with
            // `gateway.`, so these surface as
            // `gateway.rebalance.{keys_moved,bytes,ms}`.
            rebalance_keys_moved: g.counter("rebalance.keys_moved"),
            rebalance_bytes: g.counter("rebalance.bytes"),
            rebalance_ms: g.counter("rebalance.ms"),
        }
    }
}

/// Per-client-connection protocol state.
enum CState {
    /// Reading a frame through the decoder.
    Reading,
    /// A request is in flight upstream; the slot index of its pending.
    Waiting(usize),
    /// Flushing `out`.
    Writing,
}

struct ClientConn {
    stream: TcpStream,
    decoder: proto::FrameDecoder,
    state: CState,
    header: [u8; 4],
    out: Vec<u8>,
    out_sent: usize,
    gen: u64,
    shutdown_after_write: bool,
}

impl ClientConn {
    fn new(stream: TcpStream, gen: u64) -> ClientConn {
        ClientConn {
            stream,
            decoder: proto::FrameDecoder::new(),
            state: CState::Reading,
            header: [0; 4],
            out: Vec::new(),
            out_sent: 0,
            gen,
            shutdown_after_write: false,
        }
    }

    fn stage_response(&mut self, resp: &Response) {
        proto::encode_response_into(resp, &mut self.out);
        self.header = (self.out.len() as u32).to_be_bytes();
        self.out_sent = 0;
        self.state = CState::Writing;
    }

    fn write_progress(&mut self) -> std::io::Result<bool> {
        write_frame_progress(
            &mut self.stream,
            &self.header,
            &self.out,
            &mut self.out_sent,
        )
    }
}

/// Push `header ++ body` out as far as the socket allows (vectored);
/// `Ok(true)` when fully flushed.
fn write_frame_progress(
    stream: &mut TcpStream,
    header: &[u8; 4],
    body: &[u8],
    sent: &mut usize,
) -> std::io::Result<bool> {
    let total = 4 + body.len();
    while *sent < total {
        let hdr = &header[(*sent).min(4)..];
        let rest = &body[sent.saturating_sub(4)..];
        let bufs = [IoSlice::new(hdr), IoSlice::new(rest)];
        match stream.write_vectored(&bufs) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "peer stopped accepting bytes mid-frame",
                ))
            }
            Ok(n) => *sent += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Typed admin refusal, framed as the `Admin` response verb.
fn admin_err(msg: &str) -> Response {
    Response::Admin(AdminResponse::Err(msg.to_string()))
}

/// Why an attempt was issued; decides hedging bookkeeping and whether a
/// win triggers replication.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Role {
    /// First-choice shard for a routed request.
    Primary,
    /// Latency hedge on the replica shard.
    Hedge,
    /// One leg of a stats/metrics/shutdown broadcast.
    Fanout,
    /// Fire-and-forget warm-cache `put`.
    Replicate,
    /// Key census leg (`keys` verb) of a rebalance or fleet-status.
    Census,
    /// Rebalance fetch of move *i* from its source shard.
    Fetch(usize),
    /// Rebalance push of move *i* to its new primary.
    Push(usize),
}

/// One upstream attempt: a fresh connection carrying exactly one
/// request, closed after its response (see the module docs for why).
struct Upstream {
    stream: TcpStream,
    decoder: proto::FrameDecoder,
    header: [u8; 4],
    body: Vec<u8>,
    sent: usize,
    shard: u64,
    pending: usize,
    role: Role,
}

/// What a routed request still owes. Slots are freed only when every
/// attempt has reported back, so a late loser always finds the `done`
/// marker and is ignored rather than double-answered.
enum Pending {
    /// A submit: hedgeable, failover-capable, replication-triggering.
    Submit {
        client: usize,
        client_gen: u64,
        /// The encoded request frame, kept for re-issue.
        raw: Vec<u8>,
        key: CacheKey,
        primary: u64,
        replica: Option<u64>,
        /// Shards an attempt has been issued to.
        tried: Vec<u64>,
        started: Instant,
        hedged: bool,
        outstanding: u32,
        done: bool,
    },
    /// Status/result/put: routed to the key's primary, one failover to
    /// the replica (where warm replication makes the answer meaningful).
    Simple {
        client: usize,
        client_gen: u64,
        raw: Vec<u8>,
        fallback: Option<u64>,
        tried: Vec<u64>,
        outstanding: u32,
        done: bool,
    },
    /// Stats/metrics/shutdown broadcast; finalises when every shard has
    /// answered or failed.
    Fanout {
        client: usize,
        client_gen: u64,
        kind: FanKind,
        collected: Vec<(u64, Response)>,
        outstanding: u32,
    },
    /// Warm-cache `put` to a replica; nobody is waiting on it.
    Replicate { outstanding: u32 },
    /// A `join`/`drain` rebalance; the op state itself lives in
    /// [`GatewayLoop::admin`], this slot only anchors the requesting
    /// client and the in-flight attempt count.
    Admin {
        client: usize,
        client_gen: u64,
        outstanding: u32,
        done: bool,
    },
    /// A `fleet-status` census: per-shard key counts, `None` for a
    /// shard that did not answer.
    Fleet {
        client: usize,
        client_gen: u64,
        collected: Vec<(u64, Option<u64>)>,
        outstanding: u32,
    },
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum FanKind {
    Stats,
    Metrics,
    Shutdown,
}

/// How many rebalance transfers (fetch→push chains) run concurrently.
/// Enough to hide per-key round-trip latency, small enough that a
/// rebalance never starves client traffic of loop attention.
const TRANSFER_WINDOW: usize = 8;

/// State of the one in-flight membership change. A rebalance runs as a
/// three-phase state machine — census, transfer, cutover — and the
/// routing ring is swapped only in the cutover, after every moved key
/// has landed on its new primary (warm-before-cutover).
struct AdminOp {
    /// The `Pending::Admin` slot anchoring this op.
    pid: usize,
    started: Instant,
    /// The ring to cut over to once the fleet is warm.
    new_ring: Ring,
    /// Shard drained by this op; remembered as reachable-but-routable
    /// only for old traffic after the cutover.
    drain: Option<u64>,
    /// For a join: the address entry to undo if the op aborts.
    /// `(id, previous addr if the id was already known)`.
    join_rollback: Option<(u64, Option<String>)>,
    /// For a rejoin: the id to put back on the drained list on abort.
    drained_rollback: Option<u64>,
    /// Census legs still awaited.
    census_outstanding: usize,
    /// Per-shard key holdings reported so far.
    census: Vec<(u64, Vec<CacheKey>)>,
    /// The planned moves (empty until the census completes).
    moves: Vec<KeyMove>,
    /// Next move to start.
    next_move: usize,
    /// Fetch/push chains currently in flight.
    in_flight: usize,
    keys_moved: u64,
    bytes: u64,
    skipped: u64,
}

struct GatewayLoop {
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    cfg: GatewayConfig,
    ring: Ring,
    addrs: HashMap<u64, String>,
    metrics: GatewayMetrics,
    clients: Vec<Option<ClientConn>>,
    client_free: Vec<usize>,
    live: usize,
    next_gen: u64,
    ups: Vec<Option<Upstream>>,
    up_free: Vec<usize>,
    pendings: Vec<Option<Pending>>,
    pending_free: Vec<usize>,
    /// Attempts whose connect failed synchronously, deferred to a
    /// top-of-loop drain. Handling them inline would re-enter
    /// `attempt_failed` while the requesting client is checked out of
    /// the slab (its answer would vanish) and, for fan-outs, before the
    /// remaining legs have even been issued (the merge would fire
    /// early). The failed leg keeps `outstanding` above zero until the
    /// drain, so the slot cannot be freed or reused in between.
    failed: Vec<(usize, u64, Role)>,
    /// Monotonic routing-table version; bumps at every cutover.
    ring_version: u64,
    /// Shards drained out of the ring but still addressable, so that
    /// in-flight old-ring attempts, post-swap replications, and the
    /// shutdown broadcast still reach them.
    drained: Vec<u64>,
    /// The at-most-one in-flight membership change.
    admin: Option<AdminOp>,
}

impl GatewayLoop {
    fn run(&mut self) {
        while !self.stop.load(Ordering::SeqCst) {
            let mut progress = false;
            progress |= self.accept_new();
            let (p, shutdown) = self.pump_clients();
            progress |= p;
            if shutdown {
                break;
            }
            progress |= self.pump_upstreams();
            self.hedge_scan();
            progress |= self.drain_failed();
            if !progress {
                std::thread::sleep(self.cfg.poll_park);
            }
        }
        self.clients.clear();
        self.ups.clear();
        self.metrics.conns.set(0);
    }

    // ---- client face ----------------------------------------------------

    fn accept_new(&mut self) -> bool {
        let mut progress = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    progress = true;
                    if self.live >= self.cfg.max_conns {
                        let _ = stream.set_nonblocking(true);
                        let mut body = Vec::new();
                        proto::encode_response_into(
                            &Response::Err("gateway at capacity".to_string()),
                            &mut body,
                        );
                        let header = (body.len() as u32).to_be_bytes();
                        let _ =
                            (&stream).write_vectored(&[IoSlice::new(&header), IoSlice::new(&body)]);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.next_gen += 1;
                    let conn = ClientConn::new(stream, self.next_gen);
                    match self.client_free.pop() {
                        Some(slot) => self.clients[slot] = Some(conn),
                        None => self.clients.push(Some(conn)),
                    }
                    self.live += 1;
                    self.metrics.conns.set(self.live as i64);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        progress
    }

    /// Drive every client connection. Returns `(progress, shutdown)`.
    fn pump_clients(&mut self) -> (bool, bool) {
        let mut progress = false;
        for slot in 0..self.clients.len() {
            let Some(mut conn) = self.clients[slot].take() else {
                continue;
            };
            let before = (conn.out_sent, conn.decoder.mid_frame());
            match self.pump_client(slot, &mut conn) {
                ConnOutcome::Keep => {
                    progress |= (conn.out_sent, conn.decoder.mid_frame()) != before;
                    self.clients[slot] = Some(conn);
                }
                ConnOutcome::Close => {
                    progress = true;
                    drop(conn);
                    self.release_client(slot);
                }
                ConnOutcome::Shutdown => {
                    drop(conn);
                    self.release_client(slot);
                    return (true, true);
                }
            }
        }
        (progress, false)
    }

    fn release_client(&mut self, slot: usize) {
        self.client_free.push(slot);
        self.live -= 1;
        self.metrics.conns.set(self.live as i64);
    }

    fn pump_client(&mut self, slot: usize, conn: &mut ClientConn) -> ConnOutcome {
        for _ in 0..4 {
            match conn.state {
                CState::Waiting(_) => return ConnOutcome::Keep,
                CState::Reading => match conn.decoder.read_from(&mut conn.stream) {
                    Ok(FrameEvent::Frame) => {
                        self.dispatch_client(slot, conn);
                        conn.decoder.next_frame();
                    }
                    Ok(FrameEvent::Blocked) => return ConnOutcome::Keep,
                    Ok(FrameEvent::Closed) => return ConnOutcome::Close,
                    Err(FrameError::TooLarge { len }) => {
                        // best-effort typed refusal, then hang up —
                        // mirroring epicd's hostile-prefix handling
                        conn.stage_response(&Response::Err(format!(
                            "frame length {len} exceeds cap"
                        )));
                        let _ = conn.write_progress();
                        return ConnOutcome::Close;
                    }
                    Err(_) => return ConnOutcome::Close,
                },
                CState::Writing => match conn.write_progress() {
                    Ok(true) => {
                        if conn.shutdown_after_write {
                            self.stop.store(true, Ordering::SeqCst);
                            return ConnOutcome::Shutdown;
                        }
                        conn.out.clear();
                        conn.out_sent = 0;
                        conn.state = CState::Reading;
                    }
                    Ok(false) => return ConnOutcome::Keep,
                    Err(_) => return ConnOutcome::Close,
                },
            }
        }
        ConnOutcome::Keep
    }

    /// Route one decoded client frame. The raw frame bytes are reused
    /// verbatim as the upstream request — the gateway re-encodes
    /// nothing it merely forwards.
    fn dispatch_client(&mut self, slot: usize, conn: &mut ClientConn) {
        let raw = conn.decoder.frame().to_vec();
        let req = match proto::decode_request(&raw) {
            Ok(req) => req,
            Err(e) => {
                conn.stage_response(&Response::Err(format!("bad request: {e}")));
                return;
            }
        };
        match req {
            Request::Submit { ref spec, .. } => {
                let key = spec.job_key();
                let route = self.ring.route(key).expect("non-empty ring");
                let pid = self.alloc_pending(Pending::Submit {
                    client: slot,
                    client_gen: conn.gen,
                    raw,
                    key,
                    primary: route.primary,
                    replica: route.replica,
                    tried: vec![route.primary],
                    started: Instant::now(),
                    hedged: false,
                    outstanding: 0,
                    done: false,
                });
                conn.state = CState::Waiting(pid);
                self.issue(route.primary, pid, Role::Primary);
            }
            Request::Status(key) | Request::Result(key) | Request::Put { key, .. } => {
                let route = self.ring.route(key).expect("non-empty ring");
                let pid = self.alloc_pending(Pending::Simple {
                    client: slot,
                    client_gen: conn.gen,
                    raw,
                    fallback: route.replica,
                    tried: vec![route.primary],
                    outstanding: 0,
                    done: false,
                });
                conn.state = CState::Waiting(pid);
                self.issue(route.primary, pid, Role::Primary);
            }
            Request::Stats | Request::Metrics | Request::Shutdown => {
                let kind = match req {
                    Request::Stats => FanKind::Stats,
                    Request::Metrics => FanKind::Metrics,
                    _ => FanKind::Shutdown,
                };
                // Shutdown must also reach drained shards — they left
                // the routing ring, not the fleet. Views stay
                // ring-scoped so fleet stats describe what routing
                // can actually hit.
                let shards: Vec<u64> = if kind == FanKind::Shutdown {
                    self.known_shards()
                } else {
                    self.ring.shard_ids().to_vec()
                };
                let pid = self.alloc_pending(Pending::Fanout {
                    client: slot,
                    client_gen: conn.gen,
                    kind,
                    collected: Vec::with_capacity(shards.len()),
                    outstanding: 0,
                });
                conn.state = CState::Waiting(pid);
                for shard in shards {
                    self.issue_raw(shard, raw.clone(), pid, Role::Fanout);
                }
            }
            Request::Keys => {
                // shard-internal census verb; the fleet-level answer is
                // `admin fleet-status`
                conn.stage_response(&Response::Err(
                    "keys is a shard verb; ask the gateway for fleet-status".to_string(),
                ));
            }
            Request::Admin(admin) => self.dispatch_admin(slot, conn, admin),
        }
    }

    // ---- admin control plane --------------------------------------------

    /// Every shard the gateway can still talk to: ring members plus
    /// drained-but-addressable shards.
    fn known_shards(&self) -> Vec<u64> {
        let mut ids = self.ring.shard_ids().to_vec();
        ids.extend_from_slice(&self.drained);
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Route one typed admin request. Validation errors answer on the
    /// spot (the conn is checked out of the slab here, so staging
    /// directly is both correct and required); accepted membership
    /// changes start the census phase.
    fn dispatch_admin(&mut self, slot: usize, conn: &mut ClientConn, admin: AdminRequest) {
        match admin {
            AdminRequest::FleetStatus => {
                let shards = self.known_shards();
                let pid = self.alloc_pending(Pending::Fleet {
                    client: slot,
                    client_gen: conn.gen,
                    collected: Vec::with_capacity(shards.len()),
                    outstanding: 0,
                });
                conn.state = CState::Waiting(pid);
                let raw = proto::encode_request(&Request::Keys);
                for shard in shards {
                    self.issue_raw(shard, raw.clone(), pid, Role::Census);
                }
            }
            AdminRequest::Join { id, addr } => {
                if self.admin.is_some() {
                    conn.stage_response(&admin_err("a rebalance is already in progress"));
                    return;
                }
                if self.ring.shard_ids().contains(&id) {
                    conn.stage_response(&admin_err(&format!("shard {id} is already in the ring")));
                    return;
                }
                let prev_addr = self.addrs.insert(id, addr);
                let was_drained = self.drained.contains(&id);
                self.drained.retain(|&d| d != id);
                let mut new_ring = self.ring.clone();
                new_ring.join(id);
                self.start_rebalance(
                    slot,
                    conn,
                    new_ring,
                    None,
                    Some((id, prev_addr)),
                    was_drained.then_some(id),
                );
            }
            AdminRequest::Drain { id } => {
                if self.admin.is_some() {
                    conn.stage_response(&admin_err("a rebalance is already in progress"));
                    return;
                }
                if !self.ring.shard_ids().contains(&id) {
                    conn.stage_response(&admin_err(&format!("shard {id} is not in the ring")));
                    return;
                }
                let mut new_ring = self.ring.clone();
                new_ring.leave(id);
                if new_ring.is_empty() {
                    conn.stage_response(&admin_err("cannot drain the last shard"));
                    return;
                }
                self.start_rebalance(slot, conn, new_ring, Some(id), None, None);
            }
        }
    }

    /// Phase 1 of a membership change: census every *old-ring* shard's
    /// key holdings. The plan is computed when the last census leg
    /// lands; any census failure aborts the op with the old ring fully
    /// intact.
    fn start_rebalance(
        &mut self,
        slot: usize,
        conn: &mut ClientConn,
        new_ring: Ring,
        drain: Option<u64>,
        join_rollback: Option<(u64, Option<String>)>,
        drained_rollback: Option<u64>,
    ) {
        let census_targets: Vec<u64> = self.ring.shard_ids().to_vec();
        let pid = self.alloc_pending(Pending::Admin {
            client: slot,
            client_gen: conn.gen,
            outstanding: 0,
            done: false,
        });
        conn.state = CState::Waiting(pid);
        self.admin = Some(AdminOp {
            pid,
            started: Instant::now(),
            new_ring,
            drain,
            join_rollback,
            drained_rollback,
            census_outstanding: census_targets.len(),
            census: Vec::new(),
            moves: Vec::new(),
            next_move: 0,
            in_flight: 0,
            keys_moved: 0,
            bytes: 0,
            skipped: 0,
        });
        let raw = proto::encode_request(&Request::Keys);
        for shard in census_targets {
            self.issue_raw(shard, raw.clone(), pid, Role::Census);
        }
    }

    // ---- pending bookkeeping --------------------------------------------

    fn alloc_pending(&mut self, p: Pending) -> usize {
        match self.pending_free.pop() {
            Some(slot) => {
                self.pendings[slot] = Some(p);
                slot
            }
            None => {
                self.pendings.push(Some(p));
                self.pendings.len() - 1
            }
        }
    }

    /// Decrement `outstanding`; free the slot once nothing is in flight
    /// and nobody will consult its `done` marker again.
    fn settle_attempt(&mut self, pid: usize) {
        let free = match self.pendings.get_mut(pid).and_then(Option::as_mut) {
            Some(
                Pending::Submit { outstanding, .. }
                | Pending::Simple { outstanding, .. }
                | Pending::Fanout { outstanding, .. }
                | Pending::Replicate { outstanding }
                | Pending::Admin { outstanding, .. }
                | Pending::Fleet { outstanding, .. },
            ) => {
                *outstanding -= 1;
                *outstanding == 0
            }
            None => return,
        };
        if free {
            self.pendings[pid] = None;
            self.pending_free.push(pid);
        }
    }

    /// Stage `resp` on the pending's client if that connection is still
    /// the one that asked.
    fn answer_client(&mut self, client: usize, client_gen: u64, pid: usize, resp: &Response) {
        let Some(conn) = self.clients.get_mut(client).and_then(Option::as_mut) else {
            return;
        };
        if conn.gen != client_gen || !matches!(conn.state, CState::Waiting(p) if p == pid) {
            return;
        }
        conn.stage_response(resp);
        if matches!(resp, Response::ShutdownOk) {
            conn.shutdown_after_write = true;
        }
    }

    // ---- upstream face --------------------------------------------------

    /// Issue the pending's stored request bytes to `shard`.
    fn issue(&mut self, shard: u64, pid: usize, role: Role) {
        let raw = match self.pendings.get(pid).and_then(Option::as_ref) {
            Some(Pending::Submit { raw, .. } | Pending::Simple { raw, .. }) => raw.clone(),
            _ => return,
        };
        self.issue_raw(shard, raw, pid, role);
    }

    /// Open a fresh upstream connection to `shard` and stage `raw` as
    /// its one request. A connect failure is an attempt failure, routed
    /// through the same path as a mid-request drop.
    fn issue_raw(&mut self, shard: u64, raw: Vec<u8>, pid: usize, role: Role) {
        if let Some(
            Pending::Submit { outstanding, .. }
            | Pending::Simple { outstanding, .. }
            | Pending::Fanout { outstanding, .. }
            | Pending::Replicate { outstanding }
            | Pending::Admin { outstanding, .. }
            | Pending::Fleet { outstanding, .. },
        ) = self.pendings.get_mut(pid).and_then(Option::as_mut)
        {
            *outstanding += 1;
        }
        let stream = self
            .addrs
            .get(&shard)
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "unknown shard id"))
            .and_then(|addr| {
                let mut last = std::io::Error::new(
                    std::io::ErrorKind::AddrNotAvailable,
                    "shard address did not resolve",
                );
                for sa in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&sa, self.cfg.connect_timeout) {
                        Ok(s) => return Ok(s),
                        Err(e) => last = e,
                    }
                }
                Err(last)
            })
            .and_then(|s| {
                s.set_nodelay(true)?;
                s.set_nonblocking(true)?;
                Ok(s)
            });
        match stream {
            Ok(stream) => {
                let up = Upstream {
                    stream,
                    decoder: proto::FrameDecoder::new(),
                    header: (raw.len() as u32).to_be_bytes(),
                    body: raw,
                    sent: 0,
                    shard,
                    pending: pid,
                    role,
                };
                match self.up_free.pop() {
                    Some(slot) => self.ups[slot] = Some(up),
                    None => self.ups.push(Some(up)),
                }
            }
            Err(_) => {
                self.metrics.upstream_errors.inc();
                self.failed.push((pid, shard, role));
            }
        }
    }

    /// Process deferred connect failures. Runs only at the top of the
    /// event loop, where every client conn is back in its slab slot and
    /// every fan-out has issued all of its legs. A failover re-issue
    /// that itself fails to connect re-enters the queue and is handled
    /// by the same drain.
    fn drain_failed(&mut self) -> bool {
        let progress = !self.failed.is_empty();
        while let Some((pid, shard, role)) = self.failed.pop() {
            self.attempt_failed(pid, shard, role);
        }
        progress
    }

    fn pump_upstreams(&mut self) -> bool {
        let mut progress = false;
        for slot in 0..self.ups.len() {
            let Some(mut up) = self.ups[slot].take() else {
                continue;
            };
            let before = (up.sent, up.decoder.mid_frame());
            match self.pump_upstream(&mut up) {
                UpOutcome::Keep => {
                    progress |= (up.sent, up.decoder.mid_frame()) != before;
                    self.ups[slot] = Some(up);
                }
                UpOutcome::Done => {
                    progress = true;
                    drop(up);
                    self.up_free.push(slot);
                }
                UpOutcome::Failed => {
                    progress = true;
                    self.metrics.upstream_errors.inc();
                    let (pid, shard, role) = (up.pending, up.shard, up.role);
                    drop(up);
                    self.up_free.push(slot);
                    self.attempt_failed(pid, shard, role);
                }
            }
        }
        progress
    }

    fn pump_upstream(&mut self, up: &mut Upstream) -> UpOutcome {
        // flush the request first, then read exactly one response frame
        if up.sent < 4 + up.body.len() {
            match write_frame_progress(&mut up.stream, &up.header, &up.body, &mut up.sent) {
                Ok(true) => {}
                Ok(false) => return UpOutcome::Keep,
                Err(_) => return UpOutcome::Failed,
            }
        }
        match up.decoder.read_from(&mut up.stream) {
            Ok(FrameEvent::Frame) => {
                let resp = proto::decode_response(up.decoder.frame());
                match resp {
                    Ok(resp) => {
                        self.on_upstream_response(up.shard, up.role, up.pending, resp);
                        UpOutcome::Done
                    }
                    Err(_) => UpOutcome::Failed,
                }
            }
            Ok(FrameEvent::Blocked) => UpOutcome::Keep,
            Ok(FrameEvent::Closed) => UpOutcome::Failed,
            Err(_) => UpOutcome::Failed,
        }
    }

    /// One upstream answered. First answer wins; late hedge losers find
    /// `done` and are dropped (their work already warmed that shard's
    /// cache — content addressing makes the duplicate free).
    fn on_upstream_response(&mut self, shard: u64, role: Role, pid: usize, resp: Response) {
        let Some(pending) = self.pendings.get_mut(pid).and_then(Option::as_mut) else {
            self.settle_attempt(pid);
            return;
        };
        match pending {
            Pending::Submit {
                client,
                client_gen,
                key,
                primary,
                replica,
                hedged,
                done,
                ..
            } => {
                if *done {
                    self.settle_attempt(pid);
                    return;
                }
                *done = true;
                let (client, client_gen) = (*client, *client_gen);
                let (key, primary, replica, hedged) = (*key, *primary, *replica, *hedged);
                if role == Role::Hedge {
                    self.metrics.hedge_wins.inc();
                }
                // replicate a fresh result to the shard that would take
                // over on failover; a hedged request already warmed the
                // other shard the hard way
                let replicate = match &resp {
                    Response::Done {
                        cache_hit: false, ..
                    } => (role == Role::Primary && shard == primary && !hedged)
                        .then_some(replica)
                        .flatten(),
                    _ => None,
                };
                self.answer_client(client, client_gen, pid, &resp);
                self.settle_attempt(pid);
                if let (Some(to), Response::Done { measurement, .. }) = (replicate, resp) {
                    let put = proto::encode_request(&Request::Put { key, measurement });
                    let rp = self.alloc_pending(Pending::Replicate { outstanding: 0 });
                    self.metrics.replicated.inc();
                    self.issue_raw(to, put, rp, Role::Replicate);
                }
            }
            Pending::Simple {
                client,
                client_gen,
                done,
                ..
            } => {
                if *done {
                    self.settle_attempt(pid);
                    return;
                }
                *done = true;
                let (client, client_gen) = (*client, *client_gen);
                self.answer_client(client, client_gen, pid, &resp);
                self.settle_attempt(pid);
            }
            Pending::Fanout { collected, .. } => {
                collected.push((shard, resp));
                self.finalize_fanout_if_ready(pid);
                self.settle_attempt(pid);
            }
            Pending::Replicate { .. } => {
                self.settle_attempt(pid);
            }
            Pending::Admin { done, .. } => {
                // A leg of an already-finished/aborted op: nothing to
                // drive, the settle below just releases the slot.
                let done = *done;
                if !done {
                    match role {
                        Role::Census => self.on_census_response(pid, shard, resp),
                        Role::Fetch(i) => self.on_fetch_response(pid, i, resp),
                        Role::Push(i) => self.on_push_response(pid, i, resp),
                        _ => {}
                    }
                }
                self.settle_attempt(pid);
            }
            Pending::Fleet { collected, .. } => {
                let count = match resp {
                    Response::Keys(keys) => Some(keys.len() as u64),
                    _ => None,
                };
                collected.push((shard, count));
                self.finalize_fleet_if_ready(pid);
                self.settle_attempt(pid);
            }
        }
    }

    /// An attempt died (connect refused, drop mid-request, garbage
    /// frame). For routed requests this triggers failover to the next
    /// untried candidate; the client sees an error only when every
    /// candidate has failed.
    fn attempt_failed(&mut self, pid: usize, shard: u64, role: Role) {
        let Some(pending) = self.pendings.get_mut(pid).and_then(Option::as_mut) else {
            self.settle_attempt(pid);
            return;
        };
        match pending {
            Pending::Submit {
                client,
                client_gen,
                primary,
                replica,
                tried,
                outstanding,
                done,
                ..
            } => {
                if *done || *outstanding > 1 {
                    // a sibling attempt is still running; let it race on
                    self.settle_attempt(pid);
                    return;
                }
                let next = [Some(*primary), *replica]
                    .into_iter()
                    .flatten()
                    .find(|c| !tried.contains(c));
                match next {
                    Some(next) => {
                        tried.push(next);
                        self.metrics.failover.inc();
                        // issue before settling: the re-issue keeps
                        // `outstanding` above zero so the slot survives
                        self.issue(next, pid, Role::Primary);
                        self.settle_attempt(pid);
                    }
                    None => {
                        *done = true;
                        let (client, client_gen) = (*client, *client_gen);
                        self.answer_client(
                            client,
                            client_gen,
                            pid,
                            &Response::Err(format!("shard {shard} unreachable, no replica left")),
                        );
                        self.settle_attempt(pid);
                    }
                }
            }
            Pending::Simple {
                client,
                client_gen,
                fallback,
                tried,
                outstanding,
                done,
                ..
            } => {
                if *done || *outstanding > 1 {
                    self.settle_attempt(pid);
                    return;
                }
                let next = fallback.filter(|c| !tried.contains(c));
                match next {
                    Some(next) => {
                        tried.push(next);
                        self.metrics.failover.inc();
                        self.issue(next, pid, Role::Primary);
                        self.settle_attempt(pid);
                    }
                    None => {
                        *done = true;
                        let (client, client_gen) = (*client, *client_gen);
                        self.answer_client(
                            client,
                            client_gen,
                            pid,
                            &Response::Err(format!("shard {shard} unreachable, no replica left")),
                        );
                        self.settle_attempt(pid);
                    }
                }
            }
            Pending::Fanout { collected, .. } => {
                collected.push((shard, Response::Err(format!("shard {shard} unreachable"))));
                self.finalize_fanout_if_ready(pid);
                self.settle_attempt(pid);
            }
            Pending::Replicate { .. } => {
                self.settle_attempt(pid);
            }
            Pending::Admin { done, .. } => {
                let done = *done;
                if !done {
                    match role {
                        // A census hole means the plan would be blind to
                        // that shard's keys — abort with the old ring
                        // intact rather than cut over cold.
                        Role::Census => self.abort_rebalance(
                            pid,
                            format!("census failed: shard {shard} unreachable"),
                        ),
                        // A lost transfer leg skips that key: the
                        // cutover still happens, the key re-warms on
                        // first miss. Losing warmth beats losing the
                        // membership change.
                        Role::Fetch(_) | Role::Push(_) => self.transfer_leg_done(pid, false),
                        _ => {}
                    }
                }
                self.settle_attempt(pid);
            }
            Pending::Fleet { collected, .. } => {
                collected.push((shard, None));
                self.finalize_fleet_if_ready(pid);
                self.settle_attempt(pid);
            }
        }
    }

    /// When the last fan-out leg has reported (`outstanding == 1`: the
    /// caller settles after us), merge and answer.
    fn finalize_fanout_if_ready(&mut self, pid: usize) {
        let (client, client_gen, kind, collected) =
            match self.pendings.get_mut(pid).and_then(Option::as_mut) {
                Some(Pending::Fanout {
                    client,
                    client_gen,
                    kind,
                    collected,
                    outstanding,
                }) if *outstanding == 1 => (*client, *client_gen, *kind, std::mem::take(collected)),
                _ => return,
            };
        let resp = match kind {
            FanKind::Stats => {
                let per_shard: Vec<_> = collected
                    .iter()
                    .filter_map(|(_, r)| match r {
                        Response::Stats(s) => Some(*s),
                        _ => None,
                    })
                    .collect();
                Response::Stats(merge_stats(&per_shard))
            }
            FanKind::Metrics => {
                let per_shard: Vec<_> = collected
                    .into_iter()
                    .filter_map(|(id, r)| match r {
                        Response::Metrics(m) => Some((id, m)),
                        _ => None,
                    })
                    .collect();
                Response::Metrics(merge_metrics(&per_shard, &epic_trace::global().snapshot()))
            }
            FanKind::Shutdown => Response::ShutdownOk,
        };
        self.answer_client(client, client_gen, pid, &resp);
    }

    // ---- rebalance state machine ----------------------------------------

    /// A census leg answered. When the last one lands the op plans its
    /// moves against the still-routing old ring and enters the transfer
    /// phase; a refusal aborts the whole op.
    fn on_census_response(&mut self, pid: usize, shard: u64, resp: Response) {
        let Some(op) = self.admin.as_mut().filter(|op| op.pid == pid) else {
            return;
        };
        match resp {
            Response::Keys(keys) => {
                op.census.push((shard, keys));
                op.census_outstanding -= 1;
                if op.census_outstanding == 0 {
                    op.moves = plan_moves(&op.census, &self.ring, &op.new_ring);
                    op.census = Vec::new();
                    self.pump_transfers(pid);
                    self.maybe_finish_rebalance(pid);
                }
            }
            _ => self.abort_rebalance(pid, format!("census refused by shard {shard}")),
        }
    }

    /// Keep up to [`TRANSFER_WINDOW`] fetch→push chains in flight.
    fn pump_transfers(&mut self, pid: usize) {
        loop {
            let Some(op) = self.admin.as_mut().filter(|op| op.pid == pid) else {
                return;
            };
            if op.in_flight >= TRANSFER_WINDOW || op.next_move >= op.moves.len() {
                return;
            }
            let m = op.moves[op.next_move];
            let i = op.next_move;
            op.next_move += 1;
            op.in_flight += 1;
            let raw = proto::encode_request(&Request::Result(m.key));
            self.issue_raw(m.from, raw, pid, Role::Fetch(i));
        }
    }

    /// The fetch half of chain *i* answered: forward the measurement to
    /// its new primary, or skip the key if the source no longer has it.
    fn on_fetch_response(&mut self, pid: usize, i: usize, resp: Response) {
        let Some(op) = self.admin.as_mut().filter(|op| op.pid == pid) else {
            return;
        };
        match resp {
            Response::Result(Some(measurement)) => {
                let m = op.moves[i];
                let raw = proto::encode_request(&Request::Put {
                    key: m.key,
                    measurement,
                });
                op.bytes += raw.len() as u64;
                // the chain continues as its push leg; `in_flight`
                // hands over unchanged
                self.issue_raw(m.to, raw, pid, Role::Push(i));
            }
            _ => self.transfer_leg_done(pid, false),
        }
    }

    /// The push half of chain *i* answered.
    fn on_push_response(&mut self, pid: usize, _i: usize, resp: Response) {
        self.transfer_leg_done(pid, matches!(resp, Response::PutOk));
    }

    /// One fetch→push chain retired (landed, skipped, or lost a leg);
    /// refill the window and cut over once the last chain retires.
    fn transfer_leg_done(&mut self, pid: usize, moved: bool) {
        let Some(op) = self.admin.as_mut().filter(|op| op.pid == pid) else {
            return;
        };
        op.in_flight -= 1;
        if moved {
            op.keys_moved += 1;
        } else {
            op.skipped += 1;
        }
        self.pump_transfers(pid);
        self.maybe_finish_rebalance(pid);
    }

    fn maybe_finish_rebalance(&mut self, pid: usize) {
        let finished = self
            .admin
            .as_ref()
            .filter(|op| op.pid == pid)
            .is_some_and(|op| {
                op.census_outstanding == 0 && op.next_move >= op.moves.len() && op.in_flight == 0
            });
        if finished {
            self.finish_rebalance(pid);
        }
    }

    /// Phase 3, the cutover: every moved key has landed, so swapping
    /// the routing ring is loss-free. This is the *only* place the ring
    /// changes, and it is a plain field assignment — atomic with
    /// respect to every other event the single-threaded loop handles.
    fn finish_rebalance(&mut self, pid: usize) {
        if self.admin.as_ref().is_none_or(|op| op.pid != pid) {
            return;
        }
        let op = self.admin.take().expect("checked above");
        let ms = op.started.elapsed().as_millis() as u64;
        self.ring = op.new_ring;
        self.ring_version += 1;
        if let Some(id) = op.drain {
            if !self.drained.contains(&id) {
                self.drained.push(id);
            }
        }
        self.metrics.rebalance_keys_moved.add(op.keys_moved);
        self.metrics.rebalance_bytes.add(op.bytes);
        self.metrics.rebalance_ms.add(ms);
        let report = RebalanceReport {
            keys_moved: op.keys_moved,
            bytes: op.bytes,
            ms,
            skipped: op.skipped,
            ring: self.ring.shard_ids().to_vec(),
        };
        let (client, client_gen) = match self.pendings.get_mut(pid).and_then(Option::as_mut) {
            Some(Pending::Admin {
                client,
                client_gen,
                done,
                ..
            }) => {
                *done = true;
                (*client, *client_gen)
            }
            _ => return,
        };
        self.answer_client(
            client,
            client_gen,
            pid,
            &Response::Admin(AdminResponse::Rebalanced(report)),
        );
    }

    /// Abandon the op with the old ring fully intact, undoing the
    /// speculative address-book/drained-list edits a join made.
    fn abort_rebalance(&mut self, pid: usize, msg: String) {
        if self.admin.as_ref().is_none_or(|op| op.pid != pid) {
            return;
        }
        let op = self.admin.take().expect("checked above");
        if let Some((id, prev)) = op.join_rollback {
            match prev {
                Some(addr) => {
                    self.addrs.insert(id, addr);
                }
                None => {
                    self.addrs.remove(&id);
                }
            }
        }
        if let Some(id) = op.drained_rollback {
            if !self.drained.contains(&id) {
                self.drained.push(id);
            }
        }
        let (client, client_gen) = match self.pendings.get_mut(pid).and_then(Option::as_mut) {
            Some(Pending::Admin {
                client,
                client_gen,
                done,
                ..
            }) => {
                *done = true;
                (*client, *client_gen)
            }
            _ => return,
        };
        self.answer_client(client, client_gen, pid, &admin_err(&msg));
    }

    /// When the last fleet-status census leg has reported
    /// (`outstanding == 1`: the caller settles after us), assemble the
    /// typed fleet view.
    fn finalize_fleet_if_ready(&mut self, pid: usize) {
        let (client, client_gen, collected) =
            match self.pendings.get_mut(pid).and_then(Option::as_mut) {
                Some(Pending::Fleet {
                    client,
                    client_gen,
                    collected,
                    outstanding,
                }) if *outstanding == 1 => (*client, *client_gen, std::mem::take(collected)),
                _ => return,
            };
        let mut shards: Vec<ShardInfo> = collected
            .into_iter()
            .map(|(id, keys)| ShardInfo {
                id,
                addr: self.addrs.get(&id).cloned().unwrap_or_default(),
                in_ring: self.ring.shard_ids().contains(&id),
                reachable: keys.is_some(),
                keys: keys.unwrap_or(0),
            })
            .collect();
        shards.sort_unstable_by_key(|s| s.id);
        let status = FleetStatus {
            version: self.ring_version,
            shards,
        };
        self.answer_client(
            client,
            client_gen,
            pid,
            &Response::Admin(AdminResponse::Status(status)),
        );
    }

    /// Per-sweep hedge timer: any submit still unanswered past the
    /// budget gets one extra attempt on its replica shard.
    fn hedge_scan(&mut self) {
        let budget = self.cfg.hedge_after;
        let mut to_issue: Vec<(u64, usize)> = Vec::new();
        for pid in 0..self.pendings.len() {
            if let Some(Pending::Submit {
                replica: Some(replica),
                tried,
                started,
                hedged,
                done,
                ..
            }) = self.pendings[pid].as_mut()
            {
                if !*done && !*hedged && !tried.contains(replica) && started.elapsed() >= budget {
                    *hedged = true;
                    tried.push(*replica);
                    to_issue.push((*replica, pid));
                }
            }
        }
        for (replica, pid) in to_issue {
            self.metrics.hedged.inc();
            self.issue(replica, pid, Role::Hedge);
        }
    }
}

enum ConnOutcome {
    Keep,
    Close,
    Shutdown,
}

enum UpOutcome {
    Keep,
    Done,
    Failed,
}
