//! Rebalance planning: the exact key diff between two rings.
//!
//! A membership change (join or drain) moves every key whose *primary*
//! shard differs between the old and new ring — rendezvous hashing
//! guarantees that set is minimal, but somebody still has to walk it.
//! [`plan_moves`] computes that walk from a census of which shards
//! currently hold which keys: one [`KeyMove`] per relocated key, source
//! chosen from the shards that actually hold a copy. The gateway
//! executes the plan (fetch from source, idempotent `Put` to
//! destination) and only swaps its routing ring once every move has
//! landed — warm-before-cutover. See DESIGN.md §15.

use std::collections::BTreeMap;

use crate::ring::Ring;
use epic_serve::CacheKey;

/// One key relocation in a rebalance plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyMove {
    /// The cached result being moved.
    pub key: CacheKey,
    /// Shard to fetch the artifact from (holds a copy today).
    pub from: u64,
    /// New primary under the post-change ring; receives a `Put`.
    pub to: u64,
}

/// Compute the moves required to make `new` as warm as `old`.
///
/// `census` maps each reachable shard id to the keys it currently
/// holds (memory or disk). The plan contains exactly one move for each
/// distinct censused key whose primary changes from `old` to `new` —
/// no more (stable keys stay put; replica churn is ignored, the
/// background replication path re-warms replicas organically) and no
/// less (a key the destination already holds is still pushed: `Put` is
/// idempotent, and "exactly the keys whose primary changed" is the
/// contract the property tests pin).
///
/// The source is the old primary when it holds a copy (the common
/// case), otherwise the smallest-id holder — deterministic either way,
/// so plans are reproducible. Keys are emitted in `(hi, lo)` order.
pub fn plan_moves(census: &[(u64, Vec<CacheKey>)], old: &Ring, new: &Ring) -> Vec<KeyMove> {
    // key -> sorted holder ids. BTreeMap keeps the output ordering
    // deterministic without a second sort pass.
    let mut holders: BTreeMap<(u64, u64), Vec<u64>> = BTreeMap::new();
    for (shard, keys) in census {
        for k in keys {
            let ids = holders.entry((k.hi, k.lo)).or_default();
            if !ids.contains(shard) {
                ids.push(*shard);
            }
        }
    }
    let mut moves = Vec::new();
    for ((hi, lo), mut ids) in holders {
        let key = CacheKey { hi, lo };
        let (Some(old_primary), Some(new_primary)) = (old.primary(key), new.primary(key)) else {
            continue;
        };
        if old_primary == new_primary {
            continue;
        }
        ids.sort_unstable();
        let from = if ids.contains(&old_primary) {
            old_primary
        } else {
            match ids.first() {
                Some(&id) => id,
                // Censused map entries always have at least one holder,
                // but don't panic the gateway over an impossible state.
                None => continue,
            }
        };
        moves.push(KeyMove {
            key,
            from,
            to: new_primary,
        });
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        CacheKey {
            hi: n.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            lo: n,
        }
    }

    #[test]
    fn stable_keys_do_not_move() {
        let old = Ring::new(&[1, 2, 3]);
        let mut new = old.clone();
        new.join(4);
        let keys: Vec<CacheKey> = (0..256).map(key).collect();
        let census: Vec<(u64, Vec<CacheKey>)> = old
            .shard_ids()
            .iter()
            .map(|&s| {
                (
                    s,
                    keys.iter()
                        .copied()
                        .filter(|&k| old.primary(k) == Some(s))
                        .collect(),
                )
            })
            .collect();
        let moves = plan_moves(&census, &old, &new);
        for m in &moves {
            assert_eq!(old.primary(m.key).unwrap(), m.from);
            assert_eq!(new.primary(m.key), Some(m.to));
            assert_ne!(m.from, m.to);
        }
        // Exactly the keys whose primary changed, nothing else.
        let changed = keys
            .iter()
            .filter(|&&k| old.primary(k) != new.primary(k))
            .count();
        assert_eq!(moves.len(), changed);
    }

    #[test]
    fn source_falls_back_to_any_holder() {
        let old = Ring::new(&[1, 2]);
        let mut new = old.clone();
        new.leave(1);
        // Key primaried on 1 under `old`, but only shard 2 holds it
        // (e.g. it was replicated and shard 1 lost its disk).
        let k = (0..).map(key).find(|&k| old.primary(k) == Some(1)).unwrap();
        let census = vec![(2u64, vec![k])];
        let moves = plan_moves(&census, &old, &new);
        assert_eq!(
            moves,
            vec![KeyMove {
                key: k,
                from: 2,
                to: 2
            }]
        );
    }

    #[test]
    fn duplicate_holders_yield_one_move() {
        let old = Ring::new(&[1, 2, 3]);
        let mut new = old.clone();
        new.leave(3);
        let k = (0..).map(key).find(|&k| old.primary(k) == Some(3)).unwrap();
        let census = vec![(3u64, vec![k, k]), (1u64, vec![k])];
        let moves = plan_moves(&census, &old, &new);
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].from, 3);
        assert_eq!(Some(moves[0].to), new.primary(k));
    }
}
