//! Data speculation via advanced loads (`ld.a` / `chk.a`) — the feature
//! the paper names as IMPACT's biggest missing piece on IA-64 (Sec. 2:
//! "a limited initial application, currently in progress, is providing a
//! 5% speedup [on gap]; much more is attainable").
//!
//! A load blocked by a possibly-conflicting earlier store (one the pointer
//! analysis could not disambiguate) is marked *advanced*: the scheduler
//! may hoist it above the store, the ALAT watches the loaded address, and
//! a `chk.a` left at the home location re-executes the load if any
//! intervening store touched it. On-path conflicts are rare ("mostly
//! independent" operations, paper Sec. 2.2), so the common case runs at
//! the hoisted schedule height.

use epic_ir::func::tags_conflict;
use epic_ir::{Function, Op, Opcode, Operand, Vreg};
use std::collections::HashMap;

/// Knobs for advanced-load formation.
#[derive(Clone, Copy, Debug)]
pub struct DataSpecOptions {
    /// Only transform blocks at least this hot.
    pub min_weight: f64,
    /// Maximum advanced loads per block (ALAT pressure).
    pub max_per_block: usize,
    /// Require at least this many ops between the blocking store and the
    /// load (tiny distances gain nothing).
    pub min_distance: usize,
}

impl Default for DataSpecOptions {
    fn default() -> DataSpecOptions {
        DataSpecOptions {
            min_weight: 10.0,
            max_per_block: 8,
            min_distance: 1,
        }
    }
}

/// Statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct DataSpecStats {
    /// Loads converted to advanced loads.
    pub advanced: usize,
    /// `chk.a` ops inserted (== advanced).
    pub chks: usize,
}

/// Mark store-blocked loads as advanced and leave `chk.a` checks at their
/// home locations. Requires alias tags (run after `epic_opt::alias`);
/// `alias_sets` is [`epic_ir::Program::alias_sets`], passed separately so
/// the function can be transformed in place while it still sits in
/// `Program::funcs` (disjoint field borrows — no clone round-trip).
pub fn run(f: &mut Function, alias_sets: &[Vec<u32>], opts: &DataSpecOptions) -> DataSpecStats {
    let mut stats = DataSpecStats::default();
    // function-wide def counts: the transform requires single-def dsts
    // (the chk.a becomes a second, dominating def).
    let mut def_count: HashMap<Vreg, usize> = HashMap::new();
    for b in f.block_ids() {
        for op in &f.block(b).ops {
            for &d in op.defs() {
                *def_count.entry(d).or_insert(0) += 1;
            }
        }
    }
    let blocks: Vec<_> = f.block_ids().collect();
    for b in blocks {
        if f.block(b).weight < opts.min_weight {
            continue;
        }
        let mut converted = 0usize;
        let mut i = 0usize;
        while i < f.block(b).ops.len() {
            if converted >= opts.max_per_block {
                break;
            }
            let candidate = {
                let ops = &f.block(b).ops;
                let op = &ops[i];
                let is_plain_load = matches!(op.opcode, Opcode::Ld(_))
                    && !op.adv
                    && !op.spec
                    && op.dsts.len() == 1
                    && def_count.get(&op.dsts[0]).copied().unwrap_or(0) == 1
                    // chk.a re-reads the address operand: the dst must not
                    // be part of it (ld d = [d] would clobber the address)
                    && op.srcs[0].reg() != Some(op.dsts[0]);
                if !is_plain_load {
                    false
                } else {
                    // A *speculation-worthy* blocking store: one the
                    // pointer analysis could not disambiguate (unknown
                    // tag, or overlapping-but-different location sets).
                    // Identical singleton sets mean a near-certain real
                    // dependence — advancing past those just trades the
                    // store arc for an ALAT recovery storm.
                    ops[..i].iter().enumerate().any(|(j, s)| {
                        s.is_store()
                            && i - j > opts.min_distance
                            && tags_conflict(alias_sets, s.mem_tag, op.mem_tag)
                            && (s.mem_tag == 0 || op.mem_tag == 0 || s.mem_tag != op.mem_tag)
                    })
                }
            };
            if candidate {
                let (size, guard, weight, tag, dst, addr) = {
                    let op = &mut f.block_mut(b).ops[i];
                    op.adv = true;
                    let size = match op.opcode {
                        Opcode::Ld(s) => s,
                        _ => unreachable!("candidate is a load"),
                    };
                    (
                        size, op.guard, op.weight, op.mem_tag, op.dsts[0], op.srcs[0],
                    )
                };
                let mut chk = Op::new(
                    f.new_op_id(),
                    Opcode::ChkA(size),
                    vec![dst],
                    vec![Operand::Reg(dst), addr],
                );
                chk.guard = guard;
                chk.weight = weight;
                chk.mem_tag = tag;
                f.block_mut(b).ops.insert(i + 1, chk);
                stats.advanced += 1;
                stats.chks += 1;
                converted += 1;
                i += 2;
            } else {
                i += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::interp::{run as interp_run, InterpOptions};
    use epic_ir::verify::verify_program;
    use epic_ir::Program;

    /// gap-like: stores through an unanalyzable pointer block loads in a
    /// hot loop.
    const GAP_LIKE: &str = "
        global a: [int; 256];
        global b: [int; 256];
        fn main(which: int) {
            let p = &a[0];
            if which != 0 { p = &b[0]; }
            let i = 0; let s = 0;
            while i < 2000 {
                *(p + (i & 63)) = i;          // store via unknown pointer
                s = s + a[(i + 1) & 63];      // load the analysis can't clear
                s = s ^ b[(i + 2) & 63];
                i = i + 1;
            }
            out(s);
        }";

    fn prepared(src: &str, args: &[i64]) -> Program {
        let mut prog = epic_lang::compile(src).unwrap();
        epic_opt::profile::profile_program(&mut prog, args, 1_000_000_000).unwrap();
        epic_opt::classical_optimize_program(&mut prog);
        epic_opt::alias::run(&mut prog);
        prog
    }

    #[test]
    fn advances_store_blocked_loads_and_preserves_semantics() {
        let mut prog = prepared(GAP_LIKE, &[0]);
        let want = interp_run(&prog, &[0], InterpOptions::default())
            .unwrap()
            .output;
        let mut stats = DataSpecStats::default();
        for fi in 0..prog.funcs.len() {
            let s = run(
                &mut prog.funcs[fi],
                &prog.alias_sets,
                &DataSpecOptions::default(),
            );
            stats.advanced += s.advanced;
        }
        assert!(stats.advanced >= 1, "{stats:?}");
        verify_program(&prog).unwrap();
        let got = interp_run(&prog, &[0], InterpOptions::default())
            .unwrap()
            .output;
        assert_eq!(got, want);
        // and with the conflicting path taken (stores DO hit the loads)
        let got1 = interp_run(&prog, &[1], InterpOptions::default())
            .unwrap()
            .output;
        let base = epic_lang::compile(GAP_LIKE).unwrap();
        let want1 = interp_run(&base, &[1], InterpOptions::default())
            .unwrap()
            .output;
        assert_eq!(got1, want1, "conflicting executions must recover via chk.a");
    }

    #[test]
    fn skips_loads_without_blocking_stores() {
        let src = "
            global a: [int; 64];
            fn main() {
                let i = 0; let s = 0;
                while i < 500 { s = s + a[i & 63]; i = i + 1; }
                out(s);
            }";
        let mut prog = prepared(src, &[]);
        for fi in 0..prog.funcs.len() {
            let s = run(
                &mut prog.funcs[fi],
                &prog.alias_sets,
                &DataSpecOptions::default(),
            );
            assert_eq!(s.advanced, 0, "no conflicting store, nothing to advance");
        }
    }

    #[test]
    fn end_to_end_compile_and_simulate() {
        let mut prog = prepared(GAP_LIKE, &[0]);
        let want = interp_run(&prog, &[0], InterpOptions::default())
            .unwrap()
            .output;
        for fi in 0..prog.funcs.len() {
            crate::ilp_transform(&mut prog.funcs[fi], &crate::IlpOptions::ilp_cs());
            run(
                &mut prog.funcs[fi],
                &prog.alias_sets,
                &DataSpecOptions::default(),
            );
        }
        verify_program(&prog).unwrap();
        let (mp, _) = epic_sched::compile_program(&prog, &epic_sched::SchedOptions::ilp_cs());
        let r = epic_sim::run(&mp, &[0], &epic_sim::SimOptions::default()).unwrap();
        assert_eq!(r.output, want);
        assert!(r.counters.adv_loads > 0, "advanced loads must execute");
    }
}
