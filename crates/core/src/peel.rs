//! Loop peeling (paper Sec. 2.4, Fig. 3).
//!
//! For loops that typically execute about one iteration — like the serial
//! `while` loops in crafty's `Evaluate()` — one iteration is pulled out of
//! the loop. The peeled copy is acyclic, so it can subsequently be
//! if-converted and merged into the enclosing region, letting the
//! scheduler overlap independent loops. The original loop remains as a
//! "remainder" to clean up rare extra iterations; the paper attributes
//! lukewarm-code I-cache misses to exactly these residual loops, which is
//! why copies are tagged with [`BlockOrigin::Peel`] /
//! [`BlockOrigin::Remainder`].

use epic_ir::dom::DomTree;
use epic_ir::loops::{edge_weight, LoopForest};
use epic_ir::{BlockId, BlockOrigin, Function, Operand};
use std::collections::HashMap;

/// Heuristic knobs for peeling.
#[derive(Clone, Copy, Debug)]
pub struct PeelOptions {
    /// Peel only loops whose profiled trip count is at most this.
    pub max_trip: f64,
    /// Peel only loops entered at least this many times.
    pub min_entries: f64,
    /// Maximum ops in the loop body.
    pub max_body_ops: usize,
    /// How many iterations to peel.
    pub iterations: usize,
}

impl Default for PeelOptions {
    fn default() -> PeelOptions {
        PeelOptions {
            max_trip: 2.5,
            min_entries: 20.0,
            max_body_ops: 60,
            iterations: 1,
        }
    }
}

/// Statistics from peeling.
#[derive(Clone, Copy, Debug, Default)]
pub struct PeelStats {
    /// Loops peeled.
    pub loops_peeled: usize,
    /// Static ops added.
    pub dup_ops: usize,
}

/// Peel eligible loops once per [`PeelOptions::iterations`].
pub fn run(f: &mut Function, opts: &PeelOptions) -> PeelStats {
    let mut stats = PeelStats::default();
    for _ in 0..opts.iterations {
        // Recompute loops each round (ids shift as blocks are added).
        let mut peeled_any = false;
        loop {
            let dom = DomTree::compute(f);
            let forest = LoopForest::compute(f, &dom);
            let preds = f.preds();
            let candidate = forest.loops.iter().find(|l| {
                let body_ops: usize = l.body.iter().map(|b| f.block(*b).ops.len()).sum();
                if body_ops > opts.max_body_ops {
                    return false;
                }
                // only peel loops we haven't peeled already (their headers
                // would be marked Remainder)
                if f.block(l.header).origin == BlockOrigin::Remainder {
                    return false;
                }
                let outside_w: f64 = preds[l.header.index()]
                    .iter()
                    .filter(|p| !l.contains(**p))
                    .map(|p| edge_weight(f, *p, l.header))
                    .sum();
                if outside_w < opts.min_entries {
                    return false;
                }
                match l.trip_count(f, &preds) {
                    Some(t) => t <= opts.max_trip,
                    None => false,
                }
            });
            let Some(l) = candidate else { break };
            let l = l.clone();
            stats.dup_ops += peel_loop(f, &l.header, &l.body, &preds);
            stats.loops_peeled += 1;
            peeled_any = true;
        }
        if !peeled_any {
            break;
        }
    }
    stats
}

/// Peel one iteration: copy the body; outside entries go to the copy; back
/// edges in the copy go to the (original) remainder loop header.
fn peel_loop(
    f: &mut Function,
    header: &BlockId,
    body: &[BlockId],
    preds: &[Vec<BlockId>],
) -> usize {
    let outside_w: f64 = preds[header.index()]
        .iter()
        .filter(|p| !body.contains(*p))
        .map(|p| edge_weight(f, *p, *header))
        .sum();
    let header_w = f.block(*header).weight.max(1.0);
    let frac = (outside_w / header_w).clamp(0.0, 1.0);

    let mut map: HashMap<BlockId, BlockId> = HashMap::new();
    for &b in body {
        map.insert(b, f.add_block());
    }
    let mut n_ops = 0;
    for &b in body {
        let nb = map[&b];
        let src = f.block(b).clone();
        let mut ops = Vec::with_capacity(src.ops.len());
        for op in &src.ops {
            let mut c = f.clone_op(op);
            c.weight *= frac;
            for s in &mut c.srcs {
                if let Operand::Label(t) = s {
                    if *t == *header {
                        // back edge in the peel -> remainder loop header
                        // (stays Label(*header))
                    } else if let Some(n2) = map.get(t) {
                        *s = Operand::Label(*n2);
                    }
                }
            }
            n_ops += 1;
            ops.push(c);
        }
        let nblk = f.block_mut(nb);
        nblk.ops = ops;
        nblk.weight = src.weight * frac;
        nblk.origin = BlockOrigin::Peel;
        // remainder keeps the rest of the weight
        f.block_mut(b).weight = src.weight * (1.0 - frac);
        for op in &mut f.block_mut(b).ops {
            op.weight *= 1.0 - frac;
        }
        f.block_mut(b).origin = BlockOrigin::Remainder;
    }
    // Outside entries take the peel.
    let peel_header = map[header];
    let outside: Vec<BlockId> = preds[header.index()]
        .iter()
        .copied()
        .filter(|p| !body.contains(p))
        .collect();
    for p in outside {
        for op in &mut f.block_mut(p).ops {
            op.retarget(*header, peel_header);
        }
    }
    n_ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::interp::{run as interp_run, InterpOptions};
    use epic_ir::verify::verify_program;

    /// Two sequential short loops, crafty-Evaluate style: each typically
    /// runs exactly once.
    const CRAFTY_LIKE: &str = "
        global board: [int; 64];
        fn main() {
            let trial = 0; let score = 0;
            while trial < 300 {
                board[trial % 64] = trial * 7 % 13;
                // loop A: typically 1 iteration
                let sq = trial % 64;
                while board[sq] > 9 {
                    score = score + board[sq];
                    sq = (sq + 1) % 64;
                }
                // loop B: typically 1 iteration
                let k = trial % 3;
                while k > 1 {
                    score = score - k;
                    k = k - 2;
                }
                score = score + 1;
                trial = trial + 1;
            }
            out(score);
        }";

    fn peel_main(src: &str) -> (epic_ir::Program, PeelStats) {
        let mut prog = epic_lang::compile(src).unwrap();
        epic_opt::profile::profile_program(&mut prog, &[], 50_000_000).unwrap();
        let mut stats = PeelStats::default();
        for func in &mut prog.funcs {
            let s = run(func, &PeelOptions::default());
            stats.loops_peeled += s.loops_peeled;
            stats.dup_ops += s.dup_ops;
        }
        verify_program(&prog).unwrap();
        (prog, stats)
    }

    #[test]
    fn peels_low_trip_loops_and_preserves_semantics() {
        let want = interp_run(
            &epic_lang::compile(CRAFTY_LIKE).unwrap(),
            &[],
            InterpOptions::default(),
        )
        .unwrap()
        .output;
        let (prog, stats) = peel_main(CRAFTY_LIKE);
        assert!(stats.loops_peeled >= 1, "stats {stats:?}");
        let got = interp_run(&prog, &[], InterpOptions::default())
            .unwrap()
            .output;
        assert_eq!(got, want);
        let main = prog.func(prog.entry);
        assert!(main
            .block_ids()
            .any(|b| main.block(b).origin == BlockOrigin::Peel));
        assert!(main
            .block_ids()
            .any(|b| main.block(b).origin == BlockOrigin::Remainder));
    }

    #[test]
    fn skips_high_trip_loops() {
        let src = "
            fn main() {
                let i = 0; let s = 0;
                while i < 1000 { s = s + i; i = i + 1; }
                out(s);
            }";
        let (_prog, stats) = peel_main(src);
        assert_eq!(stats.loops_peeled, 0);
    }

    #[test]
    fn peel_then_ifconvert_collapses_peeled_iteration() {
        // After peeling, the peeled iteration is acyclic and should be
        // mergeable/convertible — the Figure 3 flow.
        let want = interp_run(
            &epic_lang::compile(CRAFTY_LIKE).unwrap(),
            &[],
            InterpOptions::default(),
        )
        .unwrap()
        .output;
        let (mut prog, stats) = peel_main(CRAFTY_LIKE);
        assert!(stats.loops_peeled >= 1);
        for func in &mut prog.funcs {
            crate::ifconv::run(func, &crate::ifconv::IfConvOptions::default());
            epic_opt::classical::cfg::run(func);
        }
        verify_program(&prog).unwrap();
        let got = interp_run(&prog, &[], InterpOptions::default())
            .unwrap()
            .output;
        assert_eq!(got, want);
    }
}
