//! Superblock formation: profile-guided trace selection plus tail
//! duplication (node splitting) to make traces single-entry (Hwu et al.,
//! the paper's [5]).
//!
//! A trace follows the dominant successor edge from a hot seed block. Any
//! trace block with a side entrance is split: the trace's copy of the tail
//! is made private (side entrances keep the original blocks). Together with
//! block merging this produces superblocks — long single-entry extended
//! blocks with side exits — at a static code-size cost the paper measures
//! at ~21%.

use epic_ir::loops::edge_weight;
use epic_ir::{BlockId, BlockOrigin, Function, Vreg};
use std::collections::HashMap;

/// Heuristic knobs for superblock formation.
#[derive(Clone, Copy, Debug)]
pub struct SuperblockOptions {
    /// Minimum execution weight for a trace seed.
    pub min_seed_weight: f64,
    /// Minimum probability for following a successor edge.
    pub min_edge_prob: f64,
    /// Maximum blocks in a trace.
    pub max_trace_blocks: usize,
    /// Maximum ops duplicated per tail split.
    pub max_dup_ops: usize,
    /// Stop when the function grows beyond this factor of its input size.
    pub growth_budget: f64,
}

impl Default for SuperblockOptions {
    fn default() -> SuperblockOptions {
        SuperblockOptions {
            min_seed_weight: 10.0,
            min_edge_prob: 0.65,
            max_trace_blocks: 12,
            max_dup_ops: 80,
            growth_budget: 1.8,
        }
    }
}

/// Statistics from superblock formation.
#[derive(Clone, Copy, Debug, Default)]
pub struct SuperblockStats {
    /// Traces formed.
    pub traces: usize,
    /// Tail-duplication block copies made.
    pub tail_dups: usize,
    /// Static ops added by duplication.
    pub dup_ops: usize,
}

/// Run superblock formation over `f`.
pub fn run(f: &mut Function, opts: &SuperblockOptions) -> SuperblockStats {
    let mut stats = SuperblockStats::default();
    let initial_ops = f.op_count().max(1);
    let budget = (initial_ops as f64 * opts.growth_budget) as usize;
    let mut in_trace = vec![false; f.blocks.len()];

    loop {
        // Dominators are used to keep traces from crossing loop back edges
        // (recomputed per trace: duplication changes the CFG).
        let dom = epic_ir::dom::DomTree::compute(f);
        // Seed: hottest unclaimed block.
        let seed = f
            .block_ids()
            .filter(|b| !in_trace.get(b.index()).copied().unwrap_or(false))
            .filter(|b| f.block(*b).weight >= opts.min_seed_weight)
            .max_by(|a, b| f.block(*a).weight.partial_cmp(&f.block(*b).weight).unwrap());
        let Some(seed) = seed else { break };
        // Grow the trace forward along dominant edges.
        let mut trace = vec![seed];
        mark(&mut in_trace, seed);
        // Backward growth first: extend the head along mutually-most-likely
        // predecessor edges, so traces run through join points (which is
        // what creates tail-duplication opportunities).
        {
            let preds = f.preds();
            while trace.len() < opts.max_trace_blocks {
                let head = trace[0];
                let head_w = f.block(head).weight.max(1.0);
                let best = preds[head.index()]
                    .iter()
                    .map(|p| (*p, edge_weight(f, *p, head)))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
                let Some((p, w)) = best else { break };
                if w / head_w < opts.min_edge_prob {
                    break;
                }
                // mutual: the edge must also be p's dominant successor
                let p_w = f.block(p).weight.max(1.0);
                if w / p_w < opts.min_edge_prob {
                    break;
                }
                if in_trace.get(p.index()).copied().unwrap_or(false) || trace.contains(&p) {
                    break;
                }
                // never grow backward across a loop back edge
                if dom.dominates(head, p) {
                    break;
                }
                trace.insert(0, p);
                mark(&mut in_trace, p);
            }
        }
        let mut cur = *trace.last().expect("trace nonempty");
        while trace.len() < opts.max_trace_blocks {
            let succs = f.block(cur).succs();
            let cur_w = f.block(cur).weight.max(1.0);
            let next = succs
                .iter()
                .map(|s| (*s, edge_weight(f, cur, *s)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            let Some((next, w)) = next else { break };
            if w / cur_w < opts.min_edge_prob {
                break;
            }
            if in_trace.get(next.index()).copied().unwrap_or(false) || trace.contains(&next) {
                break; // don't cross into another trace or loop back
            }
            // never grow forward across a loop back edge
            if dom.dominates(next, cur) {
                break;
            }
            trace.push(next);
            mark(&mut in_trace, next);
            cur = next;
        }
        if trace.len() < 2 {
            continue;
        }
        stats.traces += 1;
        // Make the trace single-entry: walk positions 1..; when a block has
        // side entrances, duplicate the tail from that position for the
        // side entrances.
        let preds = f.preds();
        for i in 1..trace.len() {
            let b = trace[i];
            let outside: Vec<BlockId> = preds[b.index()]
                .iter()
                .copied()
                .filter(|p| *p != trace[i - 1])
                .collect();
            if outside.is_empty() {
                continue;
            }
            let tail_ops: usize = trace[i..].iter().map(|t| f.block(*t).ops.len()).sum();
            if tail_ops > opts.max_dup_ops || f.op_count() + tail_ops > budget {
                continue;
            }
            // Duplicate the tail trace[i..] for the side entrances.
            let copies = duplicate_tail(f, &trace[i..], &outside);
            stats.tail_dups += copies.0;
            stats.dup_ops += copies.1;
            for c in copies.2 {
                if c.index() >= in_trace.len() {
                    in_trace.resize(c.index() + 1, false);
                }
                in_trace[c.index()] = true; // duplicates are claimed too
            }
        }
    }
    stats
}

fn mark(v: &mut Vec<bool>, b: BlockId) {
    if b.index() >= v.len() {
        v.resize(b.index() + 1, false);
    }
    v[b.index()] = true;
}

/// Duplicate `tail` (a path of blocks); retarget every branch in `outside`
/// that targets `tail[0]` to the copy. Returns (blocks copied, ops copied,
/// new block ids).
fn duplicate_tail(
    f: &mut Function,
    tail: &[BlockId],
    outside: &[BlockId],
) -> (usize, usize, Vec<BlockId>) {
    // weight fraction entering via side entrances
    let side_w: f64 = outside.iter().map(|p| edge_weight(f, *p, tail[0])).sum();
    let head_w = f.block(tail[0]).weight.max(1.0);
    let frac = (side_w / head_w).clamp(0.0, 1.0);

    let mut map: HashMap<BlockId, BlockId> = HashMap::new();
    for &t in tail {
        let nb = f.add_block();
        map.insert(t, nb);
    }
    let mut n_ops = 0;
    for &t in tail {
        let nb = map[&t];
        let src = f.block(t).clone();
        let mut ops = Vec::with_capacity(src.ops.len());
        for op in &src.ops {
            let mut c = f.clone_op(op);
            c.weight *= frac;
            // Intra-tail successor edges follow the copies; the copy of
            // tail[k] falls to the copy of tail[k+1] only via its branch.
            for s in &mut c.srcs {
                if let epic_ir::Operand::Label(t2) = s {
                    if let Some(n2) = map.get(t2) {
                        // only redirect the *path* edge (to the next tail
                        // block); edges back to the tail head from inside
                        // (loops) also go to the copy, which is correct for
                        // a duplicated path.
                        *s = epic_ir::Operand::Label(*n2);
                    }
                }
            }
            n_ops += 1;
            ops.push(c);
        }
        let nblk = f.block_mut(nb);
        nblk.ops = ops;
        nblk.weight = src.weight * frac;
        nblk.origin = BlockOrigin::TailDup;
        // scale the original's weight down
        f.block_mut(t).weight = src.weight * (1.0 - frac);
        for op in &mut f.block_mut(t).ops {
            op.weight *= 1.0 - frac;
        }
    }
    // Retarget side entrances to the copy of the tail head.
    let head_copy = map[&tail[0]];
    for &p in outside {
        for op in &mut f.block_mut(p).ops {
            op.retarget(tail[0], head_copy);
        }
    }
    let _ = Vreg(0);
    (tail.len(), n_ops, map.values().copied().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::interp::{run as interp_run, InterpOptions};
    use epic_ir::verify::verify_program;

    fn form(src: &str, args: &[i64]) -> (epic_ir::Program, SuperblockStats) {
        let mut prog = epic_lang::compile(src).unwrap();
        epic_opt::profile::profile_program(&mut prog, args, 50_000_000).unwrap();
        let mut stats = SuperblockStats::default();
        for func in &mut prog.funcs {
            let s = run(func, &SuperblockOptions::default());
            stats.traces += s.traces;
            stats.tail_dups += s.tail_dups;
            stats.dup_ops += s.dup_ops;
            epic_opt::classical::cfg::run(func);
        }
        verify_program(&prog).unwrap();
        (prog, stats)
    }

    #[test]
    fn duplicates_join_tails_and_preserves_semantics() {
        // The join block after a biased if has two preds -> tail dup.
        let src = "
            global acc: int;
            fn main() {
                let i = 0;
                while i < 200 {
                    let t = i;
                    if i % 17 == 0 { t = t * 3; } else { t = t + 1; }
                    acc = acc + t * 2 + 5;   // join code worth duplicating
                    acc = acc ^ (t << 3);
                    i = i + 1;
                }
                out(acc);
            }";
        let want = interp_run(
            &epic_lang::compile(src).unwrap(),
            &[],
            InterpOptions::default(),
        )
        .unwrap()
        .output;
        let (prog, stats) = form(src, &[]);
        assert!(stats.traces >= 1, "stats {stats:?}");
        assert!(stats.tail_dups >= 1, "stats {stats:?}");
        let got = interp_run(&prog, &[], InterpOptions::default())
            .unwrap()
            .output;
        assert_eq!(got, want);
        // duplicated blocks are marked for I-cache attribution
        let main = prog.func(prog.entry);
        assert!(main
            .block_ids()
            .any(|b| main.block(b).origin == BlockOrigin::TailDup));
    }

    #[test]
    fn respects_growth_budget() {
        let src = "
            global acc: int;
            fn main() {
                let i = 0;
                while i < 100 {
                    let t = i;
                    if i % 2 == 0 { t = t * 3; }
                    acc = acc + t;
                    i = i + 1;
                }
                out(acc);
            }";
        let mut prog = epic_lang::compile(src).unwrap();
        epic_opt::profile::profile_program(&mut prog, &[], 50_000_000).unwrap();
        let before = prog.op_count();
        for func in &mut prog.funcs {
            run(
                func,
                &SuperblockOptions {
                    growth_budget: 1.05,
                    ..Default::default()
                },
            );
        }
        assert!(prog.op_count() as f64 <= before as f64 * 1.06 + 8.0);
    }

    #[test]
    fn weights_are_split_not_lost() {
        let src = "
            global acc: int;
            fn main() {
                let i = 0;
                while i < 100 {
                    let t = i;
                    if i % 4 == 0 { t = t * 3; } else { t = t + 1; }
                    acc = acc + t * 7;
                    i = i + 1;
                }
                out(acc);
            }";
        let mut prog = epic_lang::compile(src).unwrap();
        epic_opt::profile::profile_program(&mut prog, &[], 50_000_000).unwrap();
        let main_id = prog.entry;
        let total_before: f64 = prog
            .func(main_id)
            .block_ids()
            .map(|b| prog.func(main_id).block(b).weight)
            .sum();
        for func in &mut prog.funcs {
            run(func, &SuperblockOptions::default());
        }
        let total_after: f64 = prog
            .func(main_id)
            .block_ids()
            .map(|b| prog.func(main_id).block(b).weight)
            .sum();
        assert!(
            (total_after - total_before).abs() / total_before < 0.05,
            "weight before {total_before} after {total_after}"
        );
    }
}
