//! # epic-core
//!
//! The paper's primary contribution: IMPACT's **structural** EPIC
//! transformations, which radically rework program control structure to
//! expose instruction-level parallelism (Sec. 2.3/3 of *"Field-testing
//! IMPACT EPIC research results in Itanium 2"*, ISCA 2004):
//!
//! * [`peel`] — loop peeling for low-trip-count loops (Fig. 3);
//! * [`ifconv`] — if-conversion / hyperblock formation (predication);
//! * [`superblock`] — trace selection + tail duplication;
//! * [`unroll`] — superblock loop unrolling;
//! * [`speculate`] — control speculation via predicate promotion, under
//!   the general or sentinel recovery model (Fig. 9);
//! * [`height`] — data-height reduction (accumulator reassociation);
//! * [`dataspec`] — ALAT data speculation (`ld.a`/`chk.a`), the paper's
//!   named future-work item, implemented as an extension.
//!
//! [`ilp_transform`] sequences these into the ILP-NS / ILP-CS pipelines;
//! every step is differential-tested against the reference interpreter.

pub mod dataspec;
pub mod height;
pub mod ifconv;
pub mod peel;
pub mod speculate;
pub mod superblock;
pub mod unroll;

use epic_ir::Function;

/// Configuration for the structural ILP pipeline. The `enable_*` flags
/// support the ablation experiments.
#[derive(Clone, Copy, Debug)]
pub struct IlpOptions {
    /// Loop peeling on/off.
    pub enable_peel: bool,
    /// Peeling knobs.
    pub peel: peel::PeelOptions,
    /// Hyperblock (if-conversion) on/off.
    pub enable_hyperblock: bool,
    /// If-conversion knobs.
    pub ifconv: ifconv::IfConvOptions,
    /// Superblock formation on/off.
    pub enable_superblock: bool,
    /// Superblock knobs.
    pub superblock: superblock::SuperblockOptions,
    /// Unrolling on/off.
    pub enable_unroll: bool,
    /// Unrolling knobs.
    pub unroll: unroll::UnrollOptions,
    /// Data-height reduction on/off.
    pub enable_height: bool,
    /// Height-reduction knobs.
    pub height: height::HeightOptions,
    /// Control speculation (None = ILP-NS).
    pub speculate: Option<speculate::SpeculateOptions>,
}

impl Default for IlpOptions {
    fn default() -> IlpOptions {
        IlpOptions {
            enable_peel: true,
            peel: peel::PeelOptions::default(),
            enable_hyperblock: true,
            ifconv: ifconv::IfConvOptions::default(),
            enable_superblock: true,
            superblock: superblock::SuperblockOptions::default(),
            enable_unroll: true,
            unroll: unroll::UnrollOptions::default(),
            enable_height: true,
            height: height::HeightOptions::default(),
            speculate: None,
        }
    }
}

impl IlpOptions {
    /// The ILP-NS configuration (no control speculation).
    pub fn ilp_ns() -> IlpOptions {
        IlpOptions::default()
    }

    /// The ILP-CS configuration (general speculation model).
    pub fn ilp_cs() -> IlpOptions {
        IlpOptions {
            speculate: Some(speculate::SpeculateOptions::default()),
            ..IlpOptions::default()
        }
    }
}

/// Aggregate statistics from one function's structural transformation.
#[derive(Clone, Copy, Debug, Default)]
pub struct IlpStats {
    /// Loops peeled.
    pub loops_peeled: usize,
    /// If-conversion: triangles + diamonds collapsed.
    pub regions_converted: usize,
    /// Static branches removed by if-conversion.
    pub branches_removed: usize,
    /// Superblock traces formed.
    pub traces: usize,
    /// Tail-duplication block copies.
    pub tail_dups: usize,
    /// Loops unrolled.
    pub loops_unrolled: usize,
    /// Static ops added by duplication (tail dup + peel + unroll).
    pub dup_ops: usize,
    /// Loads promoted to speculative.
    pub loads_promoted: usize,
    /// `chk` ops inserted (sentinel model).
    pub chks_inserted: usize,
    /// Accumulator chains reassociated by height reduction.
    pub chains_reassociated: usize,
    /// Loads converted to advanced (data-speculative) loads.
    pub loads_advanced: usize,
    /// Static op count before.
    pub ops_before: usize,
    /// Static op count after.
    pub ops_after: usize,
}

impl IlpStats {
    /// Accumulate another function's stats.
    pub fn merge(&mut self, o: &IlpStats) {
        self.loops_peeled += o.loops_peeled;
        self.regions_converted += o.regions_converted;
        self.branches_removed += o.branches_removed;
        self.traces += o.traces;
        self.tail_dups += o.tail_dups;
        self.loops_unrolled += o.loops_unrolled;
        self.dup_ops += o.dup_ops;
        self.loads_promoted += o.loads_promoted;
        self.chks_inserted += o.chks_inserted;
        self.chains_reassociated += o.chains_reassociated;
        self.loads_advanced += o.loads_advanced;
        self.ops_before += o.ops_before;
        self.ops_after += o.ops_after;
    }
}

/// Run the structural ILP pipeline on one function.
///
/// Order (mirroring IMPACT): peel → if-convert → simplify/merge →
/// superblock → simplify/merge → unroll → classical cleanup → promotion.
pub fn ilp_transform(f: &mut Function, opts: &IlpOptions) -> IlpStats {
    let mut stats = IlpStats {
        ops_before: f.op_count(),
        ..Default::default()
    };
    if opts.enable_peel {
        let s = peel::run(f, &opts.peel);
        stats.loops_peeled = s.loops_peeled;
        stats.dup_ops += s.dup_ops;
    }
    if opts.enable_hyperblock {
        let s = ifconv::run(f, &opts.ifconv);
        stats.regions_converted = s.triangles + s.diamonds;
        stats.branches_removed = s.branches_removed;
        epic_opt::classical::cfg::run(f);
        // peeled/merged code often exposes more triangles
        let s2 = ifconv::run(f, &opts.ifconv);
        stats.regions_converted += s2.triangles + s2.diamonds;
        stats.branches_removed += s2.branches_removed;
        epic_opt::classical::cfg::run(f);
    }
    if opts.enable_superblock {
        let s = superblock::run(f, &opts.superblock);
        stats.traces = s.traces;
        stats.tail_dups = s.tail_dups;
        stats.dup_ops += s.dup_ops;
        epic_opt::classical::cfg::run(f);
    }
    if opts.enable_unroll {
        let s = unroll::run(f, &opts.unroll);
        stats.loops_unrolled = s.loops_unrolled;
        stats.dup_ops += s.dup_ops;
    }
    if opts.enable_height {
        let s = height::run(f, &opts.height);
        stats.chains_reassociated = s.chains;
    }
    // clean up the enlarged regions
    epic_opt::classical::lvn::run(f);
    epic_opt::classical::gprop::run(f);
    epic_opt::classical::dce::run(f);
    epic_opt::classical::cfg::run(f);
    if let Some(sopts) = &opts.speculate {
        let s = speculate::run(f, sopts);
        stats.loads_promoted = s.loads_promoted;
        stats.chks_inserted = s.chks_inserted;
        epic_opt::classical::dce::run(f);
    }
    stats.ops_after = f.op_count();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::interp::{run as interp_run, InterpOptions};
    use epic_ir::verify::verify_program;

    const MIXED: &str = "
        global hist: [int; 64];
        fn classify(v: int) -> int {
            if v < 10 { return 0; }
            if v < 100 { return 1; }
            return 2;
        }
        fn main() {
            let i = 0; let s = 0;
            while i < 400 {
                let v = (i * 1103515245 + 12345) % 200;
                if v < 0 { v = 0 - v; }
                let c = classify(v);
                hist[(v % 64)] = hist[(v % 64)] + 1;
                if c == 0 { s = s + 1; }
                else { if c == 1 { s = s + 10; } else { s = s + 100; } }
                // short serial loop, typically one or two iterations
                let k = v % 2 + 1;
                while k > 0 { s = s + k; k = k - 1; }
                i = i + 1;
            }
            out(s);
        }";

    fn full_pipeline(src: &str, opts: &IlpOptions) -> (epic_ir::Program, IlpStats) {
        let mut prog = epic_lang::compile(src).unwrap();
        epic_opt::profile::profile_program(&mut prog, &[], 100_000_000).unwrap();
        epic_opt::inline::run(&mut prog, Default::default());
        epic_opt::classical_optimize_program(&mut prog);
        let mut stats = IlpStats::default();
        for f in &mut prog.funcs {
            stats.merge(&ilp_transform(f, opts));
        }
        verify_program(&prog).unwrap();
        (prog, stats)
    }

    #[test]
    fn ilp_ns_pipeline_preserves_semantics() {
        let want = interp_run(
            &epic_lang::compile(MIXED).unwrap(),
            &[],
            InterpOptions::default(),
        )
        .unwrap()
        .output;
        let (prog, stats) = full_pipeline(MIXED, &IlpOptions::ilp_ns());
        assert!(stats.regions_converted > 0, "{stats:?}");
        let got = interp_run(&prog, &[], InterpOptions::default())
            .unwrap()
            .output;
        assert_eq!(got, want);
    }

    #[test]
    fn ilp_cs_pipeline_preserves_semantics() {
        let want = interp_run(
            &epic_lang::compile(MIXED).unwrap(),
            &[],
            InterpOptions::default(),
        )
        .unwrap()
        .output;
        let (prog, _stats) = full_pipeline(MIXED, &IlpOptions::ilp_cs());
        let got = interp_run(&prog, &[], InterpOptions::default())
            .unwrap()
            .output;
        assert_eq!(got, want);
    }

    #[test]
    fn transformation_reduces_dynamic_branches() {
        let base = epic_lang::compile(MIXED).unwrap();
        let r0 = interp_run(&base, &[], InterpOptions::default()).unwrap();
        let (prog, _stats) = full_pipeline(MIXED, &IlpOptions::ilp_ns());
        let r1 = interp_run(&prog, &[], InterpOptions::default()).unwrap();
        assert!(
            (r1.branches_executed as f64) < r0.branches_executed as f64 * 0.95,
            "branches {} -> {}",
            r0.branches_executed,
            r1.branches_executed
        );
    }

    #[test]
    fn ablation_flags_disable_stages() {
        let opts = IlpOptions {
            enable_peel: false,
            enable_superblock: false,
            enable_unroll: false,
            ..IlpOptions::ilp_ns()
        };
        let (_prog, stats) = full_pipeline(MIXED, &opts);
        assert_eq!(stats.loops_peeled, 0);
        assert_eq!(stats.traces, 0);
        assert_eq!(stats.loops_unrolled, 0);
    }
}
