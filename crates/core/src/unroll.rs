//! Superblock loop unrolling for hot single-block loops.
//!
//! After if-conversion and block merging, hot inner loops frequently
//! collapse to a single extended block whose terminator (or a guarded
//! side-exit) is the back edge. Unrolling concatenates copies of the body
//! inside the block; iteration boundaries become guarded side-exit
//! branches, so a mid-body exit skips the remaining copies for free.

use epic_ir::{BlockId, BlockOrigin, CmpKind, Function, Op, Opcode, Operand};

/// Heuristic knobs for unrolling.
#[derive(Clone, Copy, Debug)]
pub struct UnrollOptions {
    /// Unroll factor (total body copies after unrolling).
    pub factor: usize,
    /// Maximum ops in the body to unroll.
    pub max_body_ops: usize,
    /// Minimum profiled trip count.
    pub min_trip: f64,
    /// Minimum header weight.
    pub min_weight: f64,
}

impl Default for UnrollOptions {
    fn default() -> UnrollOptions {
        UnrollOptions {
            factor: 2,
            max_body_ops: 24,
            min_trip: 8.0,
            min_weight: 100.0,
        }
    }
}

/// Statistics from unrolling.
#[derive(Clone, Copy, Debug, Default)]
pub struct UnrollStats {
    /// Loops unrolled.
    pub loops_unrolled: usize,
    /// Static ops added.
    pub dup_ops: usize,
}

/// Unroll eligible single-block self-loops.
pub fn run(f: &mut Function, opts: &UnrollOptions) -> UnrollStats {
    let mut stats = UnrollStats::default();
    let blocks: Vec<BlockId> = f.block_ids().collect();
    for b in blocks {
        if try_unroll(f, b, opts) {
            stats.loops_unrolled += 1;
            stats.dup_ops += f.block(b).ops.len() / opts.factor * (opts.factor - 1);
        }
    }
    stats
}

fn try_unroll(f: &mut Function, b: BlockId, opts: &UnrollOptions) -> bool {
    let blk = f.block(b);
    if blk.weight < opts.min_weight || blk.ops.len() > opts.max_body_ops {
        return false;
    }
    // Shape: [...body...; (p) Br b; Br exit]  — the "continue" form.
    let n = blk.ops.len();
    if n < 2 {
        return false;
    }
    let term = &blk.ops[n - 1];
    let back = &blk.ops[n - 2];
    let continue_form = term.opcode == Opcode::Br
        && term.guard.is_none()
        && back.opcode == Opcode::Br
        && back.guard.is_some()
        && back.branch_target() == Some(b);
    // Shape: [...body...; (q) Br exit; Br b] — the "exit" form.
    let exit_form = term.opcode == Opcode::Br
        && term.guard.is_none()
        && term.branch_target() == Some(b)
        && back.opcode == Opcode::Br
        && back.guard.is_some()
        && back.branch_target() != Some(b);
    if !continue_form && !exit_form {
        return false;
    }
    // no other self-branches inside the body
    let self_branches = blk
        .ops
        .iter()
        .filter(|o| o.branch_target() == Some(b))
        .count();
    if self_branches != 1 {
        return false;
    }
    // trip count: back-edge weight / entries
    let back_w = if continue_form {
        blk.ops[n - 2].weight
    } else {
        blk.ops[n - 1].weight
    };
    let entries = (blk.weight - back_w).max(1.0);
    if blk.weight / entries < opts.min_trip {
        return false;
    }

    let body: Vec<Op> = blk.ops[..n - 2].to_vec();
    let cont_pred = blk.ops[n - 2].guard;
    let exit_target = if continue_form {
        blk.ops[n - 1].branch_target().unwrap()
    } else {
        blk.ops[n - 2].branch_target().unwrap()
    };
    let trip = blk.weight / entries;
    let factor = opts.factor.max(2);

    let mut new_ops: Vec<Op> = Vec::new();
    for it in 0..factor {
        // body copy
        for op in &body {
            let mut c = f.clone_op(op);
            c.weight = op.weight; // same per-execution weight (approximate)
            new_ops.push(c);
        }
        let last = it + 1 == factor;
        match (continue_form, last) {
            (true, false) => {
                // between iterations: exit if NOT continuing.
                // q = (p == 0); (q) Br exit
                let p = cont_pred.expect("continue form has a guard");
                let q = f.new_vreg();
                let cmp = Op::new(
                    f.new_op_id(),
                    Opcode::Cmp(CmpKind::Eq),
                    vec![q],
                    vec![Operand::Reg(p), Operand::Imm(0)],
                );
                let mut br = epic_ir::func::mk_br(f.new_op_id(), exit_target);
                br.guard = Some(q);
                br.weight = f.block(b).weight / trip / factor as f64;
                new_ops.push(cmp);
                new_ops.push(br);
            }
            (true, true) => {
                let p = cont_pred.expect("continue form has a guard");
                let mut backbr = epic_ir::func::mk_br(f.new_op_id(), b);
                backbr.guard = Some(p);
                backbr.weight = back_w / factor as f64;
                new_ops.push(backbr);
                new_ops.push(epic_ir::func::mk_br(f.new_op_id(), exit_target));
            }
            (false, false) => {
                // exit form already has `(q) Br exit` semantics inline
                let q = cont_pred.expect("exit form has a guard");
                let mut br = epic_ir::func::mk_br(f.new_op_id(), exit_target);
                br.guard = Some(q);
                br.weight = f.block(b).weight / trip / factor as f64;
                new_ops.push(br);
            }
            (false, true) => {
                let q = cont_pred.expect("exit form has a guard");
                let mut br = epic_ir::func::mk_br(f.new_op_id(), exit_target);
                br.guard = Some(q);
                br.weight = f.block(b).weight / trip / factor as f64;
                new_ops.push(br);
                new_ops.push(epic_ir::func::mk_br(f.new_op_id(), b));
            }
        }
    }
    let blk = f.block_mut(b);
    blk.ops = new_ops;
    blk.origin = BlockOrigin::Unroll;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::interp::{run as interp_run, InterpOptions};
    use epic_ir::verify::verify_program;

    fn prep(src: &str) -> epic_ir::Program {
        let mut prog = epic_lang::compile(src).unwrap();
        epic_opt::profile::profile_program(&mut prog, &[], 50_000_000).unwrap();
        for func in &mut prog.funcs {
            epic_opt::classical::cfg::run(func);
        }
        prog
    }

    #[test]
    fn unrolls_hot_counted_loop_and_preserves_semantics() {
        let src = "
            global a: [int; 256];
            fn main() {
                let i = 0;
                while i < 256 { a[i] = i * 3; i = i + 1; }
                let s = 0;
                i = 0;
                while i < 256 { s = s + a[i]; i = i + 1; }
                out(s);
            }";
        let mut prog = prep(src);
        let want = interp_run(&prog, &[], InterpOptions::default())
            .unwrap()
            .output;
        let mut total = UnrollStats::default();
        for func in &mut prog.funcs {
            let s = run(func, &UnrollOptions::default());
            total.loops_unrolled += s.loops_unrolled;
        }
        assert!(total.loops_unrolled >= 1, "stats {total:?}");
        verify_program(&prog).unwrap();
        let got = interp_run(&prog, &[], InterpOptions::default())
            .unwrap()
            .output;
        assert_eq!(got, want);
    }

    #[test]
    fn unrolled_loop_with_odd_trip_count() {
        let src = "
            fn main() {
                let i = 0; let s = 0;
                while i < 257 { s = s + i * i; i = i + 1; }
                out(s);
            }";
        let mut prog = prep(src);
        let want = interp_run(&prog, &[], InterpOptions::default())
            .unwrap()
            .output;
        for func in &mut prog.funcs {
            run(
                func,
                &UnrollOptions {
                    factor: 4,
                    ..Default::default()
                },
            );
        }
        verify_program(&prog).unwrap();
        let got = interp_run(&prog, &[], InterpOptions::default())
            .unwrap()
            .output;
        assert_eq!(got, want);
    }

    #[test]
    fn skips_cold_and_low_trip_loops() {
        let src = "
            fn main() {
                let i = 0; let s = 0;
                while i < 3 { s = s + i; i = i + 1; }
                out(s);
            }";
        let mut prog = prep(src);
        for func in &mut prog.funcs {
            let s = run(func, &UnrollOptions::default());
            assert_eq!(s.loops_unrolled, 0);
        }
    }
}
