//! Control speculation (the ILP-CS configuration):
//!
//! * **Predicate promotion** — weaken the qualifying predicate on a load
//!   (and its pure consumers) so it executes unconditionally, breaking the
//!   dependence on the predicate definition. The load is marked
//!   speculative: off-path executions that fault defer to NaT. This is the
//!   paper's dominant speculation form and the source of both the Fig. 8
//!   data-cache effects and the Sec. 4.3 *wild load* pathology.
//! * **Scheduler license** — speculation across side-exit branches inside
//!   superblocks is performed by the scheduler when the configuration
//!   allows it (see `epic-sched`); this pass only handles promotion.
//!
//! Under the *sentinel* model a `chk` op is left at the home location to
//! re-raise deferred faults and recover; under the *general* model nothing
//! remains (the OS completes wild loads with a NaT after an expensive page
//! walk).

use epic_ir::{Function, Op, Opcode, Operand, Vreg};
use std::collections::HashMap;

/// Which IA-64 recovery schema compiled code assumes (paper Fig. 9).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SpecModel {
    /// Speculative loads complete (or NaT) immediately; nothing at home.
    #[default]
    General,
    /// DTLB-miss loads defer; a `chk` at home re-executes on NaT.
    Sentinel,
}

/// Knobs for promotion.
#[derive(Clone, Copy, Debug)]
pub struct SpeculateOptions {
    /// Recovery schema.
    pub model: SpecModel,
    /// Only promote in blocks at least this hot.
    pub min_weight: f64,
    /// Max promotions per block (limits issue-slot waste).
    pub max_per_block: usize,
}

impl Default for SpeculateOptions {
    fn default() -> SpeculateOptions {
        SpeculateOptions {
            model: SpecModel::General,
            min_weight: 1.0,
            max_per_block: 16,
        }
    }
}

/// Statistics from promotion.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpeculateStats {
    /// Loads promoted (guard removed, spec set).
    pub loads_promoted: usize,
    /// Pure consumer ops promoted alongside.
    pub consumers_promoted: usize,
    /// `chk` ops inserted (sentinel model only).
    pub chks_inserted: usize,
}

/// Run predicate promotion over every block of `f`.
pub fn run(f: &mut Function, opts: &SpeculateOptions) -> SpeculateStats {
    let mut stats = SpeculateStats::default();
    // def counts across the function: promotion requires single-def dsts.
    let mut def_counts: HashMap<Vreg, usize> = HashMap::new();
    for b in f.block_ids() {
        for op in &f.block(b).ops {
            for &d in op.defs() {
                *def_counts.entry(d).or_insert(0) += 1;
            }
        }
    }
    // Use positions per register: (block, op index, guard) for source
    // uses, plus a flag for guard uses.
    #[derive(Default, Clone)]
    struct UseInfo {
        sites: Vec<(epic_ir::BlockId, usize, Option<Vreg>)>,
        used_as_guard: bool,
    }
    let mut use_info: HashMap<Vreg, UseInfo> = HashMap::new();
    for b in f.block_ids() {
        for (i, op) in f.block(b).ops.iter().enumerate() {
            for s in &op.srcs {
                if let Operand::Reg(u) = s {
                    use_info.entry(*u).or_default().sites.push((b, i, op.guard));
                }
            }
            if let Some(g) = op.guard {
                use_info.entry(g).or_default().used_as_guard = true;
            }
        }
    }

    let blocks: Vec<_> = f.block_ids().collect();
    for b in blocks {
        if f.block(b).weight < opts.min_weight {
            continue;
        }
        let mut promoted_here = 0;
        // Track which predicates have been "promoted through" so consumer
        // chains can follow.
        let mut promoted_dsts: Vec<Vreg> = Vec::new();
        let nops = f.block(b).ops.len();
        let mut chks: Vec<(usize, Op)> = Vec::new(); // insert-after positions
        for i in 0..nops {
            let op = &f.block(b).ops[i];
            let Some(g) = op.guard else { continue };
            if promoted_here >= opts.max_per_block {
                break;
            }
            let promotable_kind = matches!(op.opcode, Opcode::Ld(_)) || op.opcode.is_pure();
            if !promotable_kind || op.dsts.len() != 1 {
                continue;
            }
            let dst = op.dsts[0];
            // dst must be single-def and every use guarded by the same
            // predicate (so an off-path garbage/NaT value is never consumed
            // unguarded) and never used as a guard itself.
            if def_counts.get(&dst).copied().unwrap_or(0) != 1 {
                continue;
            }
            let info = use_info.get(&dst).cloned().unwrap_or_default();
            if info.used_as_guard {
                continue;
            }
            // Every use must be *after* the def in this same block (no
            // loop-carried upward-exposed reads of the promoted value) and
            // guarded by the same predicate register.
            let all_ok = info
                .sites
                .iter()
                .all(|(ub, ui, ug)| *ub == b && *ui > i && *ug == Some(g));
            if !all_ok {
                continue;
            }
            // For loads, the address must not itself be a promoted value?
            // It may be: a NaT address on a speculative load yields NaT.
            let is_load = matches!(op.opcode, Opcode::Ld(_));
            let op = &mut f.block_mut(b).ops[i];
            op.guard = None;
            if is_load {
                op.spec = true;
                stats.loads_promoted += 1;
                if opts.model == SpecModel::Sentinel {
                    // home-point check: dst = chk(dst, addr)
                    let addr = op.srcs[0];
                    let size = match op.opcode {
                        Opcode::Ld(s) => s,
                        _ => unreachable!(),
                    };
                    let mut chk = Op::new(
                        epic_ir::OpId(0),
                        Opcode::Chk(size),
                        vec![dst],
                        vec![Operand::Reg(dst), addr],
                    );
                    chk.guard = Some(g);
                    chk.weight = op.weight;
                    chks.push((i, chk));
                    stats.chks_inserted += 1;
                }
            } else {
                stats.consumers_promoted += 1;
            }
            promoted_dsts.push(dst);
            promoted_here += 1;
        }
        // Insert sentinel checks (from the back so indexes stay valid).
        for (pos, mut chk) in chks.into_iter().rev() {
            chk.id = f.new_op_id();
            f.block_mut(b).ops.insert(pos + 1, chk);
        }
        let _ = promoted_dsts;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::interp::{run as interp_run, InterpOptions};
    use epic_ir::verify::verify_program;

    /// Build a predicated program via if-conversion, then promote.
    fn promoted(src: &str, model: SpecModel) -> (epic_ir::Program, SpeculateStats) {
        let mut prog = epic_lang::compile(src).unwrap();
        epic_opt::profile::profile_program(&mut prog, &[], 50_000_000).unwrap();
        for func in &mut prog.funcs {
            crate::ifconv::run(func, &crate::ifconv::IfConvOptions::default());
            epic_opt::classical::cfg::run(func);
        }
        let mut stats = SpeculateStats::default();
        for func in &mut prog.funcs {
            let s = run(
                func,
                &SpeculateOptions {
                    model,
                    ..Default::default()
                },
            );
            stats.loads_promoted += s.loads_promoted;
            stats.consumers_promoted += s.consumers_promoted;
            stats.chks_inserted += s.chks_inserted;
        }
        verify_program(&prog).unwrap();
        (prog, stats)
    }

    /// A guarded load whose address is sometimes wild — the paper's
    /// pointer/int union pattern from gcc (Sec. 4.3). Promotion must keep
    /// the program correct: the wild executions produce NaT consumed only
    /// by squashed ops.
    const WILD_SRC: &str = "
        global slots: [int; 128];
        fn main() {
            let i = 0; let s = 0;
            while i < 500 {
                let v = i * 2654435761;
                let is_ptr = i % 4 == 0;
                let addr = v;                      // garbage when !is_ptr
                if is_ptr { addr = (&slots[i % 128]) as int; }
                if is_ptr { s = s + *(addr as *int) + 1; }
                slots[i % 128] = s % 1000;
                i = i + 1;
            }
            out(s);
        }";

    #[test]
    fn promotes_loads_in_general_model_and_preserves_semantics() {
        let want = interp_run(
            &epic_lang::compile(WILD_SRC).unwrap(),
            &[],
            InterpOptions::default(),
        )
        .unwrap()
        .output;
        let (prog, stats) = promoted(WILD_SRC, SpecModel::General);
        assert!(stats.loads_promoted >= 1, "stats {stats:?}");
        // promoted loads exist and are speculative
        let main = prog.func(prog.entry);
        let spec_loads = main
            .block_ids()
            .flat_map(|b| main.block(b).ops.clone())
            .filter(|o| o.spec)
            .count();
        assert!(spec_loads >= 1);
        let got = interp_run(&prog, &[], InterpOptions::default())
            .unwrap()
            .output;
        assert_eq!(got, want);
    }

    #[test]
    fn sentinel_model_inserts_chks() {
        let want = interp_run(
            &epic_lang::compile(WILD_SRC).unwrap(),
            &[],
            InterpOptions::default(),
        )
        .unwrap()
        .output;
        let (prog, stats) = promoted(WILD_SRC, SpecModel::Sentinel);
        assert!(stats.chks_inserted >= 1, "stats {stats:?}");
        let got = interp_run(&prog, &[], InterpOptions::default())
            .unwrap()
            .output;
        assert_eq!(got, want);
    }

    #[test]
    fn does_not_promote_multiply_defined_dsts() {
        // x is defined on both sides of the diamond; promotion of either
        // guarded def would clobber the other path's value.
        let src = "
            global g: [int; 8];
            fn main() {
                let i = 0; let s = 0;
                while i < 100 {
                    let x = 0;
                    if i % 2 == 0 { x = g[0]; } else { x = g[1]; }
                    s = s + x;
                    i = i + 1;
                }
                out(s);
            }";
        let want = interp_run(
            &epic_lang::compile(src).unwrap(),
            &[],
            InterpOptions::default(),
        )
        .unwrap()
        .output;
        let (prog, _stats) = promoted(src, SpecModel::General);
        let got = interp_run(&prog, &[], InterpOptions::default())
            .unwrap()
            .output;
        assert_eq!(got, want);
    }
}
