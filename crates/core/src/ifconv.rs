//! If-conversion: the core of hyperblock formation (Mahlke et al., the
//! paper's [6]).
//!
//! Repeatedly collapses *triangle* (`if c { T }`) and *diamond*
//! (`if c { T } else { E }`) control-flow patterns into straight-line
//! predicated code, guarding each side's operations with the branch
//! predicate or its complement. Combined with block merging this grows
//! hyperblocks: single-entry regions whose internal control decisions are
//! data (predicate) dependences, freeing the scheduler to interleave
//! independent paths (paper Sec. 2.3).
//!
//! In non-SSA predicated IR the conversion is locally semantics-preserving
//! by construction: a guarded operation is a *may*-def, exactly like the
//! original conditionally-executed block.

use epic_ir::{BlockId, CmpKind, Function, Op, Opcode, Operand, Vreg};

/// Heuristic knobs for if-conversion.
#[derive(Clone, Copy, Debug)]
pub struct IfConvOptions {
    /// Max ops on a converted side.
    pub max_side_ops: usize,
    /// A side with fewer ops than this is converted regardless of bias.
    pub tiny_side_ops: usize,
    /// Minimum fraction of executions a side must see to be included when
    /// it is not tiny (avoids issuing many always-squashed ops).
    pub min_side_frac: f64,
    /// Allow calls inside converted regions (predicated calls).
    pub allow_calls: bool,
}

impl Default for IfConvOptions {
    fn default() -> IfConvOptions {
        IfConvOptions {
            max_side_ops: 24,
            tiny_side_ops: 5,
            min_side_frac: 0.03,
            allow_calls: false,
        }
    }
}

/// Statistics from if-conversion.
#[derive(Clone, Copy, Debug, Default)]
pub struct IfConvStats {
    /// Triangles collapsed.
    pub triangles: usize,
    /// Diamonds collapsed.
    pub diamonds: usize,
    /// Static branches eliminated.
    pub branches_removed: usize,
}

/// Run if-conversion to fixpoint over `f`.
pub fn run(f: &mut Function, opts: &IfConvOptions) -> IfConvStats {
    let mut stats = IfConvStats::default();
    loop {
        let mut changed = false;
        let blocks: Vec<_> = f.block_ids().collect();
        for a in blocks {
            if try_convert(f, a, opts, &mut stats) {
                changed = true;
                break; // preds/shape stale; rescan
            }
        }
        if !changed {
            // Merging straight-line chains may expose nested patterns
            // (e.g. an inner converted diamond whose join separated the
            // outer sides from the outer join).
            if epic_opt::classical::cfg::run(f) == 0 {
                return stats;
            }
        }
    }
}

/// A conditional split at the end of block `a`: `(p) Br then_b; Br else_b`.
struct Split {
    p: Vreg,
    then_b: BlockId,
    else_b: BlockId,
    /// Index of the guarded branch within `a`.
    br_idx: usize,
    taken_w: f64,
}

fn split_of(f: &Function, a: BlockId) -> Option<Split> {
    let ops = &f.block(a).ops;
    if ops.len() < 2 {
        return None;
    }
    let term = &ops[ops.len() - 1];
    if term.opcode != Opcode::Br || term.guard.is_some() {
        return None;
    }
    // last guarded branch in the block; ops after it (the "tail") are
    // validated by the caller.
    let br_idx = ops[..ops.len() - 1]
        .iter()
        .rposition(|o| o.is_branch() && o.guard.is_some())?;
    let cond = &ops[br_idx];
    Some(Split {
        p: cond.guard.unwrap(),
        then_b: cond.branch_target()?,
        else_b: term.branch_target()?,
        br_idx,
        taken_w: cond.weight,
    })
}

/// A convertible side: single-pred block whose only branch is its final
/// unconditional `Br join`.
fn side_of(
    f: &Function,
    b: BlockId,
    pred: BlockId,
    preds: &[Vec<BlockId>],
    opts: &IfConvOptions,
) -> Option<BlockId> {
    if preds[b.index()].as_slice() != [pred] {
        return None;
    }
    // predecessor lists are deduplicated: also require exactly ONE edge
    // from `pred` (an earlier side-exit branch may target `b` too, and it
    // would dangle once `b` is absorbed)
    let edges = f
        .block(pred)
        .ops
        .iter()
        .filter(|o| o.branch_target() == Some(b))
        .count();
    if edges != 1 {
        return None;
    }
    let blk = f.block(b);
    let n = blk.ops.len();
    if n == 0 || n - 1 > opts.max_side_ops {
        return None;
    }
    for (i, op) in blk.ops.iter().enumerate() {
        if i + 1 == n {
            if op.opcode != Opcode::Br || op.guard.is_some() {
                return None;
            }
        } else {
            if op.is_branch() || matches!(op.opcode, Opcode::Ret) {
                return None;
            }
            if op.is_call() && !opts.allow_calls {
                return None;
            }
        }
    }
    blk.terminator().branch_target()
}

fn try_convert(
    f: &mut Function,
    a: BlockId,
    opts: &IfConvOptions,
    stats: &mut IfConvStats,
) -> bool {
    let Some(split) = split_of(f, a) else {
        return false;
    };
    if split.then_b == a || split.else_b == a || split.then_b == split.else_b {
        return false;
    }
    // The "tail": ops between the guarded branch and the terminator. These
    // execute on the fall-through (¬p) path; they arise when earlier block
    // merging absorbed an else side into `a`. They must be branch-free and
    // respect the call policy.
    for op in &f.block(a).ops[split.br_idx + 1..f.block(a).ops.len() - 1] {
        if op.is_branch() || matches!(op.opcode, Opcode::Ret) {
            return false;
        }
        if op.is_call() && !opts.allow_calls {
            return false;
        }
    }
    let tail_len = f.block(a).ops.len() - 2 - split.br_idx;

    let preds = f.preds();
    let a_w = f.block(a).weight.max(1.0);
    let then_frac = (split.taken_w / a_w).clamp(0.0, 1.0);
    let else_frac = 1.0 - then_frac;

    let then_join = side_of(f, split.then_b, a, &preds, opts);
    let else_join = side_of(f, split.else_b, a, &preds, opts);

    // Diamond: both sides collapse to the same join.
    if let (Some(tj), Some(ej)) = (then_join, else_join) {
        if tj == ej && tj != split.then_b && tj != split.else_b && tj != a {
            let t_ok = side_eligible(f, split.then_b, then_frac, opts);
            let e_ok = side_eligible(f, split.else_b, else_frac, opts);
            if t_ok && e_ok && tail_len <= opts.max_side_ops {
                convert(f, a, &split, Some(split.then_b), Some(split.else_b), tj);
                stats.diamonds += 1;
                stats.branches_removed += 2;
                return true;
            }
        }
    }
    // Triangle: the then side joins back at the fall-through target.
    if let Some(tj) = then_join {
        if tj == split.else_b
            && side_eligible(f, split.then_b, then_frac, opts)
            && tail_len <= opts.max_side_ops
        {
            convert(f, a, &split, Some(split.then_b), None, split.else_b);
            stats.triangles += 1;
            stats.branches_removed += 1;
            return true;
        }
    }
    // Mirrored triangle: the fall-through side joins back at the taken
    // target.
    if let Some(ej) = else_join {
        if ej == split.then_b
            && side_eligible(f, split.else_b, else_frac, opts)
            && tail_len <= opts.max_side_ops
        {
            convert(f, a, &split, None, Some(split.else_b), split.then_b);
            stats.triangles += 1;
            stats.branches_removed += 1;
            return true;
        }
    }
    false
}

fn side_eligible(f: &Function, b: BlockId, frac: f64, opts: &IfConvOptions) -> bool {
    let n_ops = f.block(b).ops.len().saturating_sub(1);
    n_ops <= opts.tiny_side_ops || frac >= opts.min_side_frac
}

/// Obtain the branch predicate and its complement for use as guards.
///
/// Fast path: when the predicate's last definition in `a` is an unguarded
/// single-destination compare and nothing being absorbed redefines the
/// predicate, the compare simply gains a second (complement) destination —
/// zero extra operations and no added dependence height, exactly as IA-64
/// `cmp` writes both predicates. Otherwise a fresh
/// `p2,q2 = cmp.ne p, 0` is materialized before the branch (this also
/// shields the guards when absorbed code redefines `p`). Returns
/// `(p, ¬p, ops_inserted)`.
fn materialize_preds(
    f: &mut Function,
    a: BlockId,
    split: &Split,
    absorbed: &[BlockId],
) -> (Vreg, Vreg, usize) {
    let redefines_p = |ops: &[Op]| ops.iter().any(|o| o.defs().contains(&split.p));
    let safe = !absorbed.iter().any(|b| redefines_p(&f.block(*b).ops))
        && !redefines_p(&f.block(a).ops[split.br_idx..]);
    if safe {
        let def_idx = f.block(a).ops[..split.br_idx]
            .iter()
            .rposition(|o| o.defs().contains(&split.p));
        if let Some(di) = def_idx {
            let op = &f.block(a).ops[di];
            if matches!(op.opcode, Opcode::Cmp(_)) && op.dsts.len() == 1 && op.guard.is_none() {
                let q = f.new_vreg();
                f.block_mut(a).ops[di].dsts.push(q);
                return (split.p, q, 0);
            }
        }
    }
    let p2 = f.new_vreg();
    let q2 = f.new_vreg();
    // p2,q2 = cmp.ne p, 0  — the predicate and its complement.
    let cmp = Op::new(
        f.new_op_id(),
        Opcode::Cmp(CmpKind::Ne),
        vec![p2, q2],
        vec![Operand::Reg(split.p), Operand::Imm(0)],
    );
    let idx = split.br_idx;
    f.block_mut(a).ops.insert(idx, cmp);
    (p2, q2, 1)
}

fn guard_ops(f: &mut Function, src: BlockId, pred: Vreg) -> Vec<Op> {
    let blk = f.block(src).clone();
    let mut out = Vec::new();
    for op in &blk.ops[..blk.ops.len() - 1] {
        let mut c = f.clone_op(op);
        match c.guard {
            None => c.guard = Some(pred),
            Some(g) => {
                // compose: and g2 = g, pred
                let g2 = f.new_vreg();
                let and = Op::new(
                    f.new_op_id(),
                    Opcode::And,
                    vec![g2],
                    vec![Operand::Reg(g), Operand::Reg(pred)],
                );
                out.push(and);
                c.guard = Some(g2);
            }
        }
        out.push(c);
    }
    out
}

/// Perform the conversion. `then_side`/`else_side` are the blocks absorbed
/// under `p2` / `q2` respectively (either may be absent for triangles);
/// the block's own tail ops (after the guarded branch) join the ¬p side.
fn convert(
    f: &mut Function,
    a: BlockId,
    split: &Split,
    then_side: Option<BlockId>,
    else_side: Option<BlockId>,
    join: BlockId,
) {
    let absorbed: Vec<BlockId> = then_side.iter().chain(else_side.iter()).copied().collect();
    let (p2, q2, inserted) = materialize_preds(f, a, split, &absorbed);
    // Layout now (with `inserted` extra ops before the branch):
    //   [prefix.. , (p)Br T @br_idx+inserted, tail.., Br E]
    let then_ops = then_side.map(|b| guard_ops(f, b, p2)).unwrap_or_default();
    let else_ops = else_side.map(|b| guard_ops(f, b, q2)).unwrap_or_default();
    let blk = f.block_mut(a);
    let n = blk.ops.len();
    // extract the tail (between guarded branch and terminator)
    let tail: Vec<Op> = blk.ops.drain(split.br_idx + inserted + 1..n - 1).collect();
    // remove `(p) Br T` and the terminator
    let n = blk.ops.len();
    blk.ops.remove(n - 1);
    blk.ops.remove(n - 2);
    // tail executes on the ¬p path, before the absorbed else side
    let mut guarded_tail = Vec::with_capacity(tail.len());
    for mut op in tail {
        match op.guard {
            None => op.guard = Some(q2),
            Some(g) => {
                let g2 = f.new_vreg();
                let and = Op::new(
                    f.new_op_id(),
                    Opcode::And,
                    vec![g2],
                    vec![Operand::Reg(g), Operand::Reg(q2)],
                );
                guarded_tail.push(and);
                op.guard = Some(g2);
            }
        }
        guarded_tail.push(op);
    }
    let blk = f.block_mut(a);
    blk.ops.extend(guarded_tail);
    let w = f.block(a).weight;
    let mut br = epic_ir::func::mk_br(f.new_op_id(), join);
    br.weight = w;
    let blk = f.block_mut(a);
    blk.ops.extend(else_ops);
    blk.ops.extend(then_ops);
    blk.ops.push(br);
    if let Some(b) = then_side {
        f.remove_block(b);
    }
    if let Some(b) = else_side {
        f.remove_block(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::interp::{run as interp_run, InterpOptions};
    use epic_ir::verify::verify_program;

    fn convert_main(src: &str, args: &[i64]) -> (epic_ir::Program, IfConvStats) {
        let mut prog = epic_lang::compile(src).unwrap();
        epic_opt::profile::profile_program(&mut prog, args, 10_000_000).unwrap();
        let mut stats = IfConvStats::default();
        for func in &mut prog.funcs {
            let s = run(func, &IfConvOptions::default());
            stats.triangles += s.triangles;
            stats.diamonds += s.diamonds;
            stats.branches_removed += s.branches_removed;
            epic_opt::classical::cfg::run(func);
        }
        verify_program(&prog).unwrap();
        (prog, stats)
    }

    #[test]
    fn converts_diamond_and_preserves_semantics() {
        let src = "
            fn main() {
                let i = 0; let s = 0;
                while i < 50 {
                    let t = 0;
                    if i % 3 == 0 { t = i * 2; } else { t = i + 7; }
                    s = s + t;
                    i = i + 1;
                }
                out(s);
            }";
        let want = interp_run(
            &epic_lang::compile(src).unwrap(),
            &[],
            InterpOptions::default(),
        )
        .unwrap()
        .output;
        let (prog, stats) = convert_main(src, &[]);
        assert!(stats.diamonds >= 1, "stats: {stats:?}");
        let got = interp_run(&prog, &[], InterpOptions::default())
            .unwrap()
            .output;
        assert_eq!(got, want);
        // the loop body should now be branch-free except loop control
        let main = prog.func(prog.entry);
        let n_blocks = main.block_ids().count();
        assert!(
            n_blocks <= 4,
            "hyperblock formation should shrink CFG: {n_blocks}"
        );
    }

    #[test]
    fn converts_triangle() {
        let src = "
            fn main() {
                let i = 0; let mx = 0;
                while i < 40 {
                    let v = (i * 37) % 11;
                    if v > mx { mx = v; }
                    i = i + 1;
                }
                out(mx);
            }";
        let want = interp_run(
            &epic_lang::compile(src).unwrap(),
            &[],
            InterpOptions::default(),
        )
        .unwrap()
        .output;
        let (prog, stats) = convert_main(src, &[]);
        assert!(stats.triangles + stats.diamonds >= 1, "stats: {stats:?}");
        let got = interp_run(&prog, &[], InterpOptions::default())
            .unwrap()
            .output;
        assert_eq!(got, want);
    }

    #[test]
    fn nested_ifs_compose_guards() {
        let src = "
            fn main() {
                let i = 0; let s = 0;
                while i < 30 {
                    if i % 2 == 0 {
                        if i % 3 == 0 { s = s + 100; } else { s = s + 1; }
                    } else {
                        s = s + 10;
                    }
                    i = i + 1;
                }
                out(s);
            }";
        let want = interp_run(
            &epic_lang::compile(src).unwrap(),
            &[],
            InterpOptions::default(),
        )
        .unwrap()
        .output;
        let (prog, _stats) = convert_main(src, &[]);
        let got = interp_run(&prog, &[], InterpOptions::default())
            .unwrap()
            .output;
        assert_eq!(got, want);
        // some op must carry a composed guard (And of predicates)
        let main = prog.func(prog.entry);
        let has_and_guard = main.block_ids().any(|b| {
            main.block(b)
                .ops
                .iter()
                .any(|o| o.opcode == Opcode::And && o.guard.is_none())
        });
        assert!(has_and_guard);
    }

    #[test]
    fn guarded_stores_and_predicate_redefinition() {
        // The side redefines the variable feeding the predicate: the
        // materialized predicate copies must keep the guards correct.
        let src = "
            global g: [int; 64];
            fn main() {
                let i = 0;
                let c = 0;
                while i < 64 {
                    c = i % 4;
                    if c == 0 { g[i] = i; c = 99; } else { g[i] = 0 - i; }
                    i = i + 1;
                }
                let s = 0; i = 0;
                while i < 64 { s = s + g[i]; i = i + 1; }
                out(s);
            }";
        let want = interp_run(
            &epic_lang::compile(src).unwrap(),
            &[],
            InterpOptions::default(),
        )
        .unwrap()
        .output;
        let (prog, _) = convert_main(src, &[]);
        let got = interp_run(&prog, &[], InterpOptions::default())
            .unwrap()
            .output;
        assert_eq!(got, want);
    }

    #[test]
    fn skips_oversized_sides() {
        // a side with > max_side_ops stays a branch
        let mut body = String::new();
        for k in 0..40 {
            body.push_str(&format!("s = s + {k} * i;\n"));
        }
        let src = format!(
            "fn main() {{
                let i = 0; let s = 0;
                while i < 10 {{
                    if i % 2 == 0 {{ {body} }}
                    i = i + 1;
                }}
                out(s);
            }}"
        );
        let (_prog, stats) = convert_main(&src, &[]);
        assert_eq!(stats.triangles, 0);
        assert_eq!(stats.diamonds, 0);
    }
}
