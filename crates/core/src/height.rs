//! Data-height reduction (paper Sec. 3.2: "control and data height
//! reduction" runs after region formation).
//!
//! Accumulator chains like `s = s ⊕ a; …; s = s ⊕ b; …; s = s ⊕ c` are
//! serial: each link waits for the previous. For associative-commutative
//! operators the additions can be reassociated into a balanced tree over
//! fresh temporaries, cutting the dependence height from `k` to
//! `⌈log₂ k⌉ + 1` — exactly the kind of critical-path surgery wide EPIC
//! regions need to fill their issue slots.

use epic_ir::{Function, Op, Opcode, Operand, Vreg};

/// Knobs for height reduction.
#[derive(Clone, Copy, Debug)]
pub struct HeightOptions {
    /// Minimum chain length worth rewriting.
    pub min_chain: usize,
}

impl Default for HeightOptions {
    fn default() -> HeightOptions {
        HeightOptions { min_chain: 3 }
    }
}

/// Statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct HeightStats {
    /// Chains reassociated.
    pub chains: usize,
    /// Total links rewritten.
    pub links: usize,
}

fn associative(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::Add | Opcode::Mul | Opcode::And | Opcode::Or | Opcode::Xor
    )
}

/// Run height reduction over every block.
pub fn run(f: &mut Function, opts: &HeightOptions) -> HeightStats {
    let mut stats = HeightStats::default();
    let blocks: Vec<_> = f.block_ids().collect();
    for b in blocks {
        while let Some((chain, opcode, acc)) = find_chain(f, b, opts.min_chain) {
            rewrite_chain(f, b, &chain, opcode, acc);
            stats.chains += 1;
            stats.links += chain.len();
        }
    }
    stats
}

/// Find one rewritable chain: indexes of ops `acc = acc <op> v_i`, all
/// unguarded, with no intervening use/def of `acc` and no intervening
/// branch/side-effecting op (whose side exit could observe the
/// intermediate accumulator).
fn find_chain(
    f: &Function,
    b: epic_ir::BlockId,
    min_chain: usize,
) -> Option<(Vec<usize>, Opcode, Vreg)> {
    let ops = &f.block(b).ops;
    let link = |op: &Op| -> Option<(Opcode, Vreg, Operand)> {
        if !associative(op.opcode) || op.guard.is_some() || op.dsts.len() != 1 {
            return None;
        }
        let d = op.dsts[0];
        let (a, c) = (op.srcs[0], op.srcs[1]);
        match (a, c) {
            (Operand::Reg(x), other) if x == d && other != Operand::Reg(d) => {
                Some((op.opcode, d, other))
            }
            (other, Operand::Reg(x)) if x == d && other != Operand::Reg(d) => {
                Some((op.opcode, d, other))
            }
            _ => None,
        }
    };
    for start in 0..ops.len() {
        let Some((opcode, acc, _)) = link(&ops[start]) else {
            continue;
        };
        // ops marked as chain-rewritten already carry fresh temps; the
        // pattern won't rematch because temps differ — safe to rescan.
        let mut chain = vec![start];
        let mut leaf_regs: Vec<Vreg> = Vec::new();
        let record_leaf = |op: &Op, leaf_regs: &mut Vec<Vreg>| {
            for s in &op.srcs {
                if let Operand::Reg(r) = s {
                    if *r != acc {
                        leaf_regs.push(*r);
                    }
                }
            }
        };
        record_leaf(&ops[start], &mut leaf_regs);
        for (j, op) in ops.iter().enumerate().skip(start + 1) {
            // redefining an earlier leaf register would make the deferred
            // tree read the wrong value: end the chain first.
            if op.defs().iter().any(|d| leaf_regs.contains(d)) {
                break;
            }
            if let Some((o2, a2, _)) = link(op) {
                if o2 == opcode && a2 == acc {
                    chain.push(j);
                    record_leaf(op, &mut leaf_regs);
                    continue;
                }
            }
            // a non-link op may sit between links if it neither touches
            // the accumulator nor can observe it (branches / side
            // effects end the chain).
            let touches_acc = op.uses().any(|u| u == acc) || op.defs().contains(&acc);
            let boundary = op.is_branch() || op.has_side_effects();
            if touches_acc || boundary {
                break;
            }
        }
        if chain.len() >= min_chain {
            return Some((chain, opcode, acc));
        }
    }
    None
}

/// Rewrite: remove all chain links; at the last link's position, combine
/// the `v_i` pairwise into a balanced tree and fold it into `acc` once.
fn rewrite_chain(
    f: &mut Function,
    b: epic_ir::BlockId,
    chain: &[usize],
    opcode: Opcode,
    acc: Vreg,
) {
    let weight = f.block(b).ops[chain[0]].weight;
    let leaves: Vec<Operand> = chain
        .iter()
        .map(|&i| {
            let op = &f.block(b).ops[i];
            match (op.srcs[0], op.srcs[1]) {
                (Operand::Reg(x), other) if x == acc => other,
                (other, _) => other,
            }
        })
        .collect();
    // build the balanced tree ops
    let mut level: Vec<Operand> = leaves;
    let mut tree_ops: Vec<Op> = Vec::new();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.chunks(2);
        for pair in &mut it {
            if pair.len() == 2 {
                let t = f.new_vreg();
                let mut op = Op::new(f.new_op_id(), opcode, vec![t], vec![pair[0], pair[1]]);
                op.weight = weight;
                tree_ops.push(op);
                next.push(Operand::Reg(t));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    let mut fold = Op::new(
        f.new_op_id(),
        opcode,
        vec![acc],
        vec![Operand::Reg(acc), level[0]],
    );
    fold.weight = weight;
    tree_ops.push(fold);
    // splice: remove chain links (back to front), insert at last position
    let insert_at = *chain.last().expect("nonempty chain");
    let blk = f.block_mut(b);
    for &i in chain.iter().rev() {
        blk.ops.remove(i);
    }
    let insert_at = insert_at + 1 - chain.len();
    for (k, op) in tree_ops.into_iter().enumerate() {
        blk.ops.insert(insert_at + k, op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::builder::FuncBuilder;
    use epic_ir::interp::{run as interp_run, InterpOptions};
    use epic_ir::{BlockId, FuncId};

    fn run_prog(f: Function, args: &[i64]) -> Vec<u64> {
        let mut prog = epic_ir::Program::new();
        prog.add_func("main");
        let mut f = f;
        f.name = "main".into();
        prog.funcs[0] = f;
        interp_run(&prog, args, InterpOptions::default())
            .unwrap()
            .output
    }

    #[test]
    fn reassociates_add_chain_and_preserves_value() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let p = b.param();
        let acc = b.mov(0i64);
        for k in 1..=6i64 {
            let v = b.binop(Opcode::Mul, p, k);
            b.binop_to(acc, Opcode::Add, acc, v);
        }
        b.out(acc);
        b.ret(None);
        let mut f = b.finish();
        let want = run_prog(f.clone(), &[3]);
        let stats = run(&mut f, &HeightOptions::default());
        assert!(stats.chains >= 1, "{stats:?}");
        epic_ir::verify::verify_function(&f).unwrap();
        assert_eq!(run_prog(f, &[3]), want);
    }

    #[test]
    fn chain_height_drops() {
        // 8 accumulations: height 8 -> ~4 (3 tree levels + fold)
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let mut vals = Vec::new();
        for k in 0..8i64 {
            vals.push(b.mov(k + 1));
        }
        let acc = b.mov(0i64);
        for v in vals {
            b.binop_to(acc, Opcode::Add, acc, v);
        }
        b.out(acc);
        b.ret(None);
        let mut f = b.finish();
        run(&mut f, &HeightOptions::default());
        // longest acc-dependent chain: count ops writing acc
        let writes: usize = f
            .block(BlockId(0))
            .ops
            .iter()
            .filter(|o| o.defs().contains(&acc))
            .count();
        assert!(
            writes <= 2,
            "acc should be written once or twice, got {writes}"
        );
        assert_eq!(run_prog(f, &[]), vec![36]);
    }

    #[test]
    fn stops_at_observers_and_branches() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let exit = b.block();
        let acc = b.mov(0i64);
        b.binop_to(acc, Opcode::Add, acc, 1i64);
        b.binop_to(acc, Opcode::Add, acc, 2i64);
        b.out(acc); // observer: chain must not cross
        b.binop_to(acc, Opcode::Add, acc, 3i64);
        b.binop_to(acc, Opcode::Add, acc, 4i64);
        b.out(acc);
        b.br(exit);
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.finish();
        let want = run_prog(f.clone(), &[]);
        let stats = run(&mut f, &HeightOptions { min_chain: 2 });
        epic_ir::verify::verify_function(&f).unwrap();
        assert_eq!(run_prog(f, &[]), want);
        assert_eq!(want, vec![3, 10]);
        assert!(stats.chains <= 2);
    }

    #[test]
    fn ignores_guarded_links() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        let p = b.param();
        let acc = b.mov(0i64);
        let mut g1 = epic_ir::Op::new(
            epic_ir::OpId(0),
            Opcode::Add,
            vec![acc],
            vec![Operand::Reg(acc), Operand::Imm(5)],
        );
        g1.guard = Some(p);
        b.push(g1.clone());
        b.push(g1.clone());
        b.push(g1);
        b.out(acc);
        b.ret(None);
        let mut f = b.finish();
        let stats = run(&mut f, &HeightOptions::default());
        assert_eq!(stats.chains, 0);
    }
}
