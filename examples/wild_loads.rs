//! The paper's Sec. 4.3 pathology, live: under the *general* control
//! speculation model, promoted loads of pointer/int unions chase garbage
//! addresses through the kernel's page tables, burning kernel cycles
//! (gcc spent ~20% of its time this way). The *sentinel* model defers
//! cheaply but pays for `chk` recovery instead.
//!
//! Run with: `cargo run --release --example wild_loads`

use epic_core::{speculate, IlpOptions};
use epic_driver::{measure_traced, CompileOptions, OptLevel};
use epic_sim::{SimOptions, SpecModel};
use epic_trace::Trace;

fn main() {
    let w = epic_workloads::by_name("gcc_mc").unwrap();
    println!("workload: {} ({})\n", w.name, w.description);

    // ILP-NS: no control speculation, no wild loads.
    let ns = measure_traced(
        &w,
        &CompileOptions::for_level(OptLevel::IlpNs),
        &SimOptions::default(),
        &Trace::disabled(),
    )
    .unwrap();
    // ILP-CS under the general model.
    let general = measure_traced(
        &w,
        &CompileOptions::for_level(OptLevel::IlpCs),
        &SimOptions::default(),
        &Trace::disabled(),
    )
    .unwrap();
    // ILP-CS under the sentinel model (compiler leaves chk ops).
    let mut sopts = CompileOptions::for_level(OptLevel::IlpCs);
    sopts.ilp_override = Some(IlpOptions {
        speculate: Some(speculate::SpeculateOptions {
            model: speculate::SpecModel::Sentinel,
            ..Default::default()
        }),
        ..IlpOptions::default()
    });
    let sentinel = measure_traced(
        &w,
        &sopts,
        &SimOptions {
            spec_model: SpecModel::Sentinel,
            ..Default::default()
        },
        &Trace::disabled(),
    )
    .unwrap();

    let row = |name: &str, m: &epic_driver::Measurement| {
        println!(
            "{:<22} {:>10} cycles | kernel {:>8} ({:>4.1}%) | wild loads {:>7} | chk recoveries {:>6}",
            name,
            m.sim.cycles,
            m.sim.acct.kernel(),
            100.0 * m.sim.acct.kernel() as f64 / m.sim.cycles as f64,
            m.sim.counters.wild_loads,
            m.sim.counters.chk_recoveries,
        );
    };
    row("ILP-NS (no spec)", &ns);
    row("ILP-CS general", &general);
    row("ILP-CS sentinel", &sentinel);
    println!();
    println!(
        "speculative loads executed under general model: {} ({} deferred to NaT)",
        general.sim.counters.spec_loads, general.sim.counters.deferred_loads
    );
    println!(
        "all three configurations produce identical program output: {}",
        ns.sim.output == general.sim.output && ns.sim.output == sentinel.sim.output
    );
}
