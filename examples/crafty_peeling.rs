//! The paper's Fig. 3 walkthrough on real IR: crafty-style serial `while`
//! loops that typically execute exactly once are peeled, if-converted, and
//! merged into one scheduling region, letting independent loop bodies
//! overlap.
//!
//! Run with: `cargo run --release --example crafty_peeling`

use epic_core::{ifconv, peel, IlpOptions};
use epic_driver::{measure_traced, CompileOptions, OptLevel};
use epic_sim::SimOptions;
use epic_trace::Trace;

const EVALUATE_LIKE: &str = "
    global board: [int; 64];
    fn main() {
        let trial = 0; let score = 0;
        while trial < 4000 {
            board[trial & 63] = (trial * 7) % 13;
            // 'white queen' loop: typically one iteration
            let sq = trial & 63;
            while board[sq] > 9 {
                score = score + board[sq];
                sq = (sq + 1) & 63;
            }
            // 'black queen' loop: typically one iteration
            let k = trial % 3;
            while k > 1 { score = score - k; k = k - 2; }
            score = score + 1;
            trial = trial + 1;
        }
        out(score);
    }";

fn main() {
    // Stage-by-stage view of the transformation (Fig. 3 a->b->c).
    let mut prog = epic_lang::compile(EVALUATE_LIKE).unwrap();
    epic_opt::profile::profile_program(&mut prog, &[], 1_000_000_000).unwrap();
    epic_opt::classical_optimize_program(&mut prog);
    let main_fn = prog.entry;
    let blocks_before = prog.func(main_fn).block_ids().count();
    let branches_before = count_branches(&prog);

    let stats = peel::run(
        &mut prog.funcs[main_fn.index()],
        &peel::PeelOptions::default(),
    );
    println!(
        "(b) loop peeling: {} loops peeled, {} ops duplicated",
        stats.loops_peeled, stats.dup_ops
    );
    let ic = ifconv::run(
        &mut prog.funcs[main_fn.index()],
        &ifconv::IfConvOptions::default(),
    );
    epic_opt::classical::cfg::run(&mut prog.funcs[main_fn.index()]);
    println!(
        "(c) if-conversion + merge: {} regions collapsed, {} static branches removed",
        ic.triangles + ic.diamonds,
        ic.branches_removed
    );
    let blocks_after = prog.func(main_fn).block_ids().count();
    println!(
        "    CFG: {blocks_before} blocks -> {blocks_after} blocks; static branches {} -> {}",
        branches_before,
        count_branches(&prog)
    );
    epic_ir::verify::verify_program(&prog).unwrap();

    // End-to-end effect, measured on the real crafty stand-in.
    println!("\nmeasured on the crafty_mc workload (ref input):");
    let w = epic_workloads::by_name("crafty_mc").unwrap();
    let ons = measure_traced(
        &w,
        &CompileOptions::for_level(OptLevel::ONs),
        &SimOptions::default(),
        &Trace::disabled(),
    )
    .unwrap();
    let ilp = measure_traced(
        &w,
        &CompileOptions::for_level(OptLevel::IlpNs),
        &SimOptions::default(),
        &Trace::disabled(),
    )
    .unwrap();
    let mut nopeel_opts = CompileOptions::for_level(OptLevel::IlpNs);
    nopeel_opts.ilp_override = Some(IlpOptions {
        enable_peel: false,
        ..IlpOptions::ilp_ns()
    });
    let nopeel =
        measure_traced(&w, &nopeel_opts, &SimOptions::default(), &Trace::disabled()).unwrap();
    println!("  O-NS:            {:>9} cycles", ons.sim.cycles);
    println!(
        "  ILP-NS no peel:  {:>9} cycles ({:.2}x)",
        nopeel.sim.cycles,
        ons.sim.cycles as f64 / nopeel.sim.cycles as f64
    );
    println!(
        "  ILP-NS full:     {:>9} cycles ({:.2}x), {} loops peeled",
        ilp.sim.cycles,
        ons.sim.cycles as f64 / ilp.sim.cycles as f64,
        ilp.compiled.ilp.loops_peeled
    );
    assert_eq!(ons.sim.output, ilp.sim.output);
}

fn count_branches(prog: &epic_ir::Program) -> usize {
    let f = prog.func(prog.entry);
    f.block_ids()
        .map(|b| f.block(b).ops.iter().filter(|o| o.is_branch()).count())
        .sum()
}
