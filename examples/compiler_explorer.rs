//! Compiler explorer: watch a MiniC program move through the IMPACT-style
//! pipeline — IR after the frontend, after classical optimization, after
//! structural ILP transformation, and the final Itanium-2-style bundles.
//!
//! Run with: `cargo run --release --example compiler_explorer [path.mc]`
//! (with no argument, a built-in demo program is used).

use epic_core::IlpOptions;
use epic_sched::SchedOptions;

const DEMO: &str = "
    global tab: [int; 32];
    fn main() {
        let i = 0; let s = 0;
        while i < 100 {
            let v = tab[i & 31];
            if v > s { s = v; } else { s = s + 1; }
            tab[i & 31] = s & 255;
            i = i + 1;
        }
        out(s);
    }";

fn main() {
    let src = match std::env::args().nth(1) {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => DEMO.to_string(),
    };
    let mut prog = epic_lang::compile(&src).expect("MiniC compiles");

    println!("================ 1. frontend IR (Lcode-like) ================");
    print_main(&prog);

    epic_opt::profile::profile_program(&mut prog, &[], 1_000_000_000).expect("profiling run");
    epic_opt::inline::run(&mut prog, Default::default());
    epic_opt::classical_optimize_program(&mut prog);
    epic_opt::alias::run(&mut prog);
    println!("========= 2. after inlining + classical optimization ========");
    print_main(&prog);

    for f in &mut prog.funcs {
        epic_core::ilp_transform(f, &IlpOptions::ilp_cs());
    }
    epic_ir::verify::verify_program(&prog).expect("verified");
    println!("====== 3. after structural ILP transforms (hyperblocks) =====");
    print_main(&prog);

    let (mp, plan) = epic_sched::compile_program(&prog, &SchedOptions::ilp_cs());
    println!("============== 4. scheduled + bundled machine code ===========");
    for f in &mp.funcs {
        if f.name == "main" {
            println!("{}", epic_mach::program::disasm(f));
        }
    }
    println!(
        "planned IPC: {:.2}; code bytes: {}; nop fraction: {:.1}%",
        plan.planned_ipc(),
        mp.code_bytes(),
        100.0 * mp.nop_fraction()
    );
    let sim = epic_sim::run(&mp, &[], &epic_sim::SimOptions::default()).expect("runs");
    println!(
        "simulated: {} cycles, achieved IPC {:.2}, output {:?}",
        sim.cycles,
        sim.counters.retired_useful as f64 / sim.cycles as f64,
        sim.output
    );
}

fn print_main(prog: &epic_ir::Program) {
    let f = prog.func(prog.entry);
    println!("{f}");
}
