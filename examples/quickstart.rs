//! Quickstart: compile a MiniC program through the IMPACT-style pipeline
//! at every optimization level and watch the Itanium-2-like simulator's
//! cycle accounting change.
//!
//! Run with: `cargo run --release --example quickstart`

use epic_driver::{compile_source, CompileOptions, OptLevel};
use epic_sim::SimOptions;

const SRC: &str = "
    global hist: [int; 64];
    fn weight(v: int) -> int {
        if v < 8 { return 1; }
        if v < 32 { return 3; }
        return 7;
    }
    fn main() {
        let i = 0;
        let acc = 0;
        while i < 20000 {
            let v = (i * 2654435761) & 63;
            hist[v] = hist[v] + weight(v);
            if v & 1 != 0 { acc = acc + hist[v]; } else { acc = acc - 1; }
            i = i + 1;
        }
        let s = 0;
        i = 0;
        while i < 64 { s = s + hist[i] * i; i = i + 1; }
        out(s);
        out(acc);
    }";

fn main() {
    println!("compiling the same program at the paper's four levels...\n");
    let mut baseline = None;
    for level in OptLevel::ALL {
        let compiled =
            compile_source(SRC, &[], &[], &CompileOptions::for_level(level)).expect("pipeline");
        let sim = epic_sim::run(&compiled.mach, &[], &SimOptions::default()).expect("simulation");
        let base = *baseline.get_or_insert(sim.cycles);
        println!(
            "{:<7} {:>9} cycles  (speedup vs GCC {:>5.2})  output {:?}",
            level.name(),
            sim.cycles,
            base as f64 / sim.cycles as f64,
            sim.output
        );
        println!(
            "        unstalled {:>8}  ld-bubble {:>7}  frontend {:>6}  br-flush {:>6}  useful-IPC {:.2}",
            sim.acct.unstalled(),
            sim.acct.int_load_bubble(),
            sim.acct.front_end_bubble(),
            sim.acct.br_mispredict_flush(),
            sim.counters.retired_useful as f64 / sim.cycles as f64
        );
        println!(
            "        code {} bytes, {} real ops + {} nops, {} loads speculated\n",
            compiled.code_bytes,
            compiled.static_ops.0,
            compiled.static_ops.1,
            compiled.ilp.loads_promoted
        );
    }
    println!("every level produces identical output — the differential test suite");
    println!("checks this against the reference interpreter for the whole workload suite.");
}
