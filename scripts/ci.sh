#!/usr/bin/env bash
# CI gate: formatting, a clean release build, and the full test suite —
# all offline (the offline_manifests test enforces that no dependency
# resolves to a registry crate).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# Smoke-fuzz: a short deterministic differential-fuzzing campaign over
# the checked-in seed corpus (crates/fuzz/corpus/seeds.txt). Fixed
# master seed, case-bounded, wall-clock capped as a backstop; any
# metamorphic-oracle violation fails CI with a minimized reproducer.
echo "==> smoke fuzz (deterministic, ~15s)"
cargo run --release -q -p epic-fuzz --bin fuzz -- --cases 2000 --seed 1 --seconds 120

# Report smoke: render the Fig. 5 table + Fig. 10 drill-down for one
# workload at all four levels. `epicc report` exits nonzero if the
# accounting identity is violated; on top of that, require the output to
# be non-empty and deterministic across two runs.
echo "==> epicc report smoke (vortex_mc, all levels)"
report_a=$(mktemp)
report_b=$(mktemp)
smoke_dir=$(mktemp -d)
epicd_pid=
fleet_pids=
cleanup() {
    rm -f "$report_a" "$report_b"
    rm -rf "$smoke_dir"
    if [ -n "${epicd_pid:-}" ] && kill -0 "$epicd_pid" 2>/dev/null; then
        kill "$epicd_pid" 2>/dev/null || true
    fi
    for p in ${fleet_pids:-}; do
        kill "$p" 2>/dev/null || true
    done
}
trap cleanup EXIT
cargo run --release -q --bin epicc -- report --workload vortex_mc --level all > "$report_a"
cargo run --release -q --bin epicc -- report --workload vortex_mc --level all > "$report_b"
test -s "$report_a"
cmp "$report_a" "$report_b"

# Serve smoke: start epicd on an ephemeral loopback port and push the
# full 12×4 matrix through it from 8 client threads. Required:
#   (1) served `cell` lines byte-identical to a direct in-process sweep,
#   (2) a second submission is 100% cache hits,
#   (3) the warm sweep issued zero extra compiles/sims (stats verb),
#   (4) clean protocol shutdown — epicd exits 0 without being killed.
echo "==> serve smoke (epicd + epicc submit, full 12x4 matrix)"
cargo build --release -q -p epic-serve --bin epicd
cargo run --release -q -p epic-serve --bin epicd -- --listen 127.0.0.1:0 \
    > "$smoke_dir/epicd.log" &
epicd_pid=$!
addr=
for _ in $(seq 1 200); do
    addr=$(sed -n 's/^epicd listening on //p' "$smoke_dir/epicd.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
test -n "$addr"

cargo run --release -q --bin epicc -- matrix --no-cache > "$smoke_dir/direct.txt"
cargo run --release -q --bin epicc -- submit --addr "$addr" > "$smoke_dir/served_cold.txt"
cargo run --release -q --bin epicc -- submit --addr "$addr" > "$smoke_dir/served_warm.txt"

grep '^cell ' "$smoke_dir/direct.txt" > "$smoke_dir/direct_cells.txt"
grep '^cell ' "$smoke_dir/served_cold.txt" > "$smoke_dir/served_cold_cells.txt"
grep '^cell ' "$smoke_dir/served_warm.txt" > "$smoke_dir/served_warm_cells.txt"
cmp "$smoke_dir/direct_cells.txt" "$smoke_dir/served_cold_cells.txt"
cmp "$smoke_dir/direct_cells.txt" "$smoke_dir/served_warm_cells.txt"
grep -qx '# hits=0 misses=48' "$smoke_dir/served_cold.txt"
grep -qx '# hits=48 misses=0' "$smoke_dir/served_warm.txt"

cargo run --release -q --bin epicc -- stats --addr "$addr" > "$smoke_dir/stats.txt"
grep -qx 'stat compiles 48' "$smoke_dir/stats.txt"
grep -qx 'stat sims 48' "$smoke_dir/stats.txt"
grep -qx 'stat sched_jobs_run 48' "$smoke_dir/stats.txt"
grep -qx 'stat sched_cache_hits 48' "$smoke_dir/stats.txt"

cargo run --release -q --bin epicc -- top --addr "$addr" > "$smoke_dir/top.txt"
grep -q '^serve\.jobs_run ' "$smoke_dir/top.txt"

# Saturation smoke: 64 swarm connections each pipeline the full 12×4
# matrix (rotated so concurrent waves overlap on different cells)
# through the single event-loop thread. Required: zero lost, duplicated,
# or cross-wired responses, and `cell` lines byte-identical to the
# direct in-process sweep.
echo "==> serve saturate smoke (64 swarm conns, 3072 pipelined submits)"
cargo run --release -q --bin epicc -- saturate --addr "$addr" --conns 64 \
    > "$smoke_dir/saturate.txt"
grep '^cell ' "$smoke_dir/saturate.txt" > "$smoke_dir/saturate_cells.txt"
cmp "$smoke_dir/direct_cells.txt" "$smoke_dir/saturate_cells.txt"
grep -qx '# saturate conns=64 submits=3072 lost=0 crosswired=0 digest-mismatch=0' \
    "$smoke_dir/saturate.txt"

cargo run --release -q --bin epicc -- shutdown --addr "$addr"
wait "$epicd_pid"
epicd_pid=

# Trace smoke: one matrix cell with tracing on. Required:
#   (1) the traced run's `cell` lines are byte-identical to an untraced
#       run (tracing never perturbs what it observes),
#   (2) the in-binary validation passes — every cell's span tree
#       round-trips through JSON, carries `compile` and `sim` roots, and
#       its root durations sum-check against the cell's wall time —
#       reported as a final `trace-ok cells=1` line,
#   (3) with tracing off, the output carries no trace artifacts at all.
echo "==> trace smoke (epicc matrix --trace, one cell)"
cargo run --release -q --bin epicc -- matrix --no-cache --workload mcf_mc --level gcc \
    > "$smoke_dir/untraced.txt"
cargo run --release -q --bin epicc -- matrix --no-cache --workload mcf_mc --level gcc --trace \
    > "$smoke_dir/traced.txt"
grep '^cell ' "$smoke_dir/untraced.txt" > "$smoke_dir/untraced_cells.txt"
grep '^cell ' "$smoke_dir/traced.txt" > "$smoke_dir/traced_cells.txt"
cmp "$smoke_dir/untraced_cells.txt" "$smoke_dir/traced_cells.txt"
grep -qx 'trace-ok cells=1' "$smoke_dir/traced.txt"
! grep -q 'trace' "$smoke_dir/untraced.txt"

# Saturation bench smoke: a shrunk in-process A/B (event loop vs the
# thread-per-connection baseline, instant runner) — validates the
# BENCH_6.json pipeline, not performance numbers.
echo "==> saturation bench smoke (in-process A/B, instant runner)"
cargo run --release -q --bin epicc -- saturate --bench --conns 32 --requests 512 \
    --out "$smoke_dir/bench.json" > "$smoke_dir/bench.txt"
grep -q '^# bench ' "$smoke_dir/bench.txt"
test -s "$smoke_dir/bench.json"

# Sampled-simulation gate: the full 12×4 exact-vs-sampled matrix
# (DESIGN.md §12). `epicc sample --bench` exits nonzero unless every
# cell's functional results are identical, every cell's total-cycle
# error is ≤ 5%, and the whole matrix runs ≥ 2× faster than exact.
# (Measured: ~3.3× and worst error ~1.5%; the gate sits below both so
# CI noise can't flake it. 5× is unreachable while functional warming
# is on — see the floor argument in DESIGN.md §12 — and turning it off
# costs 30%+ error on mcf.)
echo "==> sampled-sim gate (12x4 exact-vs-sampled, err<=5%, speedup>=2x)"
cargo run --release -q --bin epicc -- sample --bench --max-err 5.0 --min-speedup 2.0 \
    --out "$smoke_dir/bench7.json" > "$smoke_dir/sample.txt"
grep -q '^# sample bench ' "$smoke_dir/sample.txt"
test -s "$smoke_dir/bench7.json"

# Predictor matrix smoke (DESIGN.md §13). Required:
#   (1) `--predictor gshare` (the explicit default) produces cell lines
#       byte-identical to the plain matrix — the zoo refactor may not
#       perturb the default measurement,
#   (2) a non-default predictor produces a *different* cell line for
#       the same (workload, level) — the sweep axis is real,
#   (3) `epicc branches --capture` passes its built-in replay-vs-live
#       self-check for all four zoo members, and offline `epicc replay`
#       of the captured trace reports the oracle at zero mispredicts.
echo "==> predictor smoke (zoo matrix + trace capture/replay)"
cargo run --release -q --bin epicc -- matrix --no-cache --workload mcf_mc --level gcc \
    --predictor gshare > "$smoke_dir/pred_default.txt"
grep '^cell ' "$smoke_dir/pred_default.txt" > "$smoke_dir/pred_default_cells.txt"
cmp "$smoke_dir/untraced_cells.txt" "$smoke_dir/pred_default_cells.txt"
cargo run --release -q --bin epicc -- matrix --no-cache --workload mcf_mc --level gcc \
    --predictor tage > "$smoke_dir/pred_tage.txt"
grep '^cell ' "$smoke_dir/pred_tage.txt" > "$smoke_dir/pred_tage_cells.txt"
if cmp -s "$smoke_dir/untraced_cells.txt" "$smoke_dir/pred_tage_cells.txt"; then
    echo "FAIL: --predictor tage produced cell lines identical to the default" >&2
    exit 1
fi
cargo run --release -q --bin epicc -- branches --workload mcf_mc --level gcc \
    --capture "$smoke_dir/mcf.epbt" > "$smoke_dir/branches.txt"
grep -q '^replay-ok predictors=4$' "$smoke_dir/branches.txt"
cargo run --release -q --bin epicc -- replay --trace "$smoke_dir/mcf.epbt" \
    --predictor all > "$smoke_dir/replay.txt"
grep -q '^replay oracle predictions=[0-9]* mispredictions=0 ' "$smoke_dir/replay.txt"

# Perf-trajectory checkpoint guard (ROADMAP perf-trajectory item,
# first slice): compare this run's bench JSON against the committed
# checkpoint and red-flag regressions. Self-comparison first validates
# the tool path (identical files must pass with zero delta); the live
# comparison uses a generous 25% threshold so shared-runner noise on
# wall-clock speedups cannot flake CI while real cliffs still fail.
echo "==> benchcmp guard (vs committed BENCH_7.json checkpoint)"
cargo run --release -q --bin epicc -- benchcmp --baseline BENCH_7.json \
    --current BENCH_7.json > "$smoke_dir/benchcmp_self.txt"
grep -q '^benchcmp-ok ' "$smoke_dir/benchcmp_self.txt"
cargo run --release -q --bin epicc -- benchcmp --baseline BENCH_7.json \
    --current "$smoke_dir/bench7.json" --threshold-pct 25 \
    > "$smoke_dir/benchcmp.txt"
grep -q '^benchcmp-ok ' "$smoke_dir/benchcmp.txt"

# Bench-history smoke (ROADMAP perf-trajectory item, second slice):
# `benchcmp --history DIR` renders per-metric trajectories over a
# directory of BENCH_*.json checkpoints. Two checkpoints of the
# sampled-sim family (the committed one and this run's) must produce a
# clean `benchhist-ok` summary.
echo "==> benchcmp history smoke (2 sampled-sim checkpoints)"
mkdir -p "$smoke_dir/hist"
cp BENCH_7.json "$smoke_dir/hist/BENCH_1.json"
cp "$smoke_dir/bench7.json" "$smoke_dir/hist/BENCH_2.json"
cargo run --release -q --bin epicc -- benchcmp --history "$smoke_dir/hist" \
    > "$smoke_dir/benchhist.txt"
grep -q '^benchhist-ok families=1 files=2$' "$smoke_dir/benchhist.txt"

# Cluster smoke (DESIGN.md §14): an epicg gateway in front of a 3-shard
# epicd fleet on loopback, hedging disabled (--hedge-ms 600000 — the
# heaviest cell can outlast any budget CI could afford on a loaded
# runner, and a hedged cell runs twice, breaking the exact compile
# counts below); failover in the kill phase is driven by connection
# refusal, not the hedge timer, so it is unaffected. Hedging itself is
# covered by the cluster_e2e suite under `cargo test`. Required:
#   (1) the full 12×4 matrix through the gateway is byte-identical to
#       the direct in-process sweep, all misses,
#   (2) a warm re-sweep through the gateway is 100% cache hits,
#   (3) merged fleet stats account for exactly 48 compiles and speak
#       for no single shard (shard_id 0); `top --cluster` renders
#       fleet, gateway, and per-shard sections,
#   (4) with shard 1 killed, a warm re-sweep is still 100% hits — the
#       dead shard's cells answer from their replicas' stores, which
#       warm-cache replication filled while shard 1 was alive,
#   (5) still degraded, a fresh sweep (different predictor ⇒ different
#       job keys) completes with zero lost or mismatched cells,
#       byte-identical to a direct run — orphaned keys re-route and
#       recompute on their replicas,
#   (6) protocol shutdown through the gateway stops every live shard
#       and then the gateway itself — all exit 0 without being killed.
echo "==> cluster smoke (epicg + 3-shard epicd fleet, kill-one failover)"
cargo build --release -q -p epic-cluster --bin epicg
for i in 1 2 3; do
    cargo run --release -q -p epic-serve --bin epicd -- --listen 127.0.0.1:0 \
        --shard-id "$i" > "$smoke_dir/shard$i.log" &
    fleet_pids="$fleet_pids $!"
done
shard_addrs=
for i in 1 2 3; do
    a=
    for _ in $(seq 1 200); do
        a=$(sed -n 's/^epicd listening on //p' "$smoke_dir/shard$i.log")
        [ -n "$a" ] && break
        sleep 0.1
    done
    test -n "$a"
    shard_addrs="$shard_addrs --shard $i=$a"
done
# shellcheck disable=SC2086
cargo run --release -q -p epic-cluster --bin epicg -- $shard_addrs \
    --hedge-ms 600000 > "$smoke_dir/epicg.log" &
gw_pid=$!
fleet_pids="$fleet_pids $gw_pid"
gw=
for _ in $(seq 1 200); do
    gw=$(sed -n 's/^epicg listening on //p' "$smoke_dir/epicg.log")
    [ -n "$gw" ] && break
    sleep 0.1
done
test -n "$gw"

cargo run --release -q --bin epicc -- submit --gateway "$gw" > "$smoke_dir/gw_cold.txt"
cargo run --release -q --bin epicc -- submit --gateway "$gw" > "$smoke_dir/gw_warm.txt"
grep '^cell ' "$smoke_dir/gw_cold.txt" > "$smoke_dir/gw_cold_cells.txt"
grep '^cell ' "$smoke_dir/gw_warm.txt" > "$smoke_dir/gw_warm_cells.txt"
cmp "$smoke_dir/direct_cells.txt" "$smoke_dir/gw_cold_cells.txt"
cmp "$smoke_dir/direct_cells.txt" "$smoke_dir/gw_warm_cells.txt"
grep -qx '# hits=0 misses=48' "$smoke_dir/gw_cold.txt"
grep -qx '# hits=48 misses=0' "$smoke_dir/gw_warm.txt"

cargo run --release -q --bin epicc -- stats --gateway "$gw" > "$smoke_dir/gw_stats.txt"
grep -qx 'stat compiles 48' "$smoke_dir/gw_stats.txt"
grep -qx 'stat sched_jobs_run 48' "$smoke_dir/gw_stats.txt"
grep -qx 'stat sched_cache_hits 48' "$smoke_dir/gw_stats.txt"
grep -qx 'stat shard_id 0' "$smoke_dir/gw_stats.txt"
cargo run --release -q --bin epicc -- top --gateway "$gw" --cluster \
    > "$smoke_dir/gw_top.txt"
grep -qx '== fleet ==' "$smoke_dir/gw_top.txt"
grep -qx '== gateway ==' "$smoke_dir/gw_top.txt"
grep -qx '== shard1 ==' "$smoke_dir/gw_top.txt"
grep -qx '== shard3 ==' "$smoke_dir/gw_top.txt"

shard1_pid=$(echo "$fleet_pids" | awk '{print $1}')
kill "$shard1_pid"
cargo run --release -q --bin epicc -- submit --gateway "$gw" > "$smoke_dir/gw_degraded.txt"
grep '^cell ' "$smoke_dir/gw_degraded.txt" > "$smoke_dir/gw_degraded_cells.txt"
cmp "$smoke_dir/direct_cells.txt" "$smoke_dir/gw_degraded_cells.txt"
grep -qx '# hits=48 misses=0' "$smoke_dir/gw_degraded.txt"

cargo run --release -q --bin epicc -- matrix --no-cache --predictor tage \
    > "$smoke_dir/direct_tage.txt"
cargo run --release -q --bin epicc -- submit --gateway "$gw" --predictor tage \
    > "$smoke_dir/gw_tage.txt"
grep '^cell ' "$smoke_dir/direct_tage.txt" > "$smoke_dir/direct_tage_cells.txt"
grep '^cell ' "$smoke_dir/gw_tage.txt" > "$smoke_dir/gw_tage_cells.txt"
cmp "$smoke_dir/direct_tage_cells.txt" "$smoke_dir/gw_tage_cells.txt"
grep -qx '# hits=0 misses=48' "$smoke_dir/gw_tage.txt"

cargo run --release -q --bin epicc -- shutdown --gateway "$gw"
for p in $fleet_pids; do
    [ "$p" = "$shard1_pid" ] && continue
    wait "$p"
done
fleet_pids=

# Membership smoke (DESIGN.md §15): runtime join/drain against a live,
# warm fleet, with a concurrent sweep hammering the gateway during both
# rebalances. Hedging stays disabled as above. Required:
#   (1) joining a 4th shard reports a rebalance with skipped=0 and the
#       new ring; the sweep running *during* the join stays 100% hits,
#       byte-identical to the direct run,
#   (2) draining shard 1 likewise: its cached primaries move before
#       cutover, the concurrent sweep stays 100% hits,
#   (3) `cluster status` shows version=3 ring=2,3,4, the drained shard
#       as in_ring=no reachable=yes, and the joined shard in the ring,
#   (4) a post-cutover re-sweep is 48/48 hits, byte-identical — zero
#       warmth lost across both membership changes,
#   (5) bad admin ops (drain a stranger, re-join a member, drain to an
#       empty ring) exit nonzero and leave the ring untouched,
#   (6) protocol shutdown through the gateway exits the whole fleet —
#       including the drained-but-running shard 1 — all without kill.
echo "==> membership smoke (runtime join/drain, warm-before-cutover)"
for i in 1 2 3; do
    cargo run --release -q -p epic-serve --bin epicd -- --listen 127.0.0.1:0 \
        --shard-id "$i" > "$smoke_dir/mem_shard$i.log" &
    fleet_pids="$fleet_pids $!"
done
shard_addrs=
for i in 1 2 3; do
    a=
    for _ in $(seq 1 200); do
        a=$(sed -n 's/^epicd listening on //p' "$smoke_dir/mem_shard$i.log")
        [ -n "$a" ] && break
        sleep 0.1
    done
    test -n "$a"
    shard_addrs="$shard_addrs --shard $i=$a"
done
# shellcheck disable=SC2086
cargo run --release -q -p epic-cluster --bin epicg -- $shard_addrs \
    --hedge-ms 600000 > "$smoke_dir/mem_epicg.log" &
fleet_pids="$fleet_pids $!"
gw=
for _ in $(seq 1 200); do
    gw=$(sed -n 's/^epicg listening on //p' "$smoke_dir/mem_epicg.log")
    [ -n "$gw" ] && break
    sleep 0.1
done
test -n "$gw"

cargo run --release -q --bin epicc -- submit --gateway "$gw" > "$smoke_dir/mem_cold.txt"
grep -qx '# hits=0 misses=48' "$smoke_dir/mem_cold.txt"

cargo run --release -q -p epic-serve --bin epicd -- --listen 127.0.0.1:0 \
    --shard-id 4 > "$smoke_dir/mem_shard4.log" &
fleet_pids="$fleet_pids $!"
a4=
for _ in $(seq 1 200); do
    a4=$(sed -n 's/^epicd listening on //p' "$smoke_dir/mem_shard4.log")
    [ -n "$a4" ] && break
    sleep 0.1
done
test -n "$a4"

cargo run --release -q --bin epicc -- submit --gateway "$gw" \
    > "$smoke_dir/mem_during_join.txt" &
sweep_pid=$!
cargo run --release -q --bin epicc -- cluster join --gateway "$gw" \
    --shard "4=$a4" > "$smoke_dir/mem_join.txt"
grep -q '^rebalance join keys_moved=' "$smoke_dir/mem_join.txt"
grep -q 'skipped=0 ring=1,2,3,4$' "$smoke_dir/mem_join.txt"
wait "$sweep_pid"
grep '^cell ' "$smoke_dir/mem_during_join.txt" > "$smoke_dir/mem_during_join_cells.txt"
cmp "$smoke_dir/direct_cells.txt" "$smoke_dir/mem_during_join_cells.txt"
grep -qx '# hits=48 misses=0' "$smoke_dir/mem_during_join.txt"

cargo run --release -q --bin epicc -- submit --gateway "$gw" \
    > "$smoke_dir/mem_during_drain.txt" &
sweep_pid=$!
cargo run --release -q --bin epicc -- cluster drain --gateway "$gw" \
    --shard 1 > "$smoke_dir/mem_drain.txt"
grep -q '^rebalance drain keys_moved=' "$smoke_dir/mem_drain.txt"
grep -q 'skipped=0 ring=2,3,4$' "$smoke_dir/mem_drain.txt"
wait "$sweep_pid"
grep '^cell ' "$smoke_dir/mem_during_drain.txt" > "$smoke_dir/mem_during_drain_cells.txt"
cmp "$smoke_dir/direct_cells.txt" "$smoke_dir/mem_during_drain_cells.txt"
grep -qx '# hits=48 misses=0' "$smoke_dir/mem_during_drain.txt"

cargo run --release -q --bin epicc -- cluster status --gateway "$gw" \
    > "$smoke_dir/mem_status.txt"
grep -qx 'fleet version=3 ring=2,3,4' "$smoke_dir/mem_status.txt"
grep -q '^shard 1 addr=.* in_ring=no reachable=yes' "$smoke_dir/mem_status.txt"
grep -q '^shard 4 addr=.* in_ring=yes reachable=yes' "$smoke_dir/mem_status.txt"

cargo run --release -q --bin epicc -- submit --gateway "$gw" > "$smoke_dir/mem_final.txt"
grep '^cell ' "$smoke_dir/mem_final.txt" > "$smoke_dir/mem_final_cells.txt"
cmp "$smoke_dir/direct_cells.txt" "$smoke_dir/mem_final_cells.txt"
grep -qx '# hits=48 misses=0' "$smoke_dir/mem_final.txt"

! cargo run --release -q --bin epicc -- cluster drain --gateway "$gw" --shard 9 \
    2> /dev/null
! cargo run --release -q --bin epicc -- cluster join --gateway "$gw" \
    --shard "4=$a4" 2> /dev/null
cargo run --release -q --bin epicc -- cluster status --gateway "$gw" \
    | grep -qx 'fleet version=3 ring=2,3,4'

cargo run --release -q --bin epicc -- shutdown --gateway "$gw"
for p in $fleet_pids; do
    wait "$p"
done
fleet_pids=

echo "CI OK"
