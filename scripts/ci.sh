#!/usr/bin/env bash
# CI gate: formatting, a clean release build, and the full test suite —
# all offline (the offline_manifests test enforces that no dependency
# resolves to a registry crate).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# Smoke-fuzz: a short deterministic differential-fuzzing campaign over
# the checked-in seed corpus (crates/fuzz/corpus/seeds.txt). Fixed
# master seed, case-bounded, wall-clock capped as a backstop; any
# metamorphic-oracle violation fails CI with a minimized reproducer.
echo "==> smoke fuzz (deterministic, ~15s)"
cargo run --release -q -p epic-fuzz --bin fuzz -- --cases 2000 --seed 1 --seconds 120

echo "CI OK"
