#!/usr/bin/env bash
# CI gate: formatting, a clean release build, and the full test suite —
# all offline (the offline_manifests test enforces that no dependency
# resolves to a registry crate).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "CI OK"
