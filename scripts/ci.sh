#!/usr/bin/env bash
# CI gate: formatting, a clean release build, and the full test suite —
# all offline (the offline_manifests test enforces that no dependency
# resolves to a registry crate).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# Smoke-fuzz: a short deterministic differential-fuzzing campaign over
# the checked-in seed corpus (crates/fuzz/corpus/seeds.txt). Fixed
# master seed, case-bounded, wall-clock capped as a backstop; any
# metamorphic-oracle violation fails CI with a minimized reproducer.
echo "==> smoke fuzz (deterministic, ~15s)"
cargo run --release -q -p epic-fuzz --bin fuzz -- --cases 2000 --seed 1 --seconds 120

# Report smoke: render the Fig. 5 table + Fig. 10 drill-down for one
# workload at all four levels. `epicc report` exits nonzero if the
# accounting identity is violated; on top of that, require the output to
# be non-empty and deterministic across two runs.
echo "==> epicc report smoke (vortex_mc, all levels)"
report_a=$(mktemp)
report_b=$(mktemp)
trap 'rm -f "$report_a" "$report_b"' EXIT
cargo run --release -q --bin epicc -- report --workload vortex_mc --level all > "$report_a"
cargo run --release -q --bin epicc -- report --workload vortex_mc --level all > "$report_b"
test -s "$report_a"
cmp "$report_a" "$report_b"

echo "CI OK"
